"""repro.obs — observability for the mining stack.

Tracing, metrics, and search-progress instrumentation, built with the
same **zero-cost-when-disabled** discipline as :mod:`repro.contracts`:
nothing is installed by default, instrumented code guards every
recording site with one local ``None`` check, and enabling is always
explicit and scoped.

Submodules
----------
:mod:`repro.obs.clock`
    The single injectable monotonic clock every timestamp flows through.
:mod:`repro.obs.trace`
    Span-based tracing (``span()`` context manager, ``@traced``
    decorator, JSONL exporter, in-memory collector).
:mod:`repro.obs.metrics`
    Registry of named counters, gauges, and fixed-bucket histograms with
    a JSON-able snapshot.
:mod:`repro.obs.progress`
    Throttled search heartbeats (every N nodes or T seconds).
:mod:`repro.obs.live`
    Live shard telemetry bus for sharded runs: worker-side
    :class:`~repro.obs.live.LiveSink` heartbeats, parent-side
    :class:`~repro.obs.live.LiveAggregator` lanes/ETA/stragglers
    (CLI ``mine --live``).
:mod:`repro.obs.costmodel`
    Per-root / per-level search cost attribution: which search-tree
    roots the time, states, and prune work go to, merged
    deterministically across shards (CLI ``mine --cost-profile``).
:mod:`repro.obs.provenance`
    Pattern provenance and prune-decision audit: per emitted pattern
    the supporting sids plus one witness embedding each, per killed
    candidate the prune site/level/root, merged deterministically
    across shards (CLI ``mine --provenance``, ``ptpminer explain`` /
    ``why-not`` / ``diff --patterns``).
:mod:`repro.obs.seam`
    The :class:`~repro.obs.seam.CollectorSeam` primitive behind every
    module-global sink (metrics, costmodel, provenance): ``active()``,
    ``install()``, and scoped ``scope()`` defined exactly once.
:mod:`repro.obs.ledger`
    Persistent append-only run ledger with config/environment
    fingerprints and cross-run regression diffing (imported on
    demand; CLI ``mine --ledger-dir``, ``ptpminer history``/``diff``).
:mod:`repro.obs.planner`
    Predictive shard planning: dataset/workload profiler, per-root
    cost forecasts calibrated from ledger history (static-feature
    fallback), LPT vs round-robin assignment comparison, and the
    post-run plan-vs-actual calibration record (imported on demand;
    CLI ``ptpminer plan``, ``mine --shard-strategy predicted``).
:mod:`repro.obs.warnonce`
    Once-per-file warning dedup shared by every reader that skips
    garbage lines (trace, live log, ledger), so joined sources don't
    repeat the same corruption warning.
:mod:`repro.obs.chrometrace`
    Chrome trace-event / Perfetto exporter for JSONL span traces
    (imported on demand; run as ``python -m repro.obs.chrometrace``).
:mod:`repro.obs.runreport`
    Unified run reports joining a trace, metrics snapshot, and live
    frame log (imported on demand; CLI ``ptpminer report``).
:mod:`repro.obs.report`
    Renders a snapshot as per-phase / per-depth summary tables
    (imported on demand; run as ``python -m repro.obs.report``).
:mod:`repro.obs.profile`
    Per-phase profiling hooks: one ``cProfile`` profile per top-level
    phase span, a collapsed-stack ("folded") exporter for flamegraph
    tooling, and a tracemalloc-based per-phase allocation attributor
    (imported on demand; render with ``python -m repro.obs.profile``).

Enabling
--------
>>> from repro import obs
>>> with obs.observe(metrics=True) as handles:
...     pass  # any mining call here records into handles.registry
>>> sorted(handles.registry.snapshot())
['counters', 'gauges', 'histograms']

or install pieces individually with ``metrics.use_registry(...)``,
``trace.use_tracer(...)``, ``progress.use_reporter(...)``. The CLI flags
``--trace``, ``--metrics-out`` and ``--progress`` wrap the same calls.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Optional, Union

from repro.obs import (
    clock,
    costmodel,
    live,
    metrics,
    progress,
    provenance,
    seam,
    trace,
)
from repro.obs.costmodel import CostCollector, use_collector
from repro.obs.live import LiveCollector, LiveConfig, use_live
from repro.obs.provenance import ProvenanceCollector
from repro.obs.seam import CollectorSeam
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.progress import ProgressReporter, use_reporter
from repro.obs.trace import (
    JsonlTraceWriter,
    TraceCollector,
    span,
    traced,
    use_tracer,
)

__all__ = [
    "CollectorSeam",
    "CostCollector",
    "JsonlTraceWriter",
    "LiveCollector",
    "LiveConfig",
    "MetricsRegistry",
    "ObsHandles",
    "ProgressReporter",
    "ProvenanceCollector",
    "TraceCollector",
    "clock",
    "costmodel",
    "is_active",
    "live",
    "metrics",
    "observe",
    "progress",
    "provenance",
    "seam",
    "span",
    "trace",
    "traced",
    "use_collector",
    "use_live",
    "use_registry",
    "use_reporter",
    "use_tracer",
]


def is_active() -> bool:
    """True when any observability sink (tracer/registry/progress) is on."""
    return (
        trace.active_tracer() is not None
        or metrics.active_registry() is not None
        or progress.active_reporter() is not None
    )


@dataclass(frozen=True, slots=True)
class ObsHandles:
    """What :func:`observe` installed for the duration of its scope."""

    registry: Optional[MetricsRegistry]
    tracer: Optional[trace.Tracer]
    reporter: Optional[ProgressReporter]


@contextmanager
def observe(
    *,
    metrics: Union[MetricsRegistry, bool, None] = None,
    tracer: Union[trace.Tracer, bool, None] = None,
    reporter: Union[ProgressReporter, bool, None] = None,
) -> Iterator[ObsHandles]:
    """Install any combination of observability sinks for a scope.

    ``obs.observe(metrics=True)`` installs a fresh registry;
    ``tracer=True`` installs an in-memory :class:`TraceCollector`;
    ``reporter=True`` a default stderr :class:`ProgressReporter`.
    Existing instances may be passed instead of ``True``. Everything is
    uninstalled (previous sinks restored) on exit.
    """
    registry: Optional[MetricsRegistry]
    if metrics is True:
        registry = MetricsRegistry()
    elif metrics is False or metrics is None:
        registry = None
    else:
        registry = metrics
    trace_sink: Optional[trace.Tracer]
    if tracer is True:
        trace_sink = TraceCollector()
    elif tracer is False or tracer is None:
        trace_sink = None
    else:
        trace_sink = tracer
    progress_sink: Optional[ProgressReporter]
    if reporter is True:
        progress_sink = ProgressReporter()
    elif reporter is False or reporter is None:
        progress_sink = None
    else:
        progress_sink = reporter
    with ExitStack() as stack:
        if registry is not None:
            stack.enter_context(use_registry(registry))
        if trace_sink is not None:
            stack.enter_context(use_tracer(trace_sink))
        if progress_sink is not None:
            stack.enter_context(use_reporter(progress_sink))
        yield ObsHandles(registry, trace_sink, progress_sink)
