"""The observability layer's single injectable clock.

Every timestamp the ``repro`` stack records — miner ``elapsed`` fields,
span durations, progress heartbeats — is read through this module, not
through ``time`` directly. That buys two things:

* **Determinism in tests.** Installing a :class:`ManualClock` makes
  timing-dependent behaviour (span durations, progress throttling,
  reported ``elapsed``) exactly reproducible.
* **A clean mining core.** Lint rule R006 bans raw ``time`` imports in
  ``repro.core``; the core reads monotonic time via :func:`now` only, so
  all clock policy lives in one place.

The default clock is :func:`time.perf_counter` — monotonic, which is the
only sound choice for durations (wall clocks jump; see lint rule R005).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

__all__ = [
    "ManualClock",
    "clock_scope",
    "get_clock",
    "now",
    "set_clock",
]

#: A clock is any zero-argument callable returning monotonic seconds.
ClockFn = Callable[[], float]

_clock: ClockFn = time.perf_counter


def now() -> float:
    """Monotonic seconds from the currently installed clock."""
    return _clock()


def get_clock() -> ClockFn:
    """The currently installed clock callable."""
    return _clock


def set_clock(clock: ClockFn | None) -> None:
    """Install ``clock`` process-wide (``None`` restores the default)."""
    global _clock
    _clock = clock if clock is not None else time.perf_counter


@contextmanager
def clock_scope(clock: ClockFn) -> Iterator[ClockFn]:
    """Temporarily install ``clock``, restoring the previous one on exit."""
    previous = _clock
    set_clock(clock)
    try:
        yield clock
    finally:
        set_clock(previous)


class ManualClock:
    """A hand-advanced clock for deterministic timing tests.

    >>> clock = ManualClock()
    >>> with clock_scope(clock):
    ...     t0 = now()
    ...     clock.advance(1.5)
    ...     round(now() - t0, 3)
    1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def __call__(self) -> float:
        """Current manual time (makes the instance a valid clock)."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("a monotonic clock cannot go backwards")
        self._now += seconds
