"""Per-file warning dedup for the tolerant JSONL readers.

The observability stack has three append-only JSONL readers that skip
undecodable lines and warn about it: :func:`repro.obs.trace.read_trace`,
:func:`repro.obs.live.read_live_log`, and
:meth:`repro.obs.ledger.RunLedger.entries`. Each used to warn on every
call, so joining sources — ``build_run_report`` reads the same live log
once for the summary and once for the shard lanes, ``history`` iterates
a ledger repeatedly — repeated the identical warning for the identical
file. The readers now route through :func:`warn_once`, which keys on
the *resolved path* plus warning category and fires exactly once per
file per process.

A truncated tail is still reported the first time any reader meets it;
the dedup only suppresses the re-reads that follow. :func:`reset`
clears the memory (tests isolate through it; long-lived processes may
call it to re-arm after log rotation).
"""

from __future__ import annotations

import os
import warnings

__all__ = ["reset", "warn_once"]

#: Files already warned about: ``(resolved path, category name)``.
_seen: set[tuple[str, str]] = set()


def warn_once(
    path: os.PathLike[str] | str,
    message: str,
    category: type[Warning] = UserWarning,
    *,
    stacklevel: int = 3,
) -> bool:
    """Emit ``message`` unless this file already warned this category.

    Returns whether the warning fired. ``stacklevel`` defaults to 3 so
    the warning points at the *reader's caller* (this helper adds one
    frame over a direct ``warnings.warn``). The key resolves symlinks
    and relative paths, so the same file reached two ways still warns
    once.
    """
    try:
        resolved = os.path.realpath(os.fspath(path))
    except (OSError, TypeError):
        resolved = str(path)
    key = (resolved, category.__name__)
    if key in _seen:
        return False
    _seen.add(key)
    warnings.warn(message, category, stacklevel=stacklevel)
    return True


def reset() -> None:
    """Forget every warned file (test isolation; log rotation re-arm)."""
    _seen.clear()
