"""Chrome trace-event / Perfetto exporter for JSONL span traces.

Converts the event stream that :class:`repro.obs.trace.JsonlTraceWriter`
emits (CLI ``mine --trace FILE``) into the `Chrome trace-event format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_,
loadable in ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.

Track layout
------------
One process (``pid 0``) with one *track per shard*: the parent run's own
spans land on the ``main`` track (``tid 0``), and every span the engine
re-emitted from a worker — span ids of the form ``shard<i>:<id>`` — lands
on its shard's track (``tid i + 1``), named via ``thread_name`` metadata
events. Paired ``B``/``E`` events become single complete (``"ph": "X"``)
events; a ``B`` without an ``E`` (the truncated tail of a killed run)
becomes a zero-duration event tagged ``"unfinished": true`` rather than
being dropped.

Timestamps
----------
Span timestamps are injectable-clock seconds whose origin differs per
worker process, so each shard track is rebased: its first event is
aligned to the start of the parent's dispatching ``shards`` span (global
origin when absent). Within a track, relative timing is exact.

Run as a module to convert a file::

    python -m repro.obs.chrometrace trace.jsonl trace.chrome.json

then load the output in Perfetto (see docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import re
from collections.abc import Sequence
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs.trace import read_trace

__all__ = [
    "main",
    "to_chrome_trace",
    "write_chrome_trace",
]

_SHARD_SPAN = re.compile(r"^shard(\d+):")

#: Event keys that are structural, not span attributes.
_STRUCTURAL_KEYS = frozenset({"ev", "span", "parent", "name", "ts", "dur"})


def _tid_for_span(span_id: object) -> int:
    """Track id for a span: 0 for the parent run, ``i + 1`` for shard i."""
    if isinstance(span_id, str):
        match = _SHARD_SPAN.match(span_id)
        if match is not None:
            return int(match.group(1)) + 1
    return 0


def _span_attrs(event: dict[str, Any]) -> dict[str, Any]:
    """Attribute payload of a begin event (everything non-structural)."""
    return {
        key: value
        for key, value in event.items()
        if key not in _STRUCTURAL_KEYS
    }


def to_chrome_trace(events: Sequence[dict[str, Any]]) -> dict[str, Any]:
    """Convert span events into a Chrome trace-event JSON object.

    Returns the ``{"traceEvents": [...]}`` object-form document (the
    form that also carries ``displayTimeUnit``). Unknown or malformed
    events (no ``ev``/``span``) are ignored; unpaired begins become
    zero-duration events tagged ``"unfinished"``.
    """
    begins: dict[object, dict[str, Any]] = {}
    ends: dict[object, dict[str, Any]] = {}
    order: list[object] = []
    for event in events:
        kind = event.get("ev")
        span_id = event.get("span")
        if span_id is None:
            continue
        if kind == "B" and span_id not in begins:
            begins[span_id] = event
            order.append(span_id)
        elif kind == "E" and span_id not in ends:
            ends[span_id] = event

    # Per-track rebasing: shard clocks have their own origins.
    track_min: dict[int, float] = {}
    for span_id in order:
        begin = begins[span_id]
        ts = begin.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        tid = _tid_for_span(span_id)
        if tid not in track_min or ts < track_min[tid]:
            track_min[tid] = float(ts)
    origin = track_min.get(0, min(track_min.values(), default=0.0))
    dispatch_ts: Optional[float] = None
    for span_id in order:
        begin = begins[span_id]
        if (
            _tid_for_span(span_id) == 0
            and begin.get("name") == "shards"
            and isinstance(begin.get("ts"), (int, float))
        ):
            dispatch_ts = float(begin["ts"])
            break
    offsets: dict[int, float] = {}
    for tid, first in track_min.items():
        if tid == 0:
            offsets[tid] = -origin
        else:
            anchor = dispatch_ts if dispatch_ts is not None else origin
            offsets[tid] = (anchor - origin) - first

    trace_events: list[dict[str, Any]] = []
    tids_seen: set[int] = set()
    for span_id in order:
        begin = begins[span_id]
        ts = begin.get("ts")
        if not isinstance(ts, (int, float)):
            continue
        tid = _tid_for_span(span_id)
        tids_seen.add(tid)
        start_us = (float(ts) + offsets.get(tid, 0.0)) * 1e6
        end = ends.get(span_id)
        args = _span_attrs(begin)
        args["span"] = span_id
        if end is None:
            duration_us = 0.0
            args["unfinished"] = True
        else:
            duration = end.get("dur")
            if isinstance(duration, (int, float)):
                duration_us = float(duration) * 1e6
            elif isinstance(end.get("ts"), (int, float)):
                duration_us = (float(end["ts"]) - float(ts)) * 1e6
            else:
                duration_us = 0.0
            if "err" in end:
                args["err"] = end["err"]
        trace_events.append(
            {
                "name": str(begin.get("name", "?")),
                "ph": "X",
                "ts": round(start_us, 3),
                "dur": round(max(duration_us, 0.0), 3),
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
    metadata: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "ptpminer"},
        }
    ]
    for tid in sorted(tids_seen):
        label = "main" if tid == 0 else f"shard {tid - 1}"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    events: Sequence[dict[str, Any]], path: Union[str, Path]
) -> dict[str, Any]:
    """Convert ``events`` and write the Chrome-trace JSON to ``path``."""
    document = to_chrome_trace(events)
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return document


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.obs.chrometrace IN.jsonl OUT.json`` entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.chrometrace",
        description="Convert a JSONL span trace (mine --trace) into "
                    "Chrome trace-event JSON for chrome://tracing or "
                    "Perfetto.",
    )
    parser.add_argument("input", help="JSONL span trace file")
    parser.add_argument("output", help="Chrome-trace JSON output path")
    args = parser.parse_args(argv)
    events = read_trace(args.input)
    document = write_chrome_trace(events, args.output)
    spans = sum(1 for ev in document["traceEvents"] if ev["ph"] == "X")
    tracks = len(
        {ev["tid"] for ev in document["traceEvents"] if ev["ph"] == "X"}
    )
    print(
        f"wrote {spans} spans on {tracks} track(s) to {args.output} "
        "(load in https://ui.perfetto.dev)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())
