"""Throttled search-progress heartbeats.

A long mining run is a silent depth-first search; this module gives it a
pulse. The miner calls :meth:`ProgressReporter.tick` once per expanded
search node (a no-op unless a reporter is installed — the usual
zero-cost-when-off discipline), and the reporter emits a
:class:`ProgressEvent` every ``every_nodes`` nodes *or* every
``min_interval_s`` seconds, whichever comes first. Events carry
ETA-free *rate* statistics (nodes/s, prune rate, patterns found, current
frontier depth) — honest signals of whether a run is progressing or
stuck, without pretending the search-tree size is predictable.

Consume events with a callback, or let the default formatter print
single stderr lines (what the CLI's ``--progress`` flag does)::

    [progress] nodes=12000 (8432/s) depth=5 patterns=140 pruned=43.1% of 27910
"""

from __future__ import annotations

import sys
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, TextIO

from repro.obs import clock as _clock

__all__ = [
    "ProgressEvent",
    "ProgressReporter",
    "active_reporter",
    "format_event",
    "set_reporter",
    "use_reporter",
]


@dataclass(frozen=True, slots=True)
class ProgressEvent:
    """One heartbeat of a running search."""

    nodes: int
    elapsed_s: float
    nodes_per_s: float
    depth: int
    patterns: int
    candidates: int
    pruned: int
    final: bool = False

    @property
    def prune_rate(self) -> float:
        """Fraction of considered candidates/branches pruned so far."""
        return self.pruned / self.candidates if self.candidates else 0.0


def format_event(event: ProgressEvent) -> str:
    """Render one heartbeat as the CLI's single stderr line."""
    tag = "done" if event.final else "progress"
    return (
        f"[{tag}] nodes={event.nodes} ({event.nodes_per_s:,.0f}/s) "
        f"depth={event.depth} patterns={event.patterns} "
        f"pruned={event.prune_rate:.1%} of {event.candidates}"
    )


class ProgressReporter:
    """Throttle per-node ticks into periodic :class:`ProgressEvent`\\ s.

    Parameters
    ----------
    callback:
        Receives each emitted event. Defaults to printing
        :func:`format_event` lines to ``stream``.
    every_nodes:
        Emit at least every N ticks.
    min_interval_s:
        Also emit when this much (injectable-clock) time has passed
        since the last emission, even if fewer than N nodes ran.
    stream:
        Target of the default callback (``sys.stderr`` when ``None``).
    """

    def __init__(
        self,
        callback: Optional[Callable[[ProgressEvent], None]] = None,
        *,
        every_nodes: int = 5000,
        min_interval_s: float = 1.0,
        stream: Optional[TextIO] = None,
    ) -> None:
        if every_nodes < 1:
            raise ValueError("every_nodes must be >= 1")
        if min_interval_s < 0:
            raise ValueError("min_interval_s must be >= 0")
        self.every_nodes = every_nodes
        self.min_interval_s = min_interval_s
        self._callback = callback
        self._stream = stream
        self.events_emitted = 0
        self._nodes = 0
        self._started: Optional[float] = None
        self._last_emit_time = 0.0
        self._last_emit_nodes = 0

    def tick(
        self, *, depth: int, patterns: int, candidates: int, pruned: int
    ) -> None:
        """Record one search node; emit a heartbeat when due."""
        now = _clock.now()
        if self._started is None:
            self._started = now
            self._last_emit_time = now
        self._nodes += 1
        due_nodes = self._nodes - self._last_emit_nodes >= self.every_nodes
        due_time = now - self._last_emit_time >= self.min_interval_s
        if due_nodes or due_time:
            self._emit(
                now,
                depth=depth,
                patterns=patterns,
                candidates=candidates,
                pruned=pruned,
                final=False,
            )

    def finish(
        self, *, depth: int, patterns: int, candidates: int, pruned: int
    ) -> None:
        """Emit the final heartbeat (always fires if any node ticked)."""
        if self._started is None:
            return
        self._emit(
            _clock.now(),
            depth=depth,
            patterns=patterns,
            candidates=candidates,
            pruned=pruned,
            final=True,
        )

    def _emit(
        self,
        now: float,
        *,
        depth: int,
        patterns: int,
        candidates: int,
        pruned: int,
        final: bool,
    ) -> None:
        assert self._started is not None
        elapsed = now - self._started
        event = ProgressEvent(
            nodes=self._nodes,
            elapsed_s=elapsed,
            nodes_per_s=self._nodes / elapsed if elapsed > 0 else 0.0,
            depth=depth,
            patterns=patterns,
            candidates=candidates,
            pruned=pruned,
            final=final,
        )
        self._last_emit_time = now
        self._last_emit_nodes = self._nodes
        self.events_emitted += 1
        if self._callback is not None:
            self._callback(event)
        else:
            stream = self._stream if self._stream is not None else sys.stderr
            print(format_event(event), file=stream)


_active: Optional[ProgressReporter] = None


def active_reporter() -> Optional[ProgressReporter]:
    """The installed reporter, or ``None`` when progress is off."""
    return _active


def set_reporter(reporter: Optional[ProgressReporter]) -> None:
    """Install ``reporter`` process-wide (``None`` turns progress off)."""
    global _active
    _active = reporter


@contextmanager
def use_reporter(reporter: ProgressReporter) -> Iterator[ProgressReporter]:
    """Scope-install a reporter; restores the previous one on exit."""
    previous = _active
    set_reporter(reporter)
    try:
        yield reporter
    finally:
        set_reporter(previous)
