"""Span-based tracing for the mining stack.

A *span* is a named, timed region of work — ``span("encode")`` around
database encoding, ``span("project")`` around one projection step — and
spans nest, forming the trace tree of a mining run. Instrumented code
opens spans with the :func:`span` context manager or the :func:`traced`
decorator; where the events go is decided by the installed *tracer*:

* :class:`TraceCollector` keeps events in memory (tests, ad-hoc
  inspection);
* :class:`JsonlTraceWriter` streams one JSON object per span start/end
  to a file — the format the CLI's ``--trace FILE`` emits and
  :func:`read_trace` parses back.

**Zero-cost when off**: with no tracer *and* no metrics registry
installed, :func:`span` yields immediately — no clock read, no
allocation. When a :class:`~repro.obs.metrics.MetricsRegistry` is active,
every span additionally accumulates its duration into the
``phase_seconds[phase=<name>]`` counter, so phase breakdowns work with
``--metrics-out`` alone (no trace file needed). All timestamps come from
the injectable :mod:`repro.obs.clock`.

Event format (one dict / JSONL line per event)::

    {"ev": "B", "span": 3, "parent": 1, "name": "project", "ts": 0.12, ...attrs}
    {"ev": "E", "span": 3, "name": "project", "ts": 0.15, "dur": 0.03}

``"err"`` appears on the end event when the span exited via an
exception (the exception type name); the exception always propagates.
"""

from __future__ import annotations

import json
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from functools import wraps
from pathlib import Path
from typing import Any, Optional, Protocol, TextIO, TypeVar, Union, overload

from repro.obs import clock as _clock
from repro.obs import metrics as _metrics
from repro.obs.warnonce import warn_once

__all__ = [
    "JsonlTraceWriter",
    "TraceCollector",
    "Tracer",
    "active_tracer",
    "current_span_id",
    "read_trace",
    "set_tracer",
    "span",
    "traced",
    "use_tracer",
]


class Tracer(Protocol):
    """Anything that can receive span events (plain dicts)."""

    def emit(self, event: dict[str, Any]) -> None:
        """Consume one span start/end event."""
        ...


class TraceCollector:
    """In-memory tracer: keeps every event, with span-pairing helpers."""

    def __init__(self) -> None:
        self.events: list[dict[str, Any]] = []

    def emit(self, event: dict[str, Any]) -> None:
        """Append one event."""
        self.events.append(event)

    def finished(self, name: Optional[str] = None) -> list[dict[str, Any]]:
        """End events (optionally only for spans called ``name``)."""
        return [
            ev
            for ev in self.events
            if ev["ev"] == "E" and (name is None or ev["name"] == name)
        ]

    def span_names(self) -> list[str]:
        """Names of all started spans, in start order."""
        return [ev["name"] for ev in self.events if ev["ev"] == "B"]

    def tree_depths(self) -> dict[int, int]:
        """Map span id -> nesting depth (roots at 0), from parent links."""
        depths: dict[int, int] = {}
        parents = {
            ev["span"]: ev["parent"] for ev in self.events if ev["ev"] == "B"
        }
        for span_id, parent in parents.items():
            depth = 0
            while parent is not None:
                depth += 1
                parent = parents.get(parent)
            depths[span_id] = depth
        return depths


class JsonlTraceWriter:
    """Tracer streaming one compact JSON object per event to a handle."""

    def __init__(self, handle: TextIO, *, close_handle: bool = False) -> None:
        self._handle = handle
        self._close_handle = close_handle

    @classmethod
    def open(cls, path: Union[str, Path]) -> "JsonlTraceWriter":
        """Create a writer owning a fresh file at ``path``."""
        return cls(
            Path(path).open("w", encoding="utf-8"), close_handle=True
        )

    def emit(self, event: dict[str, Any]) -> None:
        """Write one event as a JSONL line."""
        self._handle.write(json.dumps(event, separators=(",", ":")) + "\n")

    def close(self) -> None:
        """Flush, and close the handle if this writer opened it."""
        self._handle.flush()
        if self._close_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlTraceWriter":
        """Context-manager support (closes on exit)."""
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Close the writer."""
        self.close()


def read_trace(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Parse a JSONL trace file back into its event dicts, tolerantly.

    Undecodable lines — typically the truncated tail of a killed run —
    are skipped with a single :class:`UserWarning` naming the count
    instead of a crash, so ``ptpminer report`` and the Chrome-trace
    exporter work on partial traces. Lines that decode to something
    other than an object are treated the same way. The warning fires
    once per *file* per process (:mod:`repro.obs.warnonce`), so joined
    readers re-reading the same trace do not repeat it.
    """
    events: list[dict[str, Any]] = []
    bad = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                bad += 1
                continue
            if not isinstance(event, dict):
                bad += 1
                continue
            events.append(event)
    if bad:
        warn_once(
            path,
            f"{path}: skipped {bad} undecodable trace line(s) "
            "(truncated or corrupt run?)",
            UserWarning,
        )
    return events


_tracer: Optional[Tracer] = None
_span_stack: list[int] = []
_next_id = 1


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _tracer


def current_span_id() -> Optional[int]:
    """Id of the innermost open span, or ``None`` at the trace root.

    :mod:`repro.engine` uses this as the parent link when re-emitting a
    worker's span events into the parent trace, so shard subtrees hang
    off the span that dispatched them.
    """
    return _span_stack[-1] if _span_stack else None


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` process-wide (``None`` turns tracing off)."""
    global _tracer
    _tracer = tracer


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope-install a tracer; restores the previous one on exit."""
    previous = _tracer
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


@contextmanager
def span(name: str, **attrs: object) -> Iterator[None]:
    """Open a named span around a block of work.

    Emits start/end events to the active tracer (if any) and adds the
    span's duration to the active metrics registry's
    ``phase_seconds[phase=<name>]`` counter (if any). With neither
    installed this is a no-op. Exception-safe: the end event always
    fires, tagged with the exception type, and the exception propagates.
    """
    global _next_id
    tracer = _tracer
    registry = _metrics.active_registry()
    if tracer is None and registry is None:
        yield
        return
    started = _clock.now()
    span_id = _next_id
    _next_id += 1
    if tracer is not None:
        event: dict[str, Any] = {
            "ev": "B",
            "span": span_id,
            "parent": _span_stack[-1] if _span_stack else None,
            "name": name,
            "ts": round(started, 9),
        }
        event.update(attrs)
        tracer.emit(event)
    _span_stack.append(span_id)
    error: Optional[str] = None
    try:
        yield
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        _span_stack.pop()
        ended = _clock.now()
        if tracer is not None:
            end_event: dict[str, Any] = {
                "ev": "E",
                "span": span_id,
                "name": name,
                "ts": round(ended, 9),
                "dur": round(ended - started, 9),
            }
            if error is not None:
                end_event["err"] = error
            tracer.emit(end_event)
        if registry is not None:
            registry.counter("phase_seconds", phase=name).inc(
                ended - started
            )


_F = TypeVar("_F", bound=Callable[..., Any])


@overload
def traced(name_or_func: _F) -> _F: ...


@overload
def traced(
    name_or_func: Optional[str] = None,
) -> Callable[[_F], _F]: ...


def traced(
    name_or_func: Union[str, Callable[..., Any], None] = None,
) -> Any:
    """Decorator form of :func:`span`.

    Use bare (``@traced``, span named after the function) or with an
    explicit name (``@traced("encode")``). When no tracer or registry is
    installed the wrapper falls straight through to the function.
    """

    def decorate(
        func: Callable[..., Any], span_name: Optional[str] = None
    ) -> Callable[..., Any]:
        label = span_name if span_name is not None else func.__qualname__

        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _tracer is None and _metrics.active_registry() is None:
                return func(*args, **kwargs)
            with span(label):
                return func(*args, **kwargs)

        return wrapper

    if callable(name_or_func):
        return decorate(name_or_func)
    text_name = name_or_func

    def bind(func: Callable[..., Any]) -> Callable[..., Any]:
        return decorate(func, text_name)

    return bind
