"""Pattern provenance and prune-decision audit.

The rest of the observability stack answers *how long* and *where the
effort went*. This module answers the query-side questions the result
set itself raises:

* **explain** — why is this pattern in the result? For every emitted
  pattern the search records its supporting sequence ids plus one
  witness occurrence per sequence: the concrete ``(label, occurrence)``
  event bindings of the embedding the projection found, i.e. evidence
  that can be checked against the raw data.
* **why-not** — why is this pattern *not* in the result? For every
  killed candidate the search records the prune site (one of
  :data:`repro.core.pruning.PRUNE_SITES`), the level (pattern length in
  tokens the candidate would have reached), and the level-1 root whose
  subtree it died in. :func:`why_not` walks the recorded candidate tree
  along the queried pattern's generation prefixes and distinguishes
  *pruned with a rule* from *never generated because a prefix died*.
* **result diff** — which prune decisions explain the difference
  between two runs? :func:`diff_patterns` joins two snapshots and
  attributes every added/removed pattern to the decision that killed it
  in the other run.

Collection follows the repo's zero-cost-when-disabled discipline
(`docs/observability.md`): :func:`active_collector` is ``None`` unless
a :class:`ProvenanceCollector` is installed, the search hoists one
local, and every recording site is guarded by a single ``is not None``
branch.

Sharding: the parent's ``plan_root`` records the root-level decisions
(point-pruned labels, root pair/span kills) once; each worker records
its disjoint root subset's subtrees into a private collector, ships
:meth:`ProvenanceCollector.snapshot` home inside ``ShardResult`` (the
same channel as metrics and cost snapshots), and the parent merges with
:meth:`ProvenanceCollector.absorb`. Every pattern and every candidate
node lives in exactly one shard, so the merge is a keyed union over
disjoint keys and the merged snapshot is bit-for-bit identical to a
serial run's for any worker count and any arrival order.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import AbstractContextManager
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.core.pruning import PRUNE_SITES
from repro.model.pattern import TemporalPattern
from repro.obs.seam import CollectorSeam
from repro.temporal.endpoint import POINT

__all__ = [
    "PROVENANCE_SCHEMA_VERSION",
    "ProvenanceCollector",
    "active_collector",
    "diff_patterns",
    "explain",
    "generation_prefixes",
    "patterns_digest",
    "render_explain_markdown",
    "render_patterns_diff_markdown",
    "render_why_not_markdown",
    "set_collector",
    "use_collector",
    "why_not",
]

#: Schema stamp on every snapshot, bumped on breaking shape changes.
PROVENANCE_SCHEMA_VERSION = 1

_KNOWN_SITES = frozenset(PRUNE_SITES)


class ProvenanceCollector:
    """Accumulates emitted-pattern evidence and prune decisions.

    The recording methods are the hot-path surface: one dict store per
    event, keys are canonical pattern strings. Snapshots are plain
    JSON-able dicts so they cross the engine's process boundary
    unchanged.
    """

    def __init__(self) -> None:
        self._patterns: dict[str, dict[str, Any]] = {}
        self._pruned: dict[str, dict[str, Any]] = {}
        self._labels: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # hot-path recording
    # ------------------------------------------------------------------
    def record_emitted(
        self,
        pattern: str,
        support: float,
        sids: Sequence[int],
        witnesses: Mapping[int, Sequence[tuple[str, int]]],
        *,
        root: str,
        level: int,
    ) -> None:
        """One pattern was emitted with its support set and witnesses.

        ``witnesses`` maps each supporting sid to one concrete
        embedding: the ``(label, sequence occurrence)`` bindings of the
        events that realize the pattern in that sequence.
        """
        self._patterns[pattern] = {
            "support": support,
            "sids": sorted(int(sid) for sid in sids),
            "witnesses": {
                str(sid): [
                    [label, int(occ)] for label, occ in sorted(binding)
                ]
                for sid, binding in sorted(witnesses.items())
            },
            "root": root,
            "level": int(level),
        }

    def record_pruned(
        self,
        candidate: str,
        *,
        site: str,
        level: int,
        root: str,
        support: Optional[float] = None,
        threshold: Optional[float] = None,
    ) -> None:
        """One candidate (or one node's whole subtree) was killed.

        ``candidate`` is the canonical string of the pattern prefix the
        search would have reached; ``site`` is one of
        :data:`repro.core.pruning.PRUNE_SITES`. Each search node is
        visited at most once, so keys never collide within one run.
        """
        if site not in _KNOWN_SITES:
            raise ValueError(
                f"unknown prune site {site!r}; expected one of {PRUNE_SITES}"
            )
        self._pruned[candidate] = {
            "site": site,
            "level": int(level),
            "root": root,
            "support": support,
            "threshold": threshold,
        }

    def record_pruned_label(
        self, label: str, flavour: str, df: float, threshold: float
    ) -> None:
        """One (label, flavour) was point-pruned before the search."""
        self._labels[f"{label}/{flavour}"] = {
            "df": df,
            "threshold": threshold,
        }

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-able, key-sorted snapshot of everything recorded."""
        return {
            "schema": PROVENANCE_SCHEMA_VERSION,
            "kind": "repro-provenance",
            "patterns": {
                key: dict(entry)
                for key, entry in sorted(self._patterns.items())
            },
            "pruned": {
                key: dict(entry)
                for key, entry in sorted(self._pruned.items())
            },
            "labels": {
                key: dict(entry)
                for key, entry in sorted(self._labels.items())
            },
        }

    def absorb(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a shipped snapshot in, order-independently.

        Shard snapshots cover disjoint pattern/candidate keys (every
        search node lives in exactly one shard), so the merge is a keyed
        union and identical for any arrival order; a repeated key (only
        possible across merges of overlapping runs) is overwritten
        deterministically. Iteration is sorted anyway so emission order
        never leaks producer order.
        """
        schema = snapshot.get("schema")
        if schema != PROVENANCE_SCHEMA_VERSION:
            raise ValueError(
                f"provenance snapshot schema {schema!r} != "
                f"{PROVENANCE_SCHEMA_VERSION}"
            )
        for key, entry in sorted(dict(snapshot.get("patterns", {})).items()):
            self._patterns[key] = dict(entry)
        for key, entry in sorted(dict(snapshot.get("pruned", {})).items()):
            self._pruned[key] = dict(entry)
        for key, entry in sorted(dict(snapshot.get("labels", {})).items()):
            self._labels[key] = dict(entry)


def patterns_digest(patterns: Iterable[Any]) -> str:
    """Order-independent content hash of a result's pattern set.

    Accepts :class:`~repro.model.pattern.PatternWithSupport` items or
    plain ``(pattern_text, support)`` pairs. Two runs digest identically
    iff they emitted the same patterns with the same supports, so a
    digest shift between ledger entries of one config fingerprint means
    the *result set* drifted — even when the pattern count did not.
    """
    rows: list[tuple[str, float]] = []
    for item in patterns:
        pattern = getattr(item, "pattern", None)
        if pattern is not None:
            rows.append((str(pattern), float(item.support)))
        else:
            text, support = item
            rows.append((str(text), float(support)))
    rows.sort()
    payload = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# querying a snapshot: explain / why-not / diff
# ----------------------------------------------------------------------
def _flat_tokens(pattern: TemporalPattern) -> list[tuple[int, Any]]:
    """``(pointset index, endpoint)`` pairs in canonical token order.

    Canonical token order *is* generation order: the search appends
    tokens in exactly this sequence (labels are interned sorted, so the
    integer token order coincides with the display order — see
    :class:`repro.temporal.endpoint.EncodedDatabase`).
    """
    return [
        (index, endpoint)
        for index, pointset in enumerate(pattern.pointsets)
        for endpoint in pointset
    ]


def _prefix_text(flat: Sequence[tuple[int, Any]]) -> str:
    """Render a token-truncation as a canonical pattern string."""
    pointsets: list[list[Any]] = []
    last_index = -1
    for index, endpoint in flat:
        if index != last_index:
            pointsets.append([])
            last_index = index
        pointsets[-1].append(endpoint)
    return str(TemporalPattern(pointsets, validate=False))


def generation_prefixes(pattern: TemporalPattern) -> list[str]:
    """Every prefix on ``pattern``'s generation path, longest first.

    The first element is the pattern's own canonical string; the last is
    its level-1 root token. These are exactly the search-tree nodes the
    DFS visits (or would visit) on the way to emitting the pattern, so
    looking them up in a snapshot's ``pruned`` map finds the decision
    that cut the path.
    """
    flat = _flat_tokens(pattern)
    return [_prefix_text(flat[:k]) for k in range(len(flat), 0, -1)]


def _parent_prefix(pattern: TemporalPattern) -> str:
    """The canonical string of ``pattern`` minus its last token."""
    flat = _flat_tokens(pattern)
    return _prefix_text(flat[:-1]) if len(flat) > 1 else ""


def _canonical(text: str) -> TemporalPattern:
    """Parse user-supplied pattern text; ``ValueError`` on malformed."""
    return TemporalPattern.parse(text).canonical()


def explain(snapshot: Mapping[str, Any], text: str) -> dict[str, Any]:
    """Explain one emitted pattern: support set, witnesses, siblings.

    Raises :class:`ValueError` when ``text`` is not parseable pattern
    syntax. A syntactically valid pattern missing from the snapshot
    yields ``{"found": False}`` — use :func:`why_not` for the reason.
    """
    pattern = _canonical(text)
    key = str(pattern)
    record = dict(snapshot.get("patterns", {})).get(key)
    report: dict[str, Any] = {
        "kind": "repro-explain",
        "pattern": key,
        "found": record is not None,
    }
    if record is None:
        return report
    report.update(
        {
            "support": record.get("support"),
            "sids": list(record.get("sids", [])),
            "witnesses": dict(record.get("witnesses", {})),
            "root": record.get("root"),
            "level": record.get("level"),
        }
    )
    parent = _parent_prefix(pattern)
    siblings: list[dict[str, Any]] = []
    pruned = dict(snapshot.get("pruned", {}))
    for cand_key in sorted(pruned):
        try:
            cand = TemporalPattern.parse(cand_key)
        except ValueError:
            continue
        if cand_key != key and _parent_prefix(cand) == parent:
            siblings.append({"candidate": cand_key, **dict(pruned[cand_key])})
    report["pruned_siblings"] = siblings
    return report


def why_not(snapshot: Mapping[str, Any], text: str) -> dict[str, Any]:
    """Why is ``text`` not in the result set this snapshot records?

    The report's ``status`` is one of:

    ``emitted``
        It *is* in the result — use :func:`explain`.
    ``label_pruned``
        A label the pattern needs was point-pruned before the search.
    ``pruned``
        The candidate itself was generated and killed; ``decision``
        carries the recorded site/level/root.
    ``prefix_pruned``
        Never generated: an ancestor on its generation path was killed
        first; ``prefix`` names it and ``decision`` the kill.
    ``never_generated``
        No recorded decision touches its generation path — the required
        arrangement does not occur in the mined database (or lies
        entirely outside every ``max_span`` window).

    Raises :class:`ValueError` when ``text`` is not parseable.
    """
    pattern = _canonical(text)
    key = str(pattern)
    report: dict[str, Any] = {"kind": "repro-whynot", "pattern": key}
    patterns = dict(snapshot.get("patterns", {}))
    if key in patterns:
        report["status"] = "emitted"
        report["support"] = dict(patterns[key]).get("support")
        return report
    labels = dict(snapshot.get("labels", {}))
    needed = sorted(
        {
            (
                endpoint.label,
                "point" if endpoint.kind == POINT else "interval",
            )
            for pointset in pattern.pointsets
            for endpoint in pointset
        }
    )
    label_hits = [
        {"label": label, "flavour": flavour, **dict(labels[f"{label}/{flavour}"])}
        for label, flavour in needed
        if f"{label}/{flavour}" in labels
    ]
    if label_hits:
        report["status"] = "label_pruned"
        report["labels"] = label_hits
        return report
    pruned = dict(snapshot.get("pruned", {}))
    for prefix in generation_prefixes(pattern):
        record = pruned.get(prefix)
        if record is not None:
            report["status"] = "pruned" if prefix == key else "prefix_pruned"
            report["prefix"] = prefix
            report["decision"] = dict(record)
            return report
    report["status"] = "never_generated"
    return report


def diff_patterns(
    snapshot_a: Mapping[str, Any], snapshot_b: Mapping[str, Any]
) -> dict[str, Any]:
    """Pattern-level diff of two provenance snapshots (b relative to a).

    Every pattern added in ``b`` is attributed to the prune decision
    that killed it in ``a`` (via :func:`why_not` against ``a``), and
    vice versa for removed patterns — so a threshold or pruning change
    reads as "these decisions changed", not just "these patterns
    changed".
    """
    patterns_a = dict(snapshot_a.get("patterns", {}))
    patterns_b = dict(snapshot_b.get("patterns", {}))
    added = [
        {
            "pattern": key,
            "support": dict(patterns_b[key]).get("support"),
            "was": why_not(snapshot_a, key),
        }
        for key in sorted(set(patterns_b) - set(patterns_a))
    ]
    removed = [
        {
            "pattern": key,
            "support": dict(patterns_a[key]).get("support"),
            "now": why_not(snapshot_b, key),
        }
        for key in sorted(set(patterns_a) - set(patterns_b))
    ]
    changed = [
        {
            "pattern": key,
            "support_a": dict(patterns_a[key]).get("support"),
            "support_b": dict(patterns_b[key]).get("support"),
        }
        for key in sorted(set(patterns_a) & set(patterns_b))
        if dict(patterns_a[key]).get("support")
        != dict(patterns_b[key]).get("support")
    ]
    return {
        "schema": PROVENANCE_SCHEMA_VERSION,
        "kind": "repro-patterns-diff",
        "counts": {"a": len(patterns_a), "b": len(patterns_b)},
        "added": added,
        "removed": removed,
        "changed_support": changed,
    }


# ----------------------------------------------------------------------
# markdown renderers (CLI surfaces)
# ----------------------------------------------------------------------
def _render_decision(decision: Mapping[str, Any]) -> str:
    parts = [
        f"site `{decision.get('site')}`",
        f"level {decision.get('level')}",
        f"root `{decision.get('root')}`",
    ]
    if decision.get("support") is not None:
        parts.append(
            f"support {decision['support']:g} < "
            f"threshold {decision.get('threshold', 0.0):g}"
        )
    return ", ".join(parts)


def render_explain_markdown(report: Mapping[str, Any]) -> str:
    """An :func:`explain` report as a markdown document."""
    pattern = report.get("pattern")
    lines = [f"# explain `{pattern}`", ""]
    if not report.get("found"):
        lines.append(
            "Not in this run's result set. Try `ptpminer why-not` "
            "against the same provenance file."
        )
        return "\n".join(lines) + "\n"
    lines.append(
        f"- support: **{report.get('support')}** over sids "
        f"{report.get('sids')}"
    )
    lines.append(
        f"- emitted at level {report.get('level')} under root "
        f"`{report.get('root')}`"
    )
    lines += ["", "## Witnesses (one embedding per supporting sequence)", ""]
    lines.append("| sid | (label, occurrence) bindings |")
    lines.append("| ---: | --- |")
    witnesses = dict(report.get("witnesses", {}))
    for sid in sorted(witnesses, key=int):
        binding = ", ".join(
            f"{label}#{occ}" for label, occ in witnesses[sid]
        )
        lines.append(f"| {sid} | {binding} |")
    siblings = list(report.get("pruned_siblings", []))
    if siblings:
        lines += ["", "## Pruned siblings (same parent prefix)", ""]
        for sibling in siblings:
            lines.append(
                f"- `{sibling.get('candidate')}` — "
                f"{_render_decision(sibling)}"
            )
    return "\n".join(lines) + "\n"


def render_why_not_markdown(report: Mapping[str, Any]) -> str:
    """A :func:`why_not` report as a markdown document."""
    pattern = report.get("pattern")
    status = report.get("status")
    lines = [f"# why-not `{pattern}`", ""]
    if status == "emitted":
        lines.append(
            f"It **is** in the result set (support "
            f"{report.get('support')}). Use `ptpminer explain`."
        )
    elif status == "label_pruned":
        lines.append("A needed label was point-pruned before the search:")
        lines.append("")
        for hit in report.get("labels", []):
            lines.append(
                f"- `{hit.get('label')}` ({hit.get('flavour')}): document "
                f"frequency {hit.get('df'):g} < threshold "
                f"{hit.get('threshold'):g}"
            )
    elif status == "pruned":
        lines.append(
            f"The candidate was generated and killed: "
            f"{_render_decision(report.get('decision', {}))}."
        )
    elif status == "prefix_pruned":
        lines.append(
            f"Never generated: its prefix `{report.get('prefix')}` died "
            f"first — {_render_decision(report.get('decision', {}))}."
        )
    else:
        lines.append(
            "Never generated, and no recorded prune decision touches its "
            "generation path: the required arrangement does not occur in "
            "the mined database (or lies outside every max_span window)."
        )
    return "\n".join(lines) + "\n"


def render_patterns_diff_markdown(diff: Mapping[str, Any]) -> str:
    """A :func:`diff_patterns` report as a markdown document."""
    counts = dict(diff.get("counts", {}))
    lines = [
        "# Pattern-level result diff",
        "",
        f"{counts.get('a')} patterns in A, {counts.get('b')} in B.",
        "",
    ]

    def _attribution(sub: Mapping[str, Any]) -> str:
        status = sub.get("status")
        if status in ("pruned", "prefix_pruned"):
            where = (
                ""
                if status == "pruned"
                else f" via prefix `{sub.get('prefix')}`"
            )
            return (
                f"{_render_decision(sub.get('decision', {}))}{where}"
            )
        if status == "label_pruned":
            labels = ", ".join(
                f"`{hit.get('label')}`" for hit in sub.get("labels", [])
            )
            return f"label point-pruned ({labels})"
        if status == "emitted":
            return "also emitted (support changed)"
        return "never generated (arrangement absent)"

    added = list(diff.get("added", []))
    if added:
        lines += ["## Added in B", ""]
        for row in added:
            lines.append(
                f"- `{row.get('pattern')}` (support {row.get('support')}) "
                f"— in A: {_attribution(row.get('was', {}))}"
            )
        lines.append("")
    removed = list(diff.get("removed", []))
    if removed:
        lines += ["## Removed in B", ""]
        for row in removed:
            lines.append(
                f"- `{row.get('pattern')}` (support {row.get('support')}) "
                f"— in B: {_attribution(row.get('now', {}))}"
            )
        lines.append("")
    changed = list(diff.get("changed_support", []))
    if changed:
        lines += ["## Support changed", ""]
        for row in changed:
            lines.append(
                f"- `{row.get('pattern')}`: {row.get('support_a')} -> "
                f"{row.get('support_b')}"
            )
        lines.append("")
    if not (added or removed or changed):
        lines.append("Result sets are identical (patterns and supports).")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# installation seam (shared implementation: repro.obs.seam)
# ----------------------------------------------------------------------
_seam: CollectorSeam[ProvenanceCollector] = CollectorSeam(ProvenanceCollector)


def active_collector() -> Optional[ProvenanceCollector]:
    """The installed collector, or ``None`` when provenance is off."""
    return _seam.active()


def set_collector(collector: Optional[ProvenanceCollector]) -> None:
    """Install ``collector`` process-wide (``None`` turns recording off)."""
    _seam.install(collector)


def use_collector(
    collector: Optional[ProvenanceCollector] = None,
) -> AbstractContextManager[ProvenanceCollector]:
    """Scope-install a collector (a fresh one by default); restores on exit."""
    return _seam.scope(collector)
