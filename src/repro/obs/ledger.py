"""Persistent, append-only run ledger with cross-run regression diffing.

Every other observability surface in this repo sees *one run at a time*.
The ledger is the longitudinal memory: an append-only, schema-versioned
JSONL file (``ledger.jsonl`` under a caller-chosen directory) with one
entry per mining or bench run, recording

* a **config fingerprint** — a short hash over (dataset digest, miner,
  min_sup, mode, workers, …) that makes runs of the same configuration
  comparable across machines and weeks;
* an **environment fingerprint** (``repro.perf``'s), so timing drift on
  a different machine is never mistaken for a code regression;
* **phase timings** (from ``phase_seconds[phase=...]`` counters),
  **search counters**, pattern count, and wall time;
* a **cost-profile digest** plus the top-N heaviest roots (from
  :mod:`repro.obs.costmodel`), so "the search changed shape" is
  detectable without storing full profiles.

Two consumers sit on top:

* :func:`history_report` — a per-fingerprint trend table with
  noise-aware regression flags. Counter and pattern drift between
  consecutive runs of one fingerprint is flagged **exactly** (the miners
  are deterministic); wall-time drift is flagged only beyond
  :class:`repro.perf.compare.Tolerance` (and downgraded to a warning
  when the environment fingerprints differ).
* :func:`diff_entries` — a two-run diff: exact counter deltas,
  phase-wall deltas with the same tolerance verdicts, and heaviest-root
  rank shifts.

The file is written **only** through :class:`RunLedger.append` — lint
rule R018 enforces that no other module opens a ledger path for
writing — and is never rewritten: corrupt trailing lines (a crashed
writer) are tolerated on read, like every other JSONL surface here.
Wall-clock timestamps use :mod:`datetime` rather than ``time`` (R006);
they are provenance, not measurements, so the injectable clock is not
involved.
"""

from __future__ import annotations

import hashlib
import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from repro.model.database import ESequenceDatabase
from repro.obs import costmodel
from repro.obs.warnonce import warn_once
from repro.perf.compare import Tolerance

__all__ = [
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "RunLedger",
    "build_entry",
    "config_fingerprint",
    "dataset_digest",
    "default_environment",
    "diff_entries",
    "history_report",
    "phase_seconds",
    "render_diff_markdown",
    "render_history_markdown",
]

#: The schema new entries are written with. v2 (this version) added the
#: per-root cost map (``cost.roots``) and the optional shard-plan
#: summary / plan-vs-actual calibration record that power
#: :mod:`repro.obs.planner`'s ledger-calibrated forecasts.
LEDGER_SCHEMA_VERSION = 2

#: Schemas :meth:`RunLedger.entries` reads without complaint. v1 entries
#: (pre-planner) simply lack the new optional fields; every consumer
#: treats those as absent, so old ledgers keep working unchanged (see
#: the migration note in ``docs/file-formats.md``).
SUPPORTED_SCHEMAS = (1, 2)

#: The one file name the ledger API writes inside its directory.
LEDGER_FILENAME = "ledger.jsonl"

#: Heaviest roots stored per entry (full profiles stay out of the ledger).
DEFAULT_TOP_ROOTS = 5


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def dataset_digest(db: ESequenceDatabase) -> str:
    """Short content hash of a database, independent of load path.

    Hashes every ``(sid, start, finish, label)`` event in sequence
    order, so two runs mine "the same data" iff their digests match —
    the anchor that makes config fingerprints portable across machines
    and regenerated synthetic datasets.
    """
    hasher = hashlib.sha256()
    hasher.update(f"sequences={len(db)}\n".encode("utf-8"))
    for seq in db:
        for event in seq.events:
            hasher.update(
                f"{seq.sid}|{event.start!r}|{event.finish!r}|"
                f"{event.label}\n".encode("utf-8")
            )
    return hasher.hexdigest()[:12]


def config_fingerprint(
    *,
    dataset_digest: str,
    miner: str,
    min_sup: Optional[float],
    mode: Optional[str],
    workers: int = 1,
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """Short hash identifying one run configuration.

    Runs sharing a fingerprint are directly comparable: same data, same
    miner, same support threshold, same mode, same worker count (plus
    any ``extra`` keys the caller folds in, e.g. a bench cell id). The
    hash is over canonical sorted JSON, so key order never matters.
    """
    payload: dict[str, Any] = {
        "dataset_digest": dataset_digest,
        "miner": miner,
        "min_sup": min_sup,
        "mode": mode,
        "workers": workers,
    }
    if extra:
        for key in sorted(extra):
            payload[str(key)] = extra[key]
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def default_environment() -> dict[str, str]:
    """The perf layer's environment fingerprint (lazy import: no cycle)."""
    from repro.perf.baseline import environment_fingerprint

    return environment_fingerprint()


def phase_seconds(metrics_snapshot: Mapping[str, Any]) -> dict[str, float]:
    """Extract ``{phase: seconds}`` from a metrics snapshot's counters."""
    counters = metrics_snapshot.get("counters", {})
    phases: dict[str, float] = {}
    prefix, suffix = "phase_seconds[phase=", "]"
    for key in sorted(counters):
        if key.startswith(prefix) and key.endswith(suffix):
            phases[key[len(prefix) : -len(suffix)]] = float(counters[key])
    return phases


# ----------------------------------------------------------------------
# entries
# ----------------------------------------------------------------------
def build_entry(
    *,
    dataset_digest: str,
    miner: str,
    min_sup: Optional[float],
    mode: Optional[str],
    workers: int = 1,
    extra_config: Optional[Mapping[str, Any]] = None,
    environment: Optional[Mapping[str, str]] = None,
    wall_s: float,
    patterns: int,
    counters: Mapping[str, int],
    phases: Optional[Mapping[str, float]] = None,
    cost_snapshot: Optional[Mapping[str, Any]] = None,
    patterns_digest: Optional[str] = None,
    provenance_path: Optional[str] = None,
    plan: Optional[Mapping[str, Any]] = None,
    calibration: Optional[Mapping[str, Any]] = None,
    top_n: int = DEFAULT_TOP_ROOTS,
    run_id: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> dict[str, Any]:
    """Assemble one schema-versioned ledger entry (no I/O).

    ``run_id``/``timestamp`` are injectable for tests; by default the
    timestamp is the current UTC time and the run id is derived from it
    plus a content hash, so ids are unique even within one second.

    ``plan`` is a compact shard-plan summary
    (:func:`repro.obs.planner.plan_summary`) and ``calibration`` the
    run's plan-vs-actual record
    (:func:`repro.obs.planner.calibration_record`); both are optional
    schema-2 fields.
    """
    config: dict[str, Any] = {
        "dataset_digest": dataset_digest,
        "miner": miner,
        "min_sup": min_sup,
        "mode": mode,
        "workers": workers,
    }
    if extra_config:
        for key in sorted(extra_config):
            config[str(key)] = extra_config[key]
    fingerprint = config_fingerprint(
        dataset_digest=dataset_digest,
        miner=miner,
        min_sup=min_sup,
        mode=mode,
        workers=workers,
        extra=extra_config,
    )
    entry: dict[str, Any] = {
        "schema": LEDGER_SCHEMA_VERSION,
        "kind": "repro-run",
        "fingerprint": fingerprint,
        "config": config,
        "environment": dict(
            environment if environment is not None else default_environment()
        ),
        "wall_s": float(wall_s),
        "patterns": int(patterns),
        "counters": {
            key: int(value) for key, value in sorted(dict(counters).items())
        },
        "phases": {
            name: float(secs)
            for name, secs in sorted(dict(phases or {}).items())
        },
    }
    if cost_snapshot is not None:
        entry["cost"] = {
            "digest": costmodel.profile_digest(cost_snapshot),
            "top_roots": costmodel.top_roots(cost_snapshot, top_n),
            # Schema 2: the full per-root wall map (walls only — the
            # other per-root fields stay out of the ledger). This is
            # what the planner's ledger-calibrated predictor averages.
            "roots": {
                str(name): round(float(dict(row).get("wall_s", 0.0)), 6)
                for name, row in dict(
                    cost_snapshot.get("roots", {})
                ).items()
            },
        }
    if patterns_digest is not None:
        # Order-independent content hash of the result's pattern set
        # (:func:`repro.obs.provenance.patterns_digest`): history --check
        # flags *result-set* drift exactly, not just counter drift.
        entry["patterns_digest"] = patterns_digest
    if provenance_path is not None:
        # Where this run's provenance snapshot was written, so
        # ``ptpminer diff --patterns`` can join two ledger runs.
        entry["provenance_path"] = str(provenance_path)
    if plan is not None:
        entry["plan"] = dict(plan)
    if calibration is not None:
        entry["calibration"] = dict(calibration)
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    entry["ts"] = timestamp
    if run_id is None:
        content = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        run_id = (
            timestamp.replace(":", "").replace("+0000", "Z")
            + "-"
            + hashlib.sha256(content.encode("utf-8")).hexdigest()[:8]
        )
    entry["run_id"] = run_id
    return entry


class RunLedger:
    """Append-only JSONL ledger in one directory.

    All writes go through :meth:`append` — one ``json.dumps`` line per
    run, flushed per append, never rewritten. Everything else is read
    side: :meth:`entries` (tolerant, like ``read_trace``) and
    :meth:`find` (run-id prefix resolution for the ``diff`` CLI).
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        """The ledger file this instance reads and appends to."""
        return self.directory / LEDGER_FILENAME

    def append(self, entry: Mapping[str, Any]) -> dict[str, Any]:
        """Append one entry (validated) and return it as stored."""
        stored = dict(entry)
        if stored.get("schema") != LEDGER_SCHEMA_VERSION:
            raise ValueError(
                f"entry schema {stored.get('schema')!r} != "
                f"{LEDGER_SCHEMA_VERSION}"
            )
        if stored.get("kind") != "repro-run":
            raise ValueError(f"entry kind {stored.get('kind')!r}")
        if not stored.get("run_id") or not stored.get("fingerprint"):
            raise ValueError("entry missing run_id or fingerprint")
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(stored, sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return stored

    def entries(self) -> list[dict[str, Any]]:
        """Every readable entry, in file (= append) order.

        Accepts every schema in :data:`SUPPORTED_SCHEMAS` — pre-bump
        (v1) lines read back silently, merely lacking the newer
        optional fields. Unparseable or unknown-schema lines — a
        crashed writer's torn tail, a future schema — are skipped with
        one warning per ledger file (:mod:`repro.obs.warnonce`), so a
        damaged ledger degrades instead of blocking every consumer and
        repeat readers (``history`` renders, report joins) do not spam.
        """
        if not self.path.is_file():
            return []
        out: list[dict[str, Any]] = []
        skipped = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if (
                    not isinstance(entry, dict)
                    or entry.get("schema") not in SUPPORTED_SCHEMAS
                    or entry.get("kind") != "repro-run"
                ):
                    skipped += 1
                    continue
                out.append(entry)
        if skipped:
            warn_once(
                self.path,
                f"{self.path}: skipped {skipped} unreadable ledger "
                "line(s)",
                RuntimeWarning,
            )
        return out

    def find(self, run_ref: str) -> dict[str, Any]:
        """Resolve a run id, or a unique prefix of one, to its entry."""
        matches = [
            entry
            for entry in self.entries()
            if str(entry.get("run_id", "")).startswith(run_ref)
        ]
        exact = [e for e in matches if e.get("run_id") == run_ref]
        if exact:
            return exact[-1]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise ValueError(f"no run matching {run_ref!r} in {self.path}")
        ids = ", ".join(str(e["run_id"]) for e in matches[:5])
        raise ValueError(f"run ref {run_ref!r} is ambiguous: {ids}")


# ----------------------------------------------------------------------
# history: per-fingerprint trends with noise-aware flags
# ----------------------------------------------------------------------
def _wall_verdict(
    base: float, fresh: float, tolerance: Tolerance, env_match: bool
) -> str:
    """Classify a wall-time change: same rule as ``repro.perf.compare``."""
    delta = fresh - base
    rel = abs(delta) / base if base > 0 else (0.0 if delta == 0 else 1.0)
    if delta > tolerance.time_abs_s and rel > tolerance.time_rtol:
        return "regression" if env_match else "warning"
    if -delta > tolerance.time_abs_s and rel > tolerance.time_rtol:
        return "improvement"
    return "ok"


def _pair_flags(
    prev: Mapping[str, Any],
    cur: Mapping[str, Any],
    tolerance: Tolerance,
) -> list[dict[str, Any]]:
    """Flags for one consecutive pair of same-fingerprint runs."""
    flags: list[dict[str, Any]] = []
    if int(cur.get("patterns", 0)) != int(prev.get("patterns", 0)):
        flags.append(
            {
                "metric": "patterns",
                "severity": "regression",
                "base": prev.get("patterns"),
                "fresh": cur.get("patterns"),
                "detail": "pattern count drifted (exact check)",
            }
        )
    prev_counters = dict(prev.get("counters", {}))
    cur_counters = dict(cur.get("counters", {}))
    for key in sorted(set(prev_counters) | set(cur_counters)):
        if prev_counters.get(key) != cur_counters.get(key):
            flags.append(
                {
                    "metric": f"counters.{key}",
                    "severity": "regression",
                    "base": prev_counters.get(key),
                    "fresh": cur_counters.get(key),
                    "detail": "search counter drifted (exact check)",
                }
            )
    prev_digest = (prev.get("cost") or {}).get("digest")
    cur_digest = (cur.get("cost") or {}).get("digest")
    if prev_digest and cur_digest and prev_digest != cur_digest:
        flags.append(
            {
                "metric": "cost.digest",
                "severity": "regression",
                "base": prev_digest,
                "fresh": cur_digest,
                "detail": "search-space cost profile changed shape",
            }
        )
    prev_patterns = prev.get("patterns_digest")
    cur_patterns = cur.get("patterns_digest")
    if prev_patterns and cur_patterns and prev_patterns != cur_patterns:
        flags.append(
            {
                "metric": "patterns_digest",
                "severity": "regression",
                "base": prev_patterns,
                "fresh": cur_patterns,
                "detail": "result set drifted (exact content check: "
                "patterns and supports)",
            }
        )
    env_match = dict(prev.get("environment", {})) == dict(
        cur.get("environment", {})
    )
    verdict = _wall_verdict(
        float(prev.get("wall_s", 0.0)),
        float(cur.get("wall_s", 0.0)),
        tolerance,
        env_match,
    )
    if verdict in ("regression", "warning"):
        flags.append(
            {
                "metric": "wall_s",
                "severity": verdict,
                "base": prev.get("wall_s"),
                "fresh": cur.get("wall_s"),
                "detail": (
                    "wall time beyond tolerance"
                    if env_match
                    else "wall time beyond tolerance, but environment "
                    "fingerprints differ — downgraded to warning"
                ),
            }
        )
    return flags


def history_report(
    entries: list[dict[str, Any]],
    *,
    tolerance: Optional[Tolerance] = None,
    limit: Optional[int] = None,
) -> dict[str, Any]:
    """Trend report over ledger entries, grouped by config fingerprint.

    Within a group (entries kept in append order), each consecutive run
    pair is compared: counters/patterns/cost-digest/patterns-digest
    exactly, wall time with the perf layer's noise tolerance.
    ``regressions`` collects the hard flags of the *latest* pair of
    every group — that is what ``ptpminer history --check`` gates on —
    while older flags stay visible on their runs. ``limit`` truncates
    each group's *displayed* rows to the most recent N **after** flag
    computation, so ``--check`` semantics are unaffected by it.
    """
    tol = tolerance if tolerance is not None else Tolerance()
    groups: dict[str, list[dict[str, Any]]] = {}
    for entry in entries:
        groups.setdefault(str(entry.get("fingerprint")), []).append(entry)
    report_groups: list[dict[str, Any]] = []
    regressions: list[dict[str, Any]] = []
    warnings_out: list[dict[str, Any]] = []
    for fingerprint in sorted(groups):
        runs = groups[fingerprint]
        rows: list[dict[str, Any]] = []
        for index, entry in enumerate(runs):
            flags = (
                _pair_flags(runs[index - 1], entry, tol) if index else []
            )
            calibration = entry.get("calibration") or {}
            rows.append(
                {
                    "run_id": entry.get("run_id"),
                    "ts": entry.get("ts"),
                    "wall_s": entry.get("wall_s"),
                    "patterns": entry.get("patterns"),
                    "cost_digest": (entry.get("cost") or {}).get("digest"),
                    "patterns_digest": entry.get("patterns_digest"),
                    # Plan-vs-actual trend (schema-2 runs mined with a
                    # shard plan; None elsewhere): forecast share-MAPE
                    # and the strategy that consumed the plan.
                    "cal_mape": calibration.get("mape"),
                    "shard_strategy": calibration.get("strategy"),
                    "flags": flags,
                }
            )
            is_latest_pair = index == len(runs) - 1
            for flag in flags:
                record = {
                    "fingerprint": fingerprint,
                    "run_id": entry.get("run_id"),
                    **flag,
                }
                if flag["severity"] == "regression" and is_latest_pair:
                    regressions.append(record)
                elif flag["severity"] in ("regression", "warning"):
                    warnings_out.append(record)
        if limit is not None and limit >= 0:
            rows = rows[-limit:] if limit else []
        report_groups.append(
            {
                "fingerprint": fingerprint,
                "config": dict(runs[-1].get("config", {})),
                "runs": rows,
            }
        )
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "kind": "repro-history",
        "groups": report_groups,
        "regressions": regressions,
        "warnings": warnings_out,
    }


def render_history_markdown(report: Mapping[str, Any]) -> str:
    """The history report as a compact markdown document."""
    lines = ["# Run history", ""]
    groups = list(report.get("groups", []))
    if not groups:
        lines.append("_Ledger is empty._")
        return "\n".join(lines) + "\n"
    for group in groups:
        config = dict(group.get("config", {}))
        desc = ", ".join(
            f"{key}={config[key]}" for key in sorted(config)
        )
        lines.append(f"## `{group['fingerprint']}`")
        lines.append("")
        lines.append(f"Config: {desc}")
        lines.append("")
        lines.append(
            "| run | ts | wall_s | patterns | cost digest "
            "| plan MAPE | flags |"
        )
        lines.append("| --- | --- | ---: | ---: | --- | ---: | --- |")
        for row in group.get("runs", []):
            flags = row.get("flags", [])
            flag_text = (
                "; ".join(
                    f"{flag['severity']}: {flag['metric']}"
                    for flag in flags
                )
                or "—"
            )
            wall = row.get("wall_s")
            wall_text = f"{wall:.3f}" if isinstance(wall, float) else str(wall)
            mape = row.get("cal_mape")
            mape_text = f"{mape:.3f}" if isinstance(mape, float) else "—"
            lines.append(
                f"| `{row.get('run_id')}` | {row.get('ts')} "
                f"| {wall_text} | {row.get('patterns')} "
                f"| `{row.get('cost_digest') or '—'}` "
                f"| {mape_text} | {flag_text} |"
            )
        lines.append("")
    regressions = list(report.get("regressions", []))
    lines.append(
        f"**{len(regressions)} regression(s)**, "
        f"{len(report.get('warnings', []))} warning(s)."
    )
    for finding in regressions:
        lines.append(
            f"- `{finding['fingerprint']}` {finding['metric']}: "
            f"{finding['base']!r} -> {finding['fresh']!r} "
            f"({finding['detail']})"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# diff: two runs, exactly
# ----------------------------------------------------------------------
def diff_entries(
    entry_a: Mapping[str, Any],
    entry_b: Mapping[str, Any],
    *,
    tolerance: Optional[Tolerance] = None,
) -> dict[str, Any]:
    """Structured diff of two ledger entries (``b`` relative to ``a``).

    Counters and pattern counts diff exactly; wall time and per-phase
    wall get tolerance verdicts (downgraded to ``warning`` when the two
    environments differ); the stored heaviest-roots lists are joined by
    root name to show rank and cost shifts.
    """
    tol = tolerance if tolerance is not None else Tolerance()
    env_match = dict(entry_a.get("environment", {})) == dict(
        entry_b.get("environment", {})
    )
    counters_a = dict(entry_a.get("counters", {}))
    counters_b = dict(entry_b.get("counters", {}))
    counter_diffs = [
        {
            "counter": key,
            "a": counters_a.get(key),
            "b": counters_b.get(key),
            "delta": int(counters_b.get(key, 0) or 0)
            - int(counters_a.get(key, 0) or 0),
        }
        for key in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(key) != counters_b.get(key)
    ]
    wall_a = float(entry_a.get("wall_s", 0.0))
    wall_b = float(entry_b.get("wall_s", 0.0))
    phases_a = dict(entry_a.get("phases", {}))
    phases_b = dict(entry_b.get("phases", {}))
    phase_rows = []
    for name in sorted(set(phases_a) | set(phases_b)):
        a_val = float(phases_a.get(name, 0.0))
        b_val = float(phases_b.get(name, 0.0))
        phase_rows.append(
            {
                "phase": name,
                "a": a_val,
                "b": b_val,
                "delta": b_val - a_val,
                "verdict": _wall_verdict(a_val, b_val, tol, env_match),
            }
        )
    roots_a = {
        str(row.get("root")): (rank, row)
        for rank, row in enumerate(
            (entry_a.get("cost") or {}).get("top_roots", [])
        )
    }
    roots_b = {
        str(row.get("root")): (rank, row)
        for rank, row in enumerate(
            (entry_b.get("cost") or {}).get("top_roots", [])
        )
    }
    root_rows = []
    for root in sorted(set(roots_a) | set(roots_b)):
        rank_a, row_a = roots_a.get(root, (None, {}))
        rank_b, row_b = roots_b.get(root, (None, {}))
        root_rows.append(
            {
                "root": root,
                "rank_a": rank_a,
                "rank_b": rank_b,
                "states_a": row_a.get("states_created"),
                "states_b": row_b.get("states_created"),
                "wall_a": row_a.get("wall_s"),
                "wall_b": row_b.get("wall_s"),
            }
        )
    digest_a = (entry_a.get("cost") or {}).get("digest")
    digest_b = (entry_b.get("cost") or {}).get("digest")
    patterns_a = int(entry_a.get("patterns", 0))
    patterns_b = int(entry_b.get("patterns", 0))
    regressions = len(counter_diffs) > 0 or patterns_a != patterns_b
    wall_verdict = _wall_verdict(wall_a, wall_b, tol, env_match)
    if wall_verdict == "regression":
        regressions = True
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "kind": "repro-diff",
        "run_a": entry_a.get("run_id"),
        "run_b": entry_b.get("run_id"),
        "same_fingerprint": entry_a.get("fingerprint")
        == entry_b.get("fingerprint"),
        "env_match": env_match,
        "patterns": {
            "a": patterns_a,
            "b": patterns_b,
            "delta": patterns_b - patterns_a,
        },
        "wall_s": {
            "a": wall_a,
            "b": wall_b,
            "delta": wall_b - wall_a,
            "verdict": wall_verdict,
        },
        "counters": counter_diffs,
        "phases": phase_rows,
        "cost": {
            "digest_a": digest_a,
            "digest_b": digest_b,
            "changed": bool(digest_a and digest_b and digest_a != digest_b),
            "top_roots": root_rows,
        },
        "has_regressions": regressions,
    }


def render_diff_markdown(diff: Mapping[str, Any]) -> str:
    """The diff as a markdown document."""
    lines = [
        f"# Run diff: `{diff.get('run_a')}` -> `{diff.get('run_b')}`",
        "",
    ]
    if not diff.get("same_fingerprint", True):
        lines.append(
            "> Config fingerprints differ — these runs mined different "
            "configurations; exact comparisons below are informational."
        )
        lines.append("")
    if not diff.get("env_match", True):
        lines.append(
            "> Environment fingerprints differ; timing verdicts are "
            "downgraded to warnings."
        )
        lines.append("")
    patterns = diff.get("patterns", {})
    wall = diff.get("wall_s", {})
    lines.append(
        f"- patterns: {patterns.get('a')} -> {patterns.get('b')} "
        f"(delta {patterns.get('delta')})"
    )
    lines.append(
        f"- wall_s: {wall.get('a', 0.0):.3f} -> {wall.get('b', 0.0):.3f} "
        f"({wall.get('verdict')})"
    )
    counters = list(diff.get("counters", []))
    if counters:
        lines += ["", "## Counter drift (exact)", ""]
        lines.append("| counter | a | b | delta |")
        lines.append("| --- | ---: | ---: | ---: |")
        for row in counters:
            lines.append(
                f"| {row['counter']} | {row['a']} | {row['b']} "
                f"| {row['delta']:+d} |"
            )
    else:
        lines += ["", "Counters identical."]
    phases = list(diff.get("phases", []))
    if phases:
        lines += ["", "## Phase wall deltas", ""]
        lines.append("| phase | a (s) | b (s) | delta (s) | verdict |")
        lines.append("| --- | ---: | ---: | ---: | --- |")
        for row in phases:
            lines.append(
                f"| {row['phase']} | {row['a']:.4f} | {row['b']:.4f} "
                f"| {row['delta']:+.4f} | {row['verdict']} |"
            )
    cost = diff.get("cost", {})
    roots = list(cost.get("top_roots", []))
    if roots:
        lines += ["", "## Heaviest-root shifts", ""]
        if cost.get("changed"):
            lines.append(
                f"Cost digests differ: `{cost.get('digest_a')}` vs "
                f"`{cost.get('digest_b')}` — the search changed shape."
            )
            lines.append("")
        lines.append("| root | rank a | rank b | states a | states b |")
        lines.append("| --- | ---: | ---: | ---: | ---: |")

        def _rank(value: Any) -> str:
            return "—" if value is None else str(int(value) + 1)

        for row in roots:
            lines.append(
                f"| `{row['root']}` | {_rank(row['rank_a'])} "
                f"| {_rank(row['rank_b'])} "
                f"| {row['states_a'] if row['states_a'] is not None else '—'} "
                f"| {row['states_b'] if row['states_b'] is not None else '—'} |"
            )
    lines.append("")
    lines.append(
        "**Regressions detected.**"
        if diff.get("has_regressions")
        else "**No regressions.**"
    )
    return "\n".join(lines) + "\n"
