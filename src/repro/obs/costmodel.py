"""Per-root / per-level search cost attribution.

The paper's evidence is comparative search-space accounting, but the
:class:`~repro.core.pruning.PruneCounters` totals only say *how much*
work a run did — not *where in the search tree* it went. This module
attributes cost to the two axes the next performance arcs need:

* **roots** — for every frequent level-1 candidate (a search-tree root),
  the wall time and counter deltas (states created, nodes expanded,
  prune attributions, patterns emitted) of its entire subtree. Adaptive
  resharding and work stealing key off exactly this profile: which roots
  are heavy.
* **levels** — a per-depth candidate funnel (nodes that gathered
  candidates, candidates seen, candidates frequent, patterns emitted),
  the same shape as the paper's per-level candidate tables.

Collection follows the repo's zero-cost-when-disabled discipline
(`docs/observability.md`): :func:`active_collector` is ``None`` unless a
:class:`CostCollector` is installed, the search hoists one local, and
every recording site is guarded by a single ``is not None`` branch.

Sharding: the parent's ``plan_root`` records the root-level funnel once;
each worker records the subtrees of its disjoint root subset into a
private collector, ships :meth:`CostCollector.snapshot` home inside
``ShardResult`` (the same channel as metrics snapshots), and the parent
merges with :meth:`CostCollector.absorb`. Because every root lives in
exactly one shard and level tallies are plain integer sums, the merged
profile is bit-for-bit identical to a serial run's for any worker count
and any shard arrival order (wall times compare equal under a frozen
:class:`~repro.obs.clock.ManualClock`; with a real clock they are the
one environment-dependent field, which is why :func:`profile_digest`
excludes them).
"""

from __future__ import annotations

import hashlib
import json
from contextlib import AbstractContextManager
from typing import Any, Mapping, Optional

from repro.obs.seam import CollectorSeam

__all__ = [
    "COST_SCHEMA_VERSION",
    "CostCollector",
    "active_collector",
    "profile_digest",
    "set_collector",
    "top_roots",
    "use_collector",
]

#: Schema stamp on every snapshot, bumped on breaking shape changes.
COST_SCHEMA_VERSION = 1

#: ``PruneCounters.as_dict`` keys attributed per root subtree. Fixed
#: order; ``candidates_considered``/``pruned_point_labels`` are omitted
#: because they are root-gather costs, not subtree costs.
_ROOT_FIELDS = (
    "nodes_expanded",
    "candidates_frequent",
    "pruned_pair",
    "pruned_postfix_branches",
    "pruned_dead_states",
    "states_created",
    "patterns_emitted",
)

#: Per-level funnel fields, in emission order.
_LEVEL_FIELDS = ("nodes", "candidates", "frequent", "patterns")


class CostCollector:
    """Accumulates per-root and per-level search cost.

    The recording methods (``record_*``) are the hot-path surface: plain
    dict updates, no allocation beyond first touch of a key. Snapshots
    are plain JSON-able dicts so they cross the engine's process
    boundary unchanged.
    """

    def __init__(self) -> None:
        self._roots: dict[str, dict[str, Any]] = {}
        self._levels: dict[int, dict[str, int]] = {}

    # ------------------------------------------------------------------
    # hot-path recording
    # ------------------------------------------------------------------
    def record_node(self, level: int, num_candidates: int) -> None:
        """One search node at ``level`` gathered ``num_candidates``."""
        row = self._levels.get(level)
        if row is None:
            row = dict.fromkeys(_LEVEL_FIELDS, 0)
            self._levels[level] = row
        row["nodes"] += 1
        row["candidates"] += num_candidates

    def record_frequent(self, level: int) -> None:
        """One frequent candidate survived the support check at ``level``."""
        row = self._levels.get(level)
        if row is None:
            row = dict.fromkeys(_LEVEL_FIELDS, 0)
            self._levels[level] = row
        row["frequent"] += 1

    def record_pattern(self, length: int) -> None:
        """One pattern of ``length`` tokens was emitted."""
        row = self._levels.get(length)
        if row is None:
            row = dict.fromkeys(_LEVEL_FIELDS, 0)
            self._levels[length] = row
        row["patterns"] += 1

    def record_root(
        self,
        root: str,
        wall_s: float,
        before: Mapping[str, int],
        after: Mapping[str, int],
    ) -> None:
        """Attribute one root subtree: ``after - before`` counter deltas.

        ``before``/``after`` are ``PruneCounters.as_dict()`` snapshots
        taken around the root's expansion; only :data:`_ROOT_FIELDS`
        are kept. Each root is expanded exactly once per run, so a
        repeated ``root`` key (only possible across merges of
        overlapping runs) accumulates.
        """
        entry = self._roots.get(root)
        if entry is None:
            entry = {"wall_s": 0.0, **dict.fromkeys(_ROOT_FIELDS, 0)}
            self._roots[root] = entry
        entry["wall_s"] += wall_s
        for fld in _ROOT_FIELDS:
            entry[fld] += int(after.get(fld, 0)) - int(before.get(fld, 0))

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A JSON-able, key-sorted snapshot of everything recorded."""
        return {
            "schema": COST_SCHEMA_VERSION,
            "kind": "repro-cost",
            "roots": {
                root: {
                    "wall_s": entry["wall_s"],
                    **{fld: entry[fld] for fld in _ROOT_FIELDS},
                }
                for root, entry in sorted(self._roots.items())
            },
            "levels": {
                str(level): {fld: row[fld] for fld in _LEVEL_FIELDS}
                for level, row in sorted(self._levels.items())
            },
        }

    def absorb(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a shipped snapshot in, order-independently.

        Shard snapshots cover disjoint root subsets, so root entries
        are a keyed union (a shared key — e.g. the parent's root-level
        funnel vs. a worker's — accumulates field-wise) and the merged
        result is identical for any arrival order. Iteration is sorted
        anyway so emission order never leaks producer order.
        """
        schema = snapshot.get("schema")
        if schema != COST_SCHEMA_VERSION:
            raise ValueError(
                f"cost snapshot schema {schema!r} != {COST_SCHEMA_VERSION}"
            )
        for root, entry in sorted(dict(snapshot.get("roots", {})).items()):
            mine = self._roots.get(root)
            if mine is None:
                mine = {"wall_s": 0.0, **dict.fromkeys(_ROOT_FIELDS, 0)}
                self._roots[root] = mine
            mine["wall_s"] += float(entry.get("wall_s", 0.0))
            for fld in _ROOT_FIELDS:
                mine[fld] += int(entry.get(fld, 0))
        for level_key, row in sorted(dict(snapshot.get("levels", {})).items()):
            level = int(level_key)
            mine_row = self._levels.get(level)
            if mine_row is None:
                mine_row = dict.fromkeys(_LEVEL_FIELDS, 0)
                self._levels[level] = mine_row
            for fld in _LEVEL_FIELDS:
                mine_row[fld] += int(row.get(fld, 0))


def profile_digest(snapshot: Mapping[str, Any]) -> str:
    """Short content hash of a snapshot, excluding wall times.

    Wall times are the only environment-dependent field, so two runs of
    the same configuration — serial or sharded, fast or slow machine —
    digest identically iff they explored the same search space. The
    ledger stores this digest per run; a digest shift between runs of
    one config fingerprint means the *search* changed, not the machine.
    """
    stripped = {
        "schema": snapshot.get("schema"),
        "roots": {
            root: {
                fld: value
                for fld, value in sorted(dict(entry).items())
                if fld != "wall_s"
            }
            for root, entry in sorted(dict(snapshot.get("roots", {})).items())
        },
        "levels": {
            key: dict(sorted(dict(row).items()))
            for key, row in sorted(dict(snapshot.get("levels", {})).items())
        },
    }
    payload = json.dumps(stripped, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def top_roots(
    snapshot: Mapping[str, Any], n: int = 5
) -> list[dict[str, Any]]:
    """The ``n`` heaviest roots: by wall time, then states, then name.

    The two tiebreakers make the ranking deterministic even when wall
    times are all equal (frozen clock) or all zero (shipped snapshots
    from a worker that never saw the parent's clock).
    """
    ranked = sorted(
        dict(snapshot.get("roots", {})).items(),
        key=lambda item: (
            -float(item[1].get("wall_s", 0.0)),
            -int(item[1].get("states_created", 0)),
            item[0],
        ),
    )
    return [
        {"root": root, **{key: entry[key] for key in sorted(entry)}}
        for root, entry in ranked[: max(n, 0)]
    ]


# ----------------------------------------------------------------------
# installation seam (shared implementation: repro.obs.seam)
# ----------------------------------------------------------------------
_seam: CollectorSeam[CostCollector] = CollectorSeam(CostCollector)


def active_collector() -> Optional[CostCollector]:
    """The installed collector, or ``None`` when cost tracking is off."""
    return _seam.active()


def set_collector(collector: Optional[CostCollector]) -> None:
    """Install ``collector`` process-wide (``None`` turns tracking off)."""
    _seam.install(collector)


def use_collector(
    collector: Optional[CostCollector] = None,
) -> AbstractContextManager[CostCollector]:
    """Scope-install a collector (a fresh one by default); restores on exit."""
    return _seam.scope(collector)
