"""Live shard telemetry bus: streaming progress for sharded runs.

Since the sharded engine silences worker observability on fork and only
ships it home *after* each shard completes, a long parallel run used to
be a black box: no progress, no ETA, no way to see a straggler shard
until the whole pool drained. This module is the fix — a lightweight
telemetry bus that streams worker heartbeats to the parent **during**
the run:

* :class:`LiveSink` lives worker-side. The engine hands it one
  per-root-candidate callback (:meth:`LiveSink.on_root`); the sink
  throttles those callbacks through the injectable
  :mod:`repro.obs.clock` and publishes compact :class:`LiveFrame`
  payloads (shard id, roots expanded / total, patterns found, cumulative
  prune-counter totals, rss) onto whatever ``publish`` callable it was
  built with — a direct function for the serial executor, a
  ``multiprocessing`` manager queue's ``put`` for the process executor.
* :class:`LiveAggregator` lives parent-side and is drained from the
  engine's result-collection loop (no extra thread). It merges frames
  into per-shard *lanes*, enforces monotonic progress, computes a global
  ETA from per-root expansion rates, and flags **stragglers** — shards
  whose throughput falls below ``straggler_factor`` × the median lane
  throughput.

The bus keeps the repository's zero-cost-when-disabled discipline: it
is never constructed unless live mode is explicitly requested
(``mine_sharded(live=...)``, CLI ``--live``, or
``measure(collect_live=True)``), workers receive no sink otherwise, and
the miner's per-root callback stays ``None`` — one pointer check on an
already-cold path. All throttling reads :func:`repro.obs.clock.now`,
so :class:`~repro.obs.clock.ManualClock` tests can drive heartbeats
deterministically (lint rule R006 bans raw ``time`` imports here).

Frame logs (CLI ``--live-log``) are JSONL, one frame per line, and are
read back tolerantly (:func:`read_live_log`) so ``ptpminer report`` can
parse logs from killed runs.
"""

from __future__ import annotations

import json
import sys
from collections.abc import Callable, Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, TextIO, Union

from repro.obs import clock as _clock
from repro.obs.warnonce import warn_once

__all__ = [
    "LiveAggregator",
    "LiveCollector",
    "LiveConfig",
    "LiveFrame",
    "LiveSink",
    "ShardLane",
    "active_live",
    "read_live_log",
    "set_live",
    "use_live",
]


def _read_rss_mb() -> Optional[float]:
    """Resident set size of this process in MiB (``None`` if unknown).

    Uses ``resource.getrusage`` — ``ru_maxrss`` is KiB on Linux — so the
    bus stays dependency-free. Platforms without ``resource`` report
    ``None`` rather than guessing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if usage <= 0:  # pragma: no cover - defensive
        return None
    return usage / 1024.0


@dataclass(frozen=True, slots=True)
class LiveFrame:
    """One heartbeat from one shard, as published on the bus.

    ``counters`` carries the shard's *cumulative*
    :meth:`~repro.core.pruning.PruneCounters.as_dict` totals at emission
    time (cumulative, not deltas, so frames are idempotent to re-ingest
    and late/duplicated frames cannot corrupt the aggregate). ``ts`` is
    the publishing process's :func:`repro.obs.clock.now`; lane rates are
    computed only from same-shard timestamp deltas, so differing clock
    origins across worker processes cannot skew them.
    """

    shard: int
    ts: float
    roots_done: int
    roots_total: int
    patterns: int
    counters: Mapping[str, float] = field(default_factory=dict)
    rss_mb: Optional[float] = None
    final: bool = False

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (what ``--live-log`` writes, one per line)."""
        return {
            "shard": self.shard,
            "ts": self.ts,
            "roots_done": self.roots_done,
            "roots_total": self.roots_total,
            "patterns": self.patterns,
            "counters": dict(self.counters),
            "rss_mb": self.rss_mb,
            "final": self.final,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LiveFrame":
        """Rebuild a frame from :meth:`as_dict` output (log lines, bus)."""
        return cls(
            shard=int(payload["shard"]),
            ts=float(payload["ts"]),
            roots_done=int(payload["roots_done"]),
            roots_total=int(payload["roots_total"]),
            patterns=int(payload["patterns"]),
            counters=dict(payload.get("counters") or {}),
            rss_mb=(
                None
                if payload.get("rss_mb") is None
                else float(payload["rss_mb"])
            ),
            final=bool(payload.get("final", False)),
        )


@dataclass(frozen=True, slots=True)
class LiveConfig:
    """Tuning knobs for live mode.

    ``interval_s`` throttles both worker heartbeats and parent-side
    rendering (injectable-clock seconds). ``straggler_factor`` is the
    ``k`` in the straggler rule *throughput < k · median lane
    throughput*. ``render=False`` keeps the bus silent (frames are still
    aggregated — what ``measure(collect_live=True)`` uses);
    ``stream=None`` renders to stderr. ``log_path`` appends every
    ingested frame to a JSONL log for ``ptpminer report``.
    """

    interval_s: float = 0.5
    straggler_factor: float = 0.5
    render: bool = True
    stream: Optional[TextIO] = None
    log_path: Optional[str] = None

    def __post_init__(self) -> None:
        """Validate the throttle interval and straggler factor."""
        if self.interval_s < 0:
            raise ValueError("interval_s must be >= 0")
        if self.straggler_factor <= 0:
            raise ValueError("straggler_factor must be > 0")


class LiveSink:
    """Worker-side publisher: throttle per-root callbacks into frames.

    Built by the engine in the worker (or inline for the serial
    executor) with the shard's identity and a ``publish`` callable that
    accepts one :meth:`LiveFrame.as_dict` payload. Frames cross the
    process boundary as plain dicts so the bus never depends on class
    pickling compatibility.
    """

    def __init__(
        self,
        shard: int,
        roots_total: int,
        publish: Callable[[dict[str, Any]], None],
        *,
        min_interval_s: float = 0.5,
    ) -> None:
        if roots_total < 0:
            raise ValueError("roots_total must be >= 0")
        if min_interval_s < 0:
            raise ValueError("min_interval_s must be >= 0")
        self.shard = shard
        self.roots_total = roots_total
        self.min_interval_s = min_interval_s
        self.frames_published = 0
        self._publish = publish
        self._last_emit: Optional[float] = None

    def on_root(
        self,
        done: int,
        total: int,
        patterns: int,
        counters: Mapping[str, float],
    ) -> None:
        """Per-root-candidate callback from ``search_shard``.

        Emits a frame for the first completed root and then at most once
        per ``min_interval_s`` (injectable-clock) seconds; the final
        frame is :meth:`finish`'s job, so a fast shard publishes exactly
        two frames.
        """
        now = _clock.now()
        if (
            self._last_emit is not None
            and now - self._last_emit < self.min_interval_s
        ):
            return
        self._emit(
            now,
            roots_done=done,
            roots_total=total,
            patterns=patterns,
            counters=counters,
            final=False,
        )

    def finish(
        self, patterns: int, counters: Mapping[str, float]
    ) -> None:
        """Publish the shard's final frame (always emitted, never throttled)."""
        self._emit(
            _clock.now(),
            roots_done=self.roots_total,
            roots_total=self.roots_total,
            patterns=patterns,
            counters=counters,
            final=True,
        )

    def _emit(
        self,
        now: float,
        *,
        roots_done: int,
        roots_total: int,
        patterns: int,
        counters: Mapping[str, float],
        final: bool,
    ) -> None:
        frame = LiveFrame(
            shard=self.shard,
            ts=now,
            roots_done=roots_done,
            roots_total=roots_total,
            patterns=patterns,
            counters=dict(counters),
            rss_mb=_read_rss_mb(),
            final=final,
        )
        self._last_emit = now
        self.frames_published += 1
        self._publish(frame.as_dict())


@dataclass(slots=True)
class ShardLane:
    """Parent-side merged state of one shard's frames."""

    shard: int
    roots_total: int = 0
    roots_done: int = 0
    patterns: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    first_ts: Optional[float] = None
    last_ts: Optional[float] = None
    rss_mb: Optional[float] = None
    frames: int = 0
    final: bool = False

    @property
    def busy_s(self) -> float:
        """Seconds between this lane's first and last frame."""
        if self.first_ts is None or self.last_ts is None:
            return 0.0
        return self.last_ts - self.first_ts

    @property
    def rate_roots_per_s(self) -> Optional[float]:
        """Roots expanded per second, from same-shard timestamp deltas.

        ``None`` until the lane has both progress and elapsed time —
        a lane that has only published its first frame has no rate yet.
        """
        busy = self.busy_s
        if busy <= 0 or self.roots_done <= 0:
            return None
        return self.roots_done / busy

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready lane summary (one row of ``summary()['shards']``)."""
        return {
            "roots_done": self.roots_done,
            "roots_total": self.roots_total,
            "patterns": self.patterns,
            "busy_s": round(self.busy_s, 6),
            "rate_roots_per_s": (
                None
                if self.rate_roots_per_s is None
                else round(self.rate_roots_per_s, 6)
            ),
            "rss_mb": self.rss_mb,
            "frames": self.frames,
            "final": self.final,
        }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class LiveAggregator:
    """Parent-side merge of shard frames into lanes, ETA, and stragglers.

    Drained from the engine's result-collection loop — :meth:`ingest`
    one frame at a time, no thread. Progress is **monotonic**: a stale
    or re-delivered frame can never move a lane backwards. Straggler
    detection compares each lane's per-root throughput against the
    median across lanes (``straggler_factor`` × median, at least two
    measurable lanes required), which is exactly the skew signature of
    level-1 fan-out sharding: a handful of frequent root symbols
    dominating one shard's runtime.
    """

    def __init__(
        self,
        config: Optional[LiveConfig] = None,
        *,
        shard_totals: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.config = config if config is not None else LiveConfig()
        self.lanes: dict[int, ShardLane] = {}
        self.frames_ingested = 0
        # Root totals are ints; their sum is order-independent.
        self._expected_total = (
            sum(shard_totals.values()) if shard_totals else None  # repro-lint: R013
        )
        if shard_totals:
            for shard, total in sorted(shard_totals.items()):
                self.lanes[shard] = ShardLane(
                    shard=shard, roots_total=total
                )
        self._last_render: Optional[float] = None
        self._called_out: set[int] = set()
        self._log_handle: Optional[TextIO] = None

    # -- ingestion -----------------------------------------------------
    def ingest(
        self, frame: Union[LiveFrame, Mapping[str, Any]]
    ) -> LiveFrame:
        """Merge one frame (dict payloads accepted) into its lane."""
        if not isinstance(frame, LiveFrame):
            frame = LiveFrame.from_dict(frame)
        lane = self.lanes.get(frame.shard)
        if lane is None:
            lane = ShardLane(shard=frame.shard)
            self.lanes[frame.shard] = lane
        lane.roots_total = max(lane.roots_total, frame.roots_total)
        lane.roots_done = max(lane.roots_done, frame.roots_done)
        lane.patterns = max(lane.patterns, frame.patterns)
        if frame.counters:
            for key, value in frame.counters.items():
                lane.counters[key] = max(
                    lane.counters.get(key, 0.0), float(value)
                )
        if lane.first_ts is None or frame.ts < lane.first_ts:
            lane.first_ts = frame.ts
        if lane.last_ts is None or frame.ts > lane.last_ts:
            lane.last_ts = frame.ts
        if frame.rss_mb is not None:
            lane.rss_mb = (
                frame.rss_mb
                if lane.rss_mb is None
                else max(lane.rss_mb, frame.rss_mb)
            )
        lane.frames += 1
        lane.final = lane.final or frame.final
        self.frames_ingested += 1
        if self._log_handle is not None:
            self._log_handle.write(
                json.dumps(frame.as_dict(), separators=(",", ":")) + "\n"
            )
        return frame

    # -- derived state -------------------------------------------------
    def _lanes_in_shard_order(self) -> list[ShardLane]:
        """Lanes in ascending shard id.

        Float accumulations over lanes must iterate this, not
        ``self.lanes.values()``: lane insertion order follows frame
        arrival order, which varies run to run, and float addition is
        not associative.
        """
        return [lane for _, lane in sorted(self.lanes.items())]

    @property
    def roots_total(self) -> int:
        """Total root candidates across all lanes (plan-time if known)."""
        observed = sum(lane.roots_total for lane in self.lanes.values())
        if self._expected_total is not None:
            return max(self._expected_total, observed)
        return observed

    @property
    def roots_done(self) -> int:
        """Root candidates expanded so far, across all lanes (monotonic)."""
        return sum(lane.roots_done for lane in self.lanes.values())

    @property
    def patterns(self) -> int:
        """Patterns found so far, across all lanes."""
        return sum(lane.patterns for lane in self.lanes.values())

    def eta_s(self) -> Optional[float]:
        """Seconds until done, from summed per-root lane expansion rates.

        ``None`` until at least one lane has a measurable rate. Finished
        lanes stop contributing rate (their work is done), so the ETA
        tracks the still-running lanes — the stragglers.
        """
        remaining = self.roots_total - self.roots_done
        if remaining <= 0:
            return 0.0
        rate = 0.0
        for lane in self._lanes_in_shard_order():
            lane_rate = lane.rate_roots_per_s
            if lane_rate is not None and not lane.final:
                rate += lane_rate
        if rate <= 0:
            return None
        return remaining / rate

    def stragglers(self) -> list[int]:
        """Shards whose throughput < ``straggler_factor`` × median.

        Needs at least two lanes with measurable rates; a single lane
        has no peers to fall behind.
        """
        rates = {
            lane.shard: rate
            for lane in self.lanes.values()
            if (rate := lane.rate_roots_per_s) is not None
        }
        if len(rates) < 2:
            return []
        median = _median(list(rates.values()))
        if median <= 0:
            return []
        cutoff = self.config.straggler_factor * median
        return sorted(
            shard for shard, rate in rates.items() if rate < cutoff
        )

    def summary(self) -> dict[str, Any]:
        """JSON-ready run summary: global progress, lanes, imbalance.

        ``shard_imbalance`` is max/mean lane busy-time (1.0 = perfectly
        balanced; ``None`` until two lanes have busy time) — the number
        the harness surfaces as the ``shard_imbalance`` sweep column.
        """
        stragglers = self.stragglers()
        busies = [
            lane.busy_s
            for lane in self._lanes_in_shard_order()
            if lane.busy_s > 0
        ]
        imbalance: Optional[float] = None
        if len(busies) >= 2:
            mean = sum(busies) / len(busies)
            if mean > 0:
                imbalance = max(busies) / mean
        shards = {
            str(shard): {
                **lane.as_dict(),
                "straggler": shard in stragglers,
            }
            for shard, lane in sorted(self.lanes.items())
        }
        eta = self.eta_s()
        return {
            "roots_done": self.roots_done,
            "roots_total": self.roots_total,
            "patterns": self.patterns,
            "frames": self.frames_ingested,
            "eta_s": None if eta is None else round(eta, 6),
            "stragglers": stragglers,
            "shard_imbalance": (
                None if imbalance is None else round(imbalance, 6)
            ),
            "shards": shards,
        }

    # -- rendering -----------------------------------------------------
    def render_line(self) -> str:
        """One-line view: global progress, ETA, per-shard lanes.

        Lane markers: ``*`` flags a straggler, ``+`` a finished shard.
        """
        total = self.roots_total
        done = self.roots_done
        pct = f"{done / total:.0%}" if total else "—"
        eta = self.eta_s()
        eta_text = "—" if eta is None else f"{eta:.1f}s"
        stragglers = set(self.stragglers())
        lanes = " ".join(
            f"s{lane.shard} {lane.roots_done}/{lane.roots_total}"
            + ("+" if lane.final else "*" if lane.shard in stragglers else "")
            for _, lane in sorted(self.lanes.items())
        )
        return (
            f"[live] roots {done}/{total} ({pct}) eta {eta_text} "
            f"patterns={self.patterns} | {lanes}"
        )

    def maybe_render(self, *, force: bool = False) -> None:
        """Render a lane line (and any new straggler callouts), throttled.

        Rendering is throttled by ``config.interval_s`` through the
        injectable clock; ``force=True`` (the engine's final call)
        bypasses the throttle. A straggler callout is printed at most
        once per shard. With ``config.render`` off this is a no-op.
        """
        if not self.config.render:
            return
        now = _clock.now()
        if (
            not force
            and self._last_render is not None
            and now - self._last_render < self.config.interval_s
        ):
            return
        self._last_render = now
        stream = (
            self.config.stream
            if self.config.stream is not None
            else sys.stderr
        )
        print(self.render_line(), file=stream)
        for shard in self.stragglers():
            if shard in self._called_out:
                continue
            self._called_out.add(shard)
            lane = self.lanes[shard]
            rate = lane.rate_roots_per_s
            rates = [
                r
                for peer in self.lanes.values()
                if (r := peer.rate_roots_per_s) is not None
            ]
            median = _median(rates) if rates else 0.0
            print(
                f"[live] straggler: shard {shard} at "
                f"{0.0 if rate is None else rate:.2f} roots/s "
                f"(< {self.config.straggler_factor:.2f}x median "
                f"{median:.2f} roots/s)",
                file=stream,
            )

    # -- frame log -----------------------------------------------------
    def open_log(self) -> None:
        """Start appending ingested frames to ``config.log_path`` (JSONL)."""
        if self.config.log_path is None or self._log_handle is not None:
            return
        self._log_handle = Path(self.config.log_path).open(
            "w", encoding="utf-8"
        )

    def close_log(self) -> None:
        """Flush and close the frame log, if one was opened."""
        if self._log_handle is not None:
            self._log_handle.flush()
            self._log_handle.close()
            self._log_handle = None


def read_live_log(path: Union[str, Path]) -> list[LiveFrame]:
    """Parse a ``--live-log`` JSONL file back into frames, tolerantly.

    Undecodable lines — the truncated tail of a killed run, editor
    garbage — are skipped with a single :class:`UserWarning` naming the
    count, never a crash, so ``ptpminer report`` works on partial runs.
    The warning fires once per *file* per process
    (:mod:`repro.obs.warnonce`): ``build_run_report`` reads the same
    live log for the summary and again for the shard lanes, and used to
    warn twice about the same truncated tail.
    """
    frames: list[LiveFrame] = []
    bad = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                frames.append(LiveFrame.from_dict(json.loads(line)))
            except (ValueError, KeyError, TypeError):
                bad += 1
    if bad:
        warn_once(
            path,
            f"{path}: skipped {bad} undecodable live-log line(s) "
            "(truncated or corrupt run?)",
            UserWarning,
        )
    return frames


@dataclass(slots=True)
class LiveCollector:
    """The installable handle live mode hangs off.

    Holds the :class:`LiveConfig` before the run and receives the
    :class:`LiveAggregator` (while running) and its final
    :meth:`~LiveAggregator.summary` dict (after) from the engine —
    what :func:`repro.harness.metrics.measure` returns as
    ``RunMetrics.live_summary``.
    """

    config: LiveConfig = field(default_factory=LiveConfig)
    aggregator: Optional[LiveAggregator] = None
    summary: Optional[dict[str, Any]] = None


_active: Optional[LiveCollector] = None


def active_live() -> Optional[LiveCollector]:
    """The installed live collector, or ``None`` when live mode is off."""
    return _active


def set_live(collector: Optional[LiveCollector]) -> None:
    """Install ``collector`` process-wide (``None`` turns live mode off)."""
    global _active
    _active = collector


@contextmanager
def use_live(
    collector: Union[LiveCollector, LiveConfig, None] = None,
) -> Iterator[LiveCollector]:
    """Scope-install a live collector; restores the previous one on exit.

    Accepts a ready :class:`LiveCollector`, a bare :class:`LiveConfig`
    (wrapped in a fresh collector), or nothing (all defaults).
    """
    if collector is None:
        resolved = LiveCollector()
    elif isinstance(collector, LiveConfig):
        resolved = LiveCollector(config=collector)
    else:
        resolved = collector
    previous = _active
    set_live(resolved)
    try:
        yield resolved
    finally:
        set_live(previous)
