"""Predictive shard planning: profile, forecast, assign, calibrate.

PR 5's live telemetry *detects* stragglers while they happen and PR 7's
cost model attributes where the time went *after* the run. This module
closes the loop into prevention: it forecasts per-root subtree cost
**before** the subtrees are expanded, so the engine can deal root
candidates to shards by predicted load (LPT — longest processing time
first) instead of blind round-robin. The forecast is safe to act on
because the engine's order-independent merge guarantees a bit-for-bit
identical result for *any* partition (see :mod:`repro.engine`); a wrong
prediction can only cost wall time, never correctness.

Three layers, each usable on its own:

* :func:`profile_workload` — static per-root features straight off the
  encoded database, without mining any subtree: level-1 root frequency
  (support), supporter-set size, projected token mass, pair-table
  degree, plus dataset-level shape (label cardinality, sequence-length
  distribution, pair-table density). One ``plan_root`` call is the only
  search work done.
* :func:`predict_costs` — per-root cost forecasts. With history (prior
  ``costmodel`` profiles looked up in the run ledger by dataset digest
  and mining config, :func:`history_root_costs`) the forecast is the
  mean recorded wall time per root; roots never seen before fall back
  to the static score, rescaled onto the history's cost scale. With no
  history at all the forecast *is* the static score —
  ``projected_tokens * (1 + pair_degree)``, i.e. projected database
  mass times a branching-factor proxy. Only relative magnitudes matter
  for load balancing, so the static fallback needs no unit calibration.
* :func:`build_plan` / :func:`render_plan_markdown` — the **PlanReport**:
  predicted per-root costs, the per-shard loads and max/mean imbalance
  the round-robin deal would produce, and the recommended LPT
  assignment with its predicted imbalance, as JSON or markdown.

After a run, :func:`calibration_record` joins the plan against the
realized cost profile (predicted vs actual per root: share-normalized
MAPE, Spearman rank correlation, worst-miss root). The CLI appends the
record to the run ledger, where ``ptpminer history`` surfaces the MAPE
trend and ``ptpminer report`` renders the "Plan vs actual" section —
each mining run makes the next plan's forecast checkable.

Cost shares, not raw magnitudes: a static forecast is in arbitrary
score units while actuals are in seconds, so calibration compares each
root's *fraction* of the total predicted/actual cost. Shares are what
load balancing consumes, which makes the MAPE read directly as "how
wrong were the loads".
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional, Sequence

from repro.core.config import SHARD_STRATEGIES, MinerConfig
from repro.core.counting import PairTables, symbol_document_frequency
from repro.core.ptpminer import PTPMiner, _EPS
from repro.model.database import ESequenceDatabase
from repro.temporal.endpoint import EncodedDatabase

__all__ = [
    "PLAN_SCHEMA_VERSION",
    "build_plan",
    "calibration_record",
    "history_root_costs",
    "imbalance",
    "load_plan",
    "lpt_assign",
    "plan_summary",
    "predict_costs",
    "profile_workload",
    "render_plan_markdown",
    "roundrobin_assign",
]

#: Schema stamp on plans and calibration records; bumped on breaking
#: shape changes.
PLAN_SCHEMA_VERSION = 1

#: How many historical runs the ledger-calibrated predictor averages.
DEFAULT_HISTORY_LIMIT = 5

#: Rows shown in the markdown heaviest-roots table.
_TOP_ROOTS_SHOWN = 10


# ----------------------------------------------------------------------
# profiler: static features, no subtree mining
# ----------------------------------------------------------------------
def profile_workload(
    db: ESequenceDatabase,
    config: MinerConfig,
    *,
    weights: Optional[Sequence[float]] = None,
) -> dict[str, Any]:
    """Per-root and dataset-level static features, without mining.

    Runs exactly the parent half of the sharded engine
    (:meth:`~repro.core.ptpminer.PTPMiner.plan_root`: validation, point
    prune, encode, pair tables, root candidate gather) and derives,
    per frequent level-1 root:

    ``support``
        The root's weighted frequency (its level-1 support).
    ``supporters``
        How many sequences contain it — the size of the projected
        database its subtree scans.
    ``projected_tokens``
        Total endpoint tokens across its supporter sequences — the mass
        of that projected database.
    ``pair_degree``
        How many frequent symbols the pair tables admit after this
        root's symbol (S-pair or I-pair weight at/above threshold) —
        a branching-factor proxy for the subtree's fan-out.
    ``static_score``
        ``projected_tokens * (1 + pair_degree)`` — projected scan mass
        times fan-out, the documented no-history cost forecast.
    ``order``
        The root's position in the canonical candidate order (the order
        the engine's round-robin deal consumes).

    Dataset-level features ride along under ``"dataset"``: sequence
    count, label cardinality, token totals, the sequence-length
    distribution, and pair-table density (occupied fraction of the
    possible S-/I-pair cells).
    """
    miner = PTPMiner.from_config(config)
    threshold = float(db.absolute_support(config.min_sup))
    run_weights = (
        list(weights) if weights is not None else [1.0] * len(db)
    )
    mining_db, _counters, root = miner.plan_root(
        db, run_weights, threshold
    )
    encoded = EncodedDatabase(mining_db)
    pairs = PairTables(encoded, run_weights)
    df = symbol_document_frequency(encoded, run_weights)
    frequent_syms = sorted(
        sym for sym, weight in df.items() if weight + _EPS >= threshold
    )
    tokens_of = {
        seq.sid: sum(len(ps) for ps in seq.pointsets)
        for seq in encoded.sequences
    }
    roots: dict[str, dict[str, Any]] = {}
    for order, cand in enumerate(sorted(root)):
        _ext, sym, pocc = cand
        weight, sids = root[cand]
        name = str(encoded.decode_token((sym, pocc)))
        projected_tokens = sum(tokens_of.get(sid, 0) for sid in sids)
        pair_degree = sum(
            1
            for other in frequent_syms
            if pairs.s_pair(sym, other) + _EPS >= threshold
            or pairs.i_pair(sym, other) + _EPS >= threshold
        )
        roots[name] = {
            "order": order,
            "support": float(weight),
            "supporters": len(sids),
            "projected_tokens": projected_tokens,
            "pair_degree": pair_degree,
            "static_score": float(projected_tokens) * (1 + pair_degree),
        }
    seq_tokens = sorted(tokens_of.values())
    num_syms = len(df)
    pair_stats = pairs.stats()
    possible_s = num_syms * num_syms
    possible_i = num_syms * (num_syms + 1) // 2
    dataset: dict[str, Any] = {
        "sequences": len(mining_db),
        "labels": len(encoded.labels),
        "tokens": sum(seq_tokens),
        "seq_tokens": _distribution(seq_tokens),
        "pair_density": {
            "s_pairs": pair_stats["s_pairs"],
            "i_pairs": pair_stats["i_pairs"],
            "s_density": (
                round(pair_stats["s_pairs"] / possible_s, 6)
                if possible_s
                else 0.0
            ),
            "i_density": (
                round(pair_stats["i_pairs"] / possible_i, 6)
                if possible_i
                else 0.0
            ),
        },
    }
    return {
        "schema": PLAN_SCHEMA_VERSION,
        "kind": "repro-plan-profile",
        "threshold": threshold,
        "dataset": dataset,
        "roots": roots,
    }


def _distribution(values: Sequence[int]) -> dict[str, float]:
    """Min/mean/median/max of a sorted integer sample (zeros if empty)."""
    if not values:
        return {"min": 0, "mean": 0.0, "median": 0.0, "max": 0}
    mid = len(values) // 2
    median = (
        float(values[mid])
        if len(values) % 2
        else (values[mid - 1] + values[mid]) / 2
    )
    return {
        "min": values[0],
        "mean": round(sum(values) / len(values), 3),
        "median": median,
        "max": values[-1],
    }


# ----------------------------------------------------------------------
# predictor: ledger-calibrated with a static fallback
# ----------------------------------------------------------------------
def history_root_costs(
    ledger_dir: str,
    *,
    dataset_digest: str,
    miner: str,
    min_sup: Optional[float],
    mode: Optional[str],
    limit: int = DEFAULT_HISTORY_LIMIT,
) -> list[dict[str, float]]:
    """Per-root wall costs of prior matching runs, newest-last.

    Matches ledger entries by dataset digest, miner, support threshold,
    and mode — *not* by worker count, because cost profiles attribute
    the same subtree work regardless of how it was sharded. Only
    entries that stored the full per-root cost map (ledger schema >= 2;
    ``mine --ledger-dir`` with cost collection on) contribute; pre-bump
    entries are silently ignored, which is the documented degradation
    of the v1 -> v2 migration (``docs/file-formats.md``).
    """
    from repro.obs.ledger import RunLedger

    matched: list[dict[str, float]] = []
    for entry in RunLedger(ledger_dir).entries():
        config = entry.get("config", {})
        if (
            config.get("dataset_digest") != dataset_digest
            or config.get("miner") != miner
            or config.get("min_sup") != min_sup
            or config.get("mode") != mode
        ):
            continue
        roots = (entry.get("cost") or {}).get("roots")
        if not isinstance(roots, dict) or not roots:
            continue
        matched.append(
            {str(name): float(wall) for name, wall in roots.items()}
        )
    return matched[-max(limit, 0):]


def predict_costs(
    profile: Mapping[str, Any],
    history: Sequence[Mapping[str, float]] = (),
) -> tuple[dict[str, float], dict[str, Any]]:
    """Forecast per-root cost from a profile plus optional history.

    Returns ``(costs, predictor)`` where ``costs`` maps every profiled
    root to a non-negative forecast and ``predictor`` documents how it
    was produced (``source`` is ``"ledger"`` or ``"static"``).

    With history, a root's forecast is its mean recorded wall time;
    roots absent from every historical profile (new labels, a support
    threshold that newly admits them) fall back to their static score
    rescaled by ``scale`` — the ratio of mean historical cost to mean
    static score over the roots both sides know — so mixed forecasts
    stay on one comparable scale. With no history the static score is
    used as-is: load balancing only consumes relative magnitudes.
    """
    roots: Mapping[str, Mapping[str, Any]] = profile.get("roots", {})
    static = {
        name: float(entry.get("static_score", 0.0))
        for name, entry in roots.items()
    }
    if not history:
        return dict(static), {
            "source": "static",
            "history_runs": 0,
            "scale": None,
        }
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for run in history:
        for name, wall in run.items():
            sums[name] = sums.get(name, 0.0) + float(wall)
            counts[name] = counts.get(name, 0) + 1
    hist_mean = {name: sums[name] / counts[name] for name in sums}
    overlap = [
        name
        for name in static
        if name in hist_mean and static[name] > 0
    ]
    scale: Optional[float] = None
    if overlap:
        static_mass = sum(static[name] for name in overlap)
        hist_mass = sum(hist_mean[name] for name in overlap)
        if static_mass > 0 and hist_mass > 0:
            scale = hist_mass / static_mass
    costs = {
        name: (
            hist_mean[name]
            if name in hist_mean
            else static[name] * (scale if scale is not None else 1.0)
        )
        for name in static
    }
    return costs, {
        "source": "ledger",
        "history_runs": len(history),
        "scale": scale,
    }


# ----------------------------------------------------------------------
# assignment: round-robin vs LPT, with predicted imbalance
# ----------------------------------------------------------------------
def lpt_assign(
    costs: Mapping[str, float],
    num_shards: int,
    *,
    order: Optional[Mapping[str, int]] = None,
) -> list[list[str]]:
    """Longest-processing-time-first assignment of roots to shards.

    Items are placed heaviest-first onto the currently least-loaded
    shard — the classic 4/3-approximation to makespan. Ties break on
    root name (items) and lowest shard index (bins), so the assignment
    is deterministic. At most ``min(num_shards, len(costs))`` shards
    are produced and none is empty, mirroring the engine's round-robin
    deal. ``order`` only affects how each shard's list is sorted for
    display (canonical candidate order when given, name order
    otherwise) — membership is unaffected.
    """
    import heapq

    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    count = min(num_shards, len(costs))
    if count == 0:
        return []
    heap: list[tuple[float, int]] = [(0.0, shard) for shard in range(count)]
    shards: list[list[str]] = [[] for _ in range(count)]
    ranked = sorted(costs, key=lambda name: (-costs[name], name))
    for name in ranked:
        load, shard = heapq.heappop(heap)
        shards[shard].append(name)
        heapq.heappush(heap, (load + max(costs[name], 0.0), shard))
    key = (
        (lambda name: order.get(name, 0))
        if order is not None
        else (lambda name: name)  # type: ignore[arg-type,return-value]
    )
    return [sorted(shard, key=key) for shard in shards]


def roundrobin_assign(
    names: Sequence[str], num_shards: int
) -> list[list[str]]:
    """The engine's round-robin deal over canonically ordered roots.

    ``names`` must already be in canonical candidate order (the
    profile's ``order`` field); the deal then reproduces
    :func:`repro.engine.plan_shards` exactly.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    count = min(num_shards, len(names))
    if count == 0:
        return []
    shards: list[list[str]] = [[] for _ in range(count)]
    for index, name in enumerate(names):
        shards[index % count].append(name)
    return shards


def imbalance(loads: Sequence[float]) -> Optional[float]:
    """Max/mean over positive loads (``None`` below two positive).

    The same figure the live telemetry and run reports use: 1.0 means
    perfectly balanced, 2.0 means the slowest shard carries twice the
    mean.
    """
    positive = [load for load in loads if load > 0]
    if len(positive) < 2:
        return None
    mean = sum(positive) / len(positive)
    if mean <= 0:
        return None
    return round(max(positive) / mean, 6)


def _assignment_entry(
    shards: list[list[str]], costs: Mapping[str, float]
) -> dict[str, Any]:
    loads = [
        round(sum(costs.get(name, 0.0) for name in shard), 6)
        for shard in shards
    ]
    return {
        "shards": shards,
        "predicted_loads": loads,
        "predicted_imbalance": imbalance(loads),
    }


# ----------------------------------------------------------------------
# the PlanReport
# ----------------------------------------------------------------------
def build_plan(
    db: ESequenceDatabase,
    config: MinerConfig,
    *,
    workers: int,
    miner: str = "ptpminer",
    ledger_dir: Optional[str] = None,
    history_limit: int = DEFAULT_HISTORY_LIMIT,
) -> dict[str, Any]:
    """Profile ``db``, forecast root costs, and compare shard deals.

    The one-stop entry behind ``ptpminer plan`` and
    ``mine --shard-strategy predicted``: profiles the workload
    (:func:`profile_workload`), calibrates the forecast from the run
    ledger when ``ledger_dir`` has matching history
    (:func:`history_root_costs` / :func:`predict_costs`), and emits the
    PlanReport dict with both assignments — the engine's round-robin
    deal and the recommended LPT (``"predicted"``) assignment — plus
    their predicted per-shard loads and imbalance.
    """
    from repro.obs.ledger import dataset_digest as _dataset_digest

    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    profile = profile_workload(db, config)
    digest = _dataset_digest(db)
    history: list[dict[str, float]] = []
    if ledger_dir is not None:
        history = history_root_costs(
            ledger_dir,
            dataset_digest=digest,
            miner=miner,
            min_sup=config.min_sup,
            mode=config.mode,
            limit=history_limit,
        )
    costs, predictor = predict_costs(profile, history)
    roots = {
        name: {**dict(entry), "predicted_cost": round(costs[name], 6)}
        for name, entry in profile["roots"].items()
    }
    order = {name: entry["order"] for name, entry in roots.items()}
    canonical = sorted(order, key=lambda name: order[name])
    assignments = {
        "roundrobin": _assignment_entry(
            roundrobin_assign(canonical, workers), costs
        ),
        "predicted": _assignment_entry(
            lpt_assign(costs, workers, order=order), costs
        ),
    }
    return {
        "schema": PLAN_SCHEMA_VERSION,
        "kind": "repro-plan",
        "config": {
            "dataset_digest": digest,
            "miner": miner,
            "min_sup": config.min_sup,
            "mode": config.mode,
            "workers": workers,
        },
        "threshold": profile["threshold"],
        "dataset": profile["dataset"],
        "predictor": predictor,
        "roots": roots,
        "assignments": assignments,
    }


def plan_summary(plan: Mapping[str, Any]) -> dict[str, Any]:
    """The compact per-run slice of a plan stored in ledger entries.

    Full plans carry every root's features; ledger entries only need
    enough to trend forecast quality: the predictor provenance, the
    worker count, and each strategy's predicted imbalance.
    """
    assignments = plan.get("assignments", {})
    return {
        "workers": dict(plan.get("config", {})).get("workers"),
        "predictor": dict(plan.get("predictor", {})),
        "predicted_imbalance": {
            strategy: dict(entry).get("predicted_imbalance")
            for strategy, entry in sorted(assignments.items())
        },
    }


def render_plan_markdown(plan: Mapping[str, Any]) -> str:
    """Render a PlanReport dict as a markdown document."""
    config = dict(plan.get("config", {}))
    dataset = dict(plan.get("dataset", {}))
    predictor = dict(plan.get("predictor", {}))
    roots = {
        str(name): dict(entry)
        for name, entry in dict(plan.get("roots", {})).items()
    }
    lines = ["# Shard plan", ""]
    lines.append(
        f"Config: miner={config.get('miner')}, "
        f"min_sup={config.get('min_sup')}, mode={config.get('mode')}, "
        f"workers={config.get('workers')}, "
        f"dataset `{config.get('dataset_digest')}`"
    )
    seq_tokens = dict(dataset.get("seq_tokens", {}))
    density = dict(dataset.get("pair_density", {}))
    lines.append(
        f"Dataset: {dataset.get('sequences')} sequences, "
        f"{dataset.get('labels')} labels, {dataset.get('tokens')} "
        f"endpoint tokens (per-sequence {seq_tokens.get('min')}–"
        f"{seq_tokens.get('max')}, median {seq_tokens.get('median')}); "
        f"pair density S={density.get('s_density')} "
        f"I={density.get('i_density')}"
    )
    source = predictor.get("source")
    if source == "ledger":
        lines.append(
            f"Predictor: ledger-calibrated from "
            f"{predictor.get('history_runs')} matching run(s) "
            f"(static-score scale {predictor.get('scale')})"
        )
    else:
        lines.append(
            "Predictor: static features only (no matching ledger "
            "history) — forecast = projected_tokens * (1 + pair_degree)"
        )
    lines.append("")
    lines.append("## Predicted heaviest roots")
    lines.append("")
    lines.append(
        "| root | predicted cost | support | supporters "
        "| projected tokens | pair degree |"
    )
    lines.append("| --- | ---: | ---: | ---: | ---: | ---: |")
    ranked = sorted(
        roots.items(),
        key=lambda item: (-float(item[1].get("predicted_cost", 0.0)),
                          item[0]),
    )
    for name, entry in ranked[:_TOP_ROOTS_SHOWN]:
        lines.append(
            f"| `{name}` | {entry.get('predicted_cost'):g} "
            f"| {entry.get('support'):g} | {entry.get('supporters')} "
            f"| {entry.get('projected_tokens')} "
            f"| {entry.get('pair_degree')} |"
        )
    if len(ranked) > _TOP_ROOTS_SHOWN:
        lines.append("")
        lines.append(f"({len(ranked) - _TOP_ROOTS_SHOWN} more roots)")
    lines.append("")
    lines.append("## Assignments")
    lines.append("")
    lines.append(
        "| strategy | shards | max load | mean load "
        "| predicted imbalance |"
    )
    lines.append("| --- | ---: | ---: | ---: | ---: |")
    assignments = dict(plan.get("assignments", {}))
    for strategy in sorted(assignments):
        entry = dict(assignments[strategy])
        loads = [float(load) for load in entry.get("predicted_loads", [])]
        mean = sum(loads) / len(loads) if loads else 0.0
        imb = entry.get("predicted_imbalance")
        lines.append(
            f"| {strategy} | {len(loads)} "
            f"| {max(loads) if loads else 0.0:g} | {mean:g} "
            f"| {imb if imb is not None else '—'} |"
        )
    rr = dict(assignments.get("roundrobin", {})).get("predicted_imbalance")
    lpt = dict(assignments.get("predicted", {})).get("predicted_imbalance")
    lines.append("")
    if rr is not None and lpt is not None and lpt < rr:
        lines.append(
            f"Recommendation: `--shard-strategy predicted` "
            f"(LPT predicted imbalance {lpt:g} vs round-robin {rr:g})."
        )
    else:
        lines.append(
            "Recommendation: round-robin is already balanced for this "
            "forecast."
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# calibration: predicted vs actual, after the run
# ----------------------------------------------------------------------
def _shares(costs: Mapping[str, float]) -> dict[str, float]:
    total = sum(max(value, 0.0) for value in costs.values())
    if total <= 0:
        return {name: 0.0 for name in costs}
    return {name: max(value, 0.0) / total for name, value in costs.items()}


def _average_ranks(values: Sequence[float]) -> list[float]:
    """1-based ranks with ties averaged (the Spearman convention)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while (
            j + 1 < len(order)
            and values[order[j + 1]] == values[order[i]]
        ):
            j += 1
        avg = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def _spearman(
    a: Sequence[float], b: Sequence[float]
) -> Optional[float]:
    """Spearman rank correlation (``None`` when undefined)."""
    if len(a) < 2:
        return None
    ra, rb = _average_ranks(a), _average_ranks(b)
    mean_a = sum(ra) / len(ra)
    mean_b = sum(rb) / len(rb)
    cov = sum(
        (x - mean_a) * (y - mean_b) for x, y in zip(ra, rb)
    )
    var_a = sum((x - mean_a) ** 2 for x in ra)
    var_b = sum((y - mean_b) ** 2 for y in rb)
    if var_a <= 0 or var_b <= 0:
        return None
    return round(cov / (var_a * var_b) ** 0.5, 6)


def calibration_record(
    plan: Mapping[str, Any],
    cost_snapshot: Mapping[str, Any],
    *,
    strategy: Optional[str] = None,
) -> dict[str, Any]:
    """Join a plan's forecasts against a run's realized cost profile.

    Compares **cost shares** (each root's fraction of the total),
    making static-score forecasts and wall-second actuals directly
    comparable. When every recorded wall time is zero (a frozen test
    clock), ``states_created`` substitutes as the actual-cost proxy and
    ``actual_metric`` says so.

    Returns a JSON-able record: share-MAPE (mean absolute error of
    predicted shares relative to actual shares, over roots with
    positive actual cost), Spearman rank correlation of the root
    orderings, the worst-miss root (largest absolute share error), and
    the number of matched roots. ``strategy`` records which deal the
    run actually used (``None`` when unknown — e.g. a report rebuilding
    calibration from artifacts alone).
    """
    if strategy is not None and strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {SHARD_STRATEGIES}, "
            f"got {strategy!r}"
        )
    predicted = {
        str(name): float(dict(entry).get("predicted_cost", 0.0))
        for name, entry in dict(plan.get("roots", {})).items()
    }
    actual_rows = {
        str(name): dict(entry)
        for name, entry in dict(cost_snapshot.get("roots", {})).items()
    }
    actual_metric = "wall_s"
    actual = {
        name: float(entry.get("wall_s", 0.0))
        for name, entry in actual_rows.items()
    }
    if not any(value > 0 for value in actual.values()):
        actual_metric = "states_created"
        actual = {
            name: float(entry.get("states_created", 0))
            for name, entry in actual_rows.items()
        }
    matched = sorted(set(predicted) & set(actual))
    record: dict[str, Any] = {
        "schema": PLAN_SCHEMA_VERSION,
        "kind": "repro-calibration",
        "strategy": strategy,
        "predictor": dict(plan.get("predictor", {})).get("source"),
        "actual_metric": actual_metric,
        "roots_matched": len(matched),
        "mape": None,
        "rank_corr": None,
        "worst_miss": None,
    }
    if not matched:
        return record
    pred_share = _shares({name: predicted[name] for name in matched})
    act_share = _shares({name: actual[name] for name in matched})
    errors = [
        abs(pred_share[name] - act_share[name]) / act_share[name]
        for name in matched
        if act_share[name] > 0
    ]
    if errors:
        record["mape"] = round(sum(errors) / len(errors), 6)
    record["rank_corr"] = _spearman(
        [predicted[name] for name in matched],
        [actual[name] for name in matched],
    )
    worst = max(
        matched,
        key=lambda name: (
            abs(pred_share[name] - act_share[name]),
            name,
        ),
    )
    record["worst_miss"] = {
        "root": worst,
        "predicted_share": round(pred_share[worst], 6),
        "actual_share": round(act_share[worst], 6),
    }
    return record


def load_plan(path: str) -> dict[str, Any]:
    """Load and sanity-check a PlanReport JSON file."""
    with open(path, encoding="utf-8") as handle:
        plan = json.load(handle)
    if (
        not isinstance(plan, dict)
        or plan.get("kind") != "repro-plan"
        or plan.get("schema") != PLAN_SCHEMA_VERSION
    ):
        raise ValueError(
            f"{path} is not a shard plan (expected 'ptpminer plan' "
            "or 'mine --plan-out' output)"
        )
    return plan
