"""Per-phase profiling hooks: *where* does a mining phase spend itself?

The tracing layer (:mod:`repro.obs.trace`) answers "how long did
``search`` take"; this module answers "which functions inside ``search``
burned that time". A :class:`PhaseProfiler` installs as a tracer (it
implements the :class:`~repro.obs.trace.Tracer` protocol, forwarding
events to any previously installed tracer) and runs one
:mod:`cProfile` profile per *top-level phase span* — ``prune``,
``encode``, ``pair_tables``, ``search`` — so every function's time is
attributed to the mining phase it ran under. ``cProfile`` cannot nest,
so the per-node ``extend``/``project`` spans inside ``search`` are not
profiled separately; their cost shows up as the
``projection.py``/``counting.py`` rows of the ``search`` phase table,
which is the attribution the optimisation work needs.

Three outputs:

* a JSON-able :class:`ProfileReport` (per-phase top functions, optional
  per-phase top allocation sites from :mod:`tracemalloc`);
* a collapsed-stack ("folded") text export — ``phase;caller;callee N``
  lines with microsecond weights, consumable by standard flamegraph
  tooling (``flamegraph.pl``, speedscope, inferno);
* a renderer, ``python -m repro.obs.profile profile.json``, parallel to
  :mod:`repro.obs.report`.

Same zero-cost discipline as the rest of :mod:`repro.obs`: nothing here
touches the mining hot path unless a profiler is installed, and the
miners contain no profiling imports (lint rule R007 forbids raw
``cProfile``/``pstats``/``tracemalloc`` inside ``repro.core`` and
``repro.baselines`` — profiling flows only through this module and
:mod:`repro.harness.metrics`).

Usage::

    from repro.obs.profile import profile_scope

    with profile_scope(memory=True) as profiler:
        PTPMiner(0.05).mine(db)
    report = profiler.report()
    print(report.render())
    Path("mine.folded").write_text("\\n".join(profiler.folded_lines()))
"""

from __future__ import annotations

import cProfile
import json
import pstats
import sys
import tracemalloc
from collections.abc import Iterator, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union, cast

from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_PHASES",
    "PhaseProfile",
    "PhaseProfiler",
    "ProfileReport",
    "SCHEMA_VERSION",
    "hottest_function",
    "main",
    "profile_scope",
    "render_profile",
    "write_profile",
]

#: Schema version stamped into every serialised profile report.
SCHEMA_VERSION = 1

#: The top-level mining phases profiled by default — the direct children
#: of the root ``mine`` span that P-TPMiner and the baselines open.
DEFAULT_PHASES: tuple[str, ...] = (
    "prune",
    "encode",
    "pair_tables",
    "search",
)

#: pstats function key: (filename, lineno, function name).
_FuncKey = tuple[str, int, str]

#: One pstats row: (prim calls, total calls, tottime, cumtime, callers).
_StatsRow = tuple[int, int, float, float, "dict[_FuncKey, _CallerRow]"]
_CallerRow = tuple[int, int, float, float]


def _stats_table(stats: pstats.Stats) -> dict[_FuncKey, _StatsRow]:
    """The raw pstats table (typed; the attribute is set dynamically)."""
    return cast(
        dict[_FuncKey, _StatsRow], cast(Any, stats).stats
    )


def _func_label(func: _FuncKey) -> str:
    """Compact ``path/file.py:lineno(name)`` label for one pstats key."""
    filename, lineno, name = func
    if filename in ("~", ""):
        return name  # built-in: pstats renders these as "~:0(<name>)"
    short = "/".join(Path(filename).parts[-2:])
    return f"{short}:{lineno}({name})"


@dataclass(frozen=True, slots=True)
class PhaseProfile:
    """Aggregated profile of one mining phase.

    ``functions`` rows are dicts with ``func`` (compact label),
    ``calls``, ``tottime`` (self seconds), and ``cumtime`` keys, sorted
    by descending ``tottime``. ``memory_top`` rows (present only when
    memory attribution was on) carry ``site``, ``size_kib``, and
    ``count`` for the phase's top allocation sites.
    """

    name: str
    runs: int
    seconds: float
    functions: list[dict[str, Any]] = field(default_factory=list)
    memory_top: list[dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "name": self.name,
            "runs": self.runs,
            "seconds": round(self.seconds, 6),
            "functions": self.functions,
            "memory_top": self.memory_top,
        }


@dataclass(frozen=True, slots=True)
class ProfileReport:
    """A finished profiling session: one :class:`PhaseProfile` per phase."""

    phases: list[PhaseProfile]

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (schema-versioned)."""
        return {
            "schema": SCHEMA_VERSION,
            "kind": "repro-profile",
            "phases": [phase.as_dict() for phase in self.phases],
        }

    def render(self, *, top: int = 10) -> str:
        """Human-readable tables (same renderer as the CLI module)."""
        return render_profile(self.as_dict(), top=top)


class PhaseProfiler:
    """Tracer that runs one ``cProfile`` profile per top-level phase span.

    Installed with :func:`profile_scope` (or manually via
    ``trace.use_tracer``). Span events for phases named in ``phases``
    toggle a fresh profile on begin and collect it on end; all events
    are forwarded to ``downstream`` so profiling composes with an
    existing tracer (e.g. the CLI's ``--trace`` writer). Profiles never
    nest — while one phase profile is live, inner spans (the per-node
    ``extend``/``project`` spans) pass through unprofiled, and a
    same-named nested span is ignored until the opening span ends.

    With ``memory=True`` the profiler also diffs :mod:`tracemalloc`
    snapshots at each phase boundary and keeps the ``top_n`` allocation
    sites per phase. Memory attribution requires tracemalloc to trace
    during the run; :func:`profile_scope` starts/stops it automatically.
    Note that both cProfile and tracemalloc slow the run down — profile
    numbers attribute cost, they are not benchmark timings (the
    ``repro.perf`` baselines therefore never profile their timed runs).
    """

    def __init__(
        self,
        *,
        phases: Sequence[str] = DEFAULT_PHASES,
        downstream: Optional[_trace.Tracer] = None,
        memory: bool = False,
        top_n: int = 10,
    ) -> None:
        self.phases = frozenset(phases)
        self.downstream = downstream
        self.memory = memory
        self.top_n = top_n
        self._active_span: Optional[int] = None
        self._active_name: Optional[str] = None
        self._active_profile: Optional[cProfile.Profile] = None
        self._active_mem: Optional[tracemalloc.Snapshot] = None
        self._profiles: dict[str, list[cProfile.Profile]] = {}
        self._seconds: dict[str, float] = {}
        self._runs: dict[str, int] = {}
        self._mem_sites: dict[str, dict[tuple[str, int], list[int]]] = {}

    # -- Tracer protocol ------------------------------------------------
    def emit(self, event: dict[str, Any]) -> None:
        """Consume one span event; toggle phase profiles, then forward."""
        kind = event.get("ev")
        if (
            kind == "B"
            and self._active_span is None
            and event.get("name") in self.phases
        ):
            self._begin_phase(event)
        elif kind == "E" and event.get("span") == self._active_span:
            self._end_phase(event)
        if self.downstream is not None:
            self.downstream.emit(event)

    # -- phase bookkeeping ----------------------------------------------
    def _begin_phase(self, event: dict[str, Any]) -> None:
        self._active_span = event.get("span")
        self._active_name = str(event.get("name"))
        if self.memory and tracemalloc.is_tracing():
            self._active_mem = tracemalloc.take_snapshot()
        profile = cProfile.Profile()
        self._active_profile = profile
        try:
            profile.enable()
        except ValueError:  # another profiler already owns the hook
            self._active_profile = None

    def _end_phase(self, event: dict[str, Any]) -> None:
        name = self._active_name or "?"
        profile = self._active_profile
        if profile is not None:
            profile.disable()
            self._profiles.setdefault(name, []).append(profile)
        self._seconds[name] = self._seconds.get(name, 0.0) + float(
            event.get("dur", 0.0)
        )
        self._runs[name] = self._runs.get(name, 0) + 1
        if self.memory and self._active_mem is not None:
            if tracemalloc.is_tracing():
                self._record_memory(name, tracemalloc.take_snapshot())
            self._active_mem = None
        self._active_span = None
        self._active_name = None
        self._active_profile = None

    def _record_memory(
        self, name: str, after: tracemalloc.Snapshot
    ) -> None:
        assert self._active_mem is not None
        sites = self._mem_sites.setdefault(name, {})
        for diff in after.compare_to(self._active_mem, "lineno"):
            if diff.size_diff <= 0:
                continue
            frame = diff.traceback[0]
            key = (frame.filename, frame.lineno)
            entry = sites.setdefault(key, [0, 0])
            entry[0] += diff.size_diff
            entry[1] += max(diff.count_diff, 0)

    def abort(self) -> None:
        """Close any phase left open (exception unwound past its span)."""
        if self._active_profile is not None:
            self._active_profile.disable()
        self._active_span = None
        self._active_name = None
        self._active_profile = None
        self._active_mem = None

    # -- results --------------------------------------------------------
    def _stats_for(self, name: str) -> Optional[pstats.Stats]:
        profiles = self._profiles.get(name)
        if not profiles:
            return None
        stats = pstats.Stats(profiles[0])
        for extra in profiles[1:]:
            stats.add(extra)
        return stats

    def report(self, *, top: int = 25) -> ProfileReport:
        """Aggregate everything profiled so far into a report.

        ``top`` caps the per-phase function rows (the folded export is
        not capped). Phases are ordered by descending total seconds.
        """
        phases: list[PhaseProfile] = []
        for name in self._runs:
            functions: list[dict[str, Any]] = []
            stats = self._stats_for(name)
            if stats is not None:
                rows = sorted(
                    _stats_table(stats).items(),
                    key=lambda item: -item[1][2],
                )
                for func, (_cc, ncalls, tottime, cumtime, _callers) in rows[
                    :top
                ]:
                    functions.append(
                        {
                            "func": _func_label(func),
                            "calls": ncalls,
                            "tottime": round(tottime, 6),
                            "cumtime": round(cumtime, 6),
                        }
                    )
            memory_top = [
                {
                    "site": f"{'/'.join(Path(filename).parts[-2:])}:{lineno}",
                    "size_kib": round(sizes[0] / 1024.0, 1),
                    "count": sizes[1],
                }
                for (filename, lineno), sizes in sorted(
                    self._mem_sites.get(name, {}).items(),
                    key=lambda item: -item[1][0],
                )[: self.top_n]
            ]
            phases.append(
                PhaseProfile(
                    name=name,
                    runs=self._runs[name],
                    seconds=self._seconds.get(name, 0.0),
                    functions=functions,
                    memory_top=memory_top,
                )
            )
        phases.sort(key=lambda phase: -phase.seconds)
        return ProfileReport(phases)

    def folded_lines(self) -> list[str]:
        """Collapsed-stack export for flamegraph tooling.

        One ``phase;caller;callee weight`` line per caller→callee edge
        (``phase;func weight`` for call-tree roots), weighted by the
        callee's *self* time in integer microseconds attributed to that
        caller — exact two-level attribution straight from the cProfile
        caller tables. Zero-weight edges are dropped.
        """
        lines: list[str] = []
        for name in sorted(self._runs):
            stats = self._stats_for(name)
            if stats is None:
                continue
            for func, (_cc, _nc, tottime, _ct, callers) in sorted(
                _stats_table(stats).items()
            ):
                label = _func_label(func)
                if callers:
                    for caller, (_ccc, _cnc, caller_tt, _cct) in sorted(
                        callers.items()
                    ):
                        weight = int(caller_tt * 1e6)
                        if weight > 0:
                            lines.append(
                                f"{name};{_func_label(caller)};{label}"
                                f" {weight}"
                            )
                else:
                    weight = int(tottime * 1e6)
                    if weight > 0:
                        lines.append(f"{name};{label} {weight}")
        return lines


@contextmanager
def profile_scope(
    *,
    phases: Sequence[str] = DEFAULT_PHASES,
    memory: bool = False,
    top_n: int = 10,
) -> Iterator[PhaseProfiler]:
    """Install a :class:`PhaseProfiler` for a scope and yield it.

    Composes with an already-installed tracer (events are forwarded to
    it). With ``memory=True``, starts :mod:`tracemalloc` for the scope
    if it is not already tracing — note this slows and inflates the run;
    never time-benchmark under a profile scope (see
    ``repro.perf``, which times and memory-measures in separate runs).
    """
    profiler = PhaseProfiler(
        phases=phases,
        downstream=_trace.active_tracer(),
        memory=memory,
        top_n=top_n,
    )
    started_tracing = False
    if memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_tracing = True
    try:
        with _trace.use_tracer(profiler):
            yield profiler
    finally:
        profiler.abort()
        if started_tracing:
            tracemalloc.stop()


# ---------------------------------------------------------------------------
# serialisation + rendering
# ---------------------------------------------------------------------------


def write_profile(
    report: ProfileReport, path: Union[str, Path]
) -> None:
    """Serialise ``report`` as indented JSON at ``path``."""
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def hottest_function(report: Mapping[str, Any]) -> Optional[str]:
    """The top self-time function label across all phases (or ``None``).

    Accepts a serialised report dict (``ProfileReport.as_dict()``);
    tolerant of empty/degenerate reports.
    """
    best: Optional[str] = None
    best_tottime = -1.0
    for phase in report.get("phases", ()):
        for row in phase.get("functions", ()):
            tottime = float(row.get("tottime", 0.0) or 0.0)
            if tottime > best_tottime:
                best_tottime = tottime
                best = str(row.get("func"))
    return best


def render_profile(report: Mapping[str, Any], *, top: int = 10) -> str:
    """Render a serialised profile report as aligned plain-text tables.

    Never raises on partial input: missing sections, zero-duration
    phases, and empty function lists all render as best they can (the
    same robustness contract as :func:`repro.obs.report.render_report`).
    """
    from repro.harness.tables import render_table

    phases = list(report.get("phases", ()))
    if not phases:
        return "(empty profile)"
    sections: list[str] = []
    total = sum(float(phase.get("seconds", 0.0) or 0.0) for phase in phases)
    breakdown_rows = [
        {
            "phase": phase.get("name", "?"),
            "runs": phase.get("runs", 0),
            "seconds": round(float(phase.get("seconds", 0.0) or 0.0), 4),
            "share": (
                f"{float(phase.get('seconds', 0.0) or 0.0) / total:.1%}"
                if total
                else "—"
            ),
            "hottest": (
                phase.get("functions", [{}])[0].get("func", "—")
                if phase.get("functions")
                else "—"
            ),
        }
        for phase in phases
    ]
    sections.append(
        render_table(
            breakdown_rows,
            ["phase", "runs", "seconds", "share", "hottest"],
            title="Per-phase breakdown",
        )
    )
    for phase in phases:
        functions = list(phase.get("functions", ()))[:top]
        if functions:
            sections.append(
                render_table(
                    functions,
                    ["func", "calls", "tottime", "cumtime"],
                    title=f"Top functions — {phase.get('name', '?')}",
                )
            )
        memory_top = list(phase.get("memory_top", ()))[:top]
        if memory_top:
            sections.append(
                render_table(
                    memory_top,
                    ["site", "size_kib", "count"],
                    title=f"Top allocation sites — {phase.get('name', '?')}",
                )
            )
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: render a saved profile JSON (``python -m repro.obs.profile``)."""
    args = list(sys.argv[1:] if argv is None else argv)
    top = 10
    if "--top" in args:
        idx = args.index("--top")
        try:
            top = int(args[idx + 1])
            del args[idx : idx + 2]
        except (IndexError, ValueError):
            args = ["--help"]
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print(
            "usage: python -m repro.obs.profile [--top N] PROFILE_JSON",
            file=sys.stderr,
        )
        return 2
    report = json.loads(Path(args[0]).read_text(encoding="utf-8"))
    print(render_profile(report, top=top))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
