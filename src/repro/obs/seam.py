"""The shared collector-installation seam.

Every opt-in observability collector in this package — the metrics
registry, the cost collector, the provenance collector — hangs off the
same three-function surface: ``active_*()`` returns the installed
instance or ``None``, ``set_*()`` installs one process-wide, and
``use_*()`` scope-installs a fresh (or given) instance and restores the
previous one on exit. Instrumented code hoists one local per run and
guards every recording site with a single ``is not None`` branch, so
the disabled path costs one branch (the :mod:`repro.contracts`
discipline).

This module is that surface, written once: each collector module owns a
private :class:`CollectorSeam` and re-exports thin wrappers under its
established public names (``active_registry``/``active_collector``,
…), so callers never see the seam object itself and the per-module
APIs stay exactly as they were.

Workers never inherit a seam's state usefully across a ``fork`` — the
engine silences inherited collectors in its pool initializer and scopes
private ones per shard; see :mod:`repro.engine`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Generic, Iterator, Optional, TypeVar

__all__ = ["CollectorSeam"]

T = TypeVar("T")


class CollectorSeam(Generic[T]):
    """One module-global installation point for a collector type.

    ``factory`` builds the default instance :meth:`scope` installs when
    called without an argument (e.g. the collector class itself).
    """

    __slots__ = ("_active", "_factory")

    def __init__(self, factory: Callable[[], T]) -> None:
        self._active: Optional[T] = None
        self._factory = factory

    def active(self) -> Optional[T]:
        """The installed collector, or ``None`` when collection is off."""
        return self._active

    def install(self, collector: Optional[T]) -> None:
        """Install ``collector`` process-wide (``None`` turns it off)."""
        self._active = collector

    @contextmanager
    def scope(self, collector: Optional[T] = None) -> Iterator[T]:
        """Scope-install a collector (a fresh one by default).

        Restores whatever was installed before on exit, so scopes nest.
        """
        fresh = collector if collector is not None else self._factory()
        previous = self._active
        self.install(fresh)
        try:
            yield fresh
        finally:
            self.install(previous)
