"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

Dependency-free (no prometheus client) and **zero-cost when off**: no
registry is installed by default, :func:`active_registry` returns ``None``
and instrumented code skips all recording behind a single local check —
the same discipline as :mod:`repro.contracts`. Install one per run with
:func:`use_registry` (the CLI's ``--metrics-out`` and the harness's
``collect_obs=True`` do exactly that), then serialise
:meth:`MetricsRegistry.snapshot` as JSON.

Naming
------
Metrics are identified by a name plus optional string-able labels:
``registry.counter("search.states_by_depth", depth=3)``. Snapshot keys
render as ``name[k=v,...]`` with labels sorted, so snapshots diff
cleanly across runs.

A registry accumulates for as long as it is installed; for per-run
snapshots install a fresh registry per run (the convention everywhere in
this repo).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping, Sequence
from contextlib import AbstractContextManager
from typing import Any, Optional, Union

from repro.obs.seam import CollectorSeam

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram buckets for durations in seconds (upper bounds).
DURATION_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

_LabelKey = tuple[tuple[str, str], ...]
_MetricKey = tuple[str, str, _LabelKey]  # (kind, name, labels)


class Counter:
    """A monotonically increasing value (float so weights/seconds fit)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        self.value += amount


class Gauge:
    """A point-in-time value that can move in both directions."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class Histogram:
    """Fixed-bucket histogram: counts of observations per upper bound.

    ``buckets`` are the inclusive upper bounds, in increasing order; an
    implicit overflow bucket catches everything above the last bound. An
    observation equal to a bound lands in that bound's bucket (the
    ``le`` convention).
    """

    __slots__ = ("bounds", "bucket_counts", "overflow", "count", "total")

    def __init__(self, buckets: Sequence[float] = DURATION_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        self.bounds = bounds
        self.bucket_counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.bounds, value)
        if idx == len(self.bounds):
            self.overflow += 1
        else:
            self.bucket_counts[idx] += 1
        self.count += 1
        self.total += value

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form: per-bucket counts plus count/sum/mean."""
        buckets = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.bucket_counts)
        }
        buckets["inf"] = self.overflow
        return {
            "buckets": buckets,
            "count": self.count,
            "sum": self.total,
            "mean": (self.total / self.count) if self.count else None,
        }


_Metric = Union[Counter, Gauge, Histogram]


def _label_key(labels: Mapping[str, object]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}[{inner}]"


class MetricsRegistry:
    """Get-or-create store of named metrics with a JSON-able snapshot."""

    def __init__(self) -> None:
        self._metrics: dict[_MetricKey, _Metric] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        key = ("counter", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics.setdefault(key, Counter())
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        key = ("gauge", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics.setdefault(key, Gauge())
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = DURATION_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram registered under ``name`` + ``labels``.

        ``buckets`` only applies on first creation; later calls return
        the existing histogram unchanged.
        """
        key = ("histogram", name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics.setdefault(key, Histogram(buckets))
        assert isinstance(metric, Histogram)
        return metric

    def absorb(
        self, totals: Mapping[str, float], *, prefix: str = ""
    ) -> None:
        """Add a mapping of totals (e.g. ``PruneCounters.as_dict()``)
        into same-named counters, optionally prefixed."""
        for name, value in sorted(totals.items()):
            self.counter(prefix + name).inc(float(value))

    def absorb_snapshot(
        self, snapshot: Mapping[str, Any], *, prefix: str = ""
    ) -> None:
        """Merge another registry's :meth:`snapshot` into this one.

        The merge seam for :mod:`repro.engine`: each shard worker runs
        with a private registry and ships its snapshot home, where the
        parent absorbs it under a ``shard.`` prefix. Counters add;
        colliding gauges keep the **maximum** of all absorbed values —
        a deterministic merge regardless of shard completion order
        (under the process executor shards finish in any order, so
        last-write-wins would make snapshots flap between runs);
        histograms are reconstructed bound-for-bound and their counts
        added. Rendered keys (``name[k=v,...]``) are kept verbatim
        apart from the prefix, so absorbed metrics stay diffable
        without re-parsing labels.
        """
        # Iterate sorted so absorption is insensitive to the producer's
        # dict insertion order, not just to per-key independence.
        for key, value in sorted(snapshot.get("counters", {}).items()):
            self.counter(prefix + key).inc(float(value))
        for key, value in sorted(snapshot.get("gauges", {}).items()):
            gauge_key: _MetricKey = ("gauge", prefix + key, ())
            existing = self._metrics.get(gauge_key)
            incoming = float(value)
            if isinstance(existing, Gauge):
                if incoming > existing.value:
                    existing.set(incoming)
            else:
                self.gauge(prefix + key).set(incoming)
        for key, data in sorted(snapshot.get("histograms", {}).items()):
            buckets: Mapping[str, int] = data.get("buckets", {})
            bounds = sorted(
                float(k[3:]) for k in buckets if k.startswith("le_")
            )
            if not bounds:
                continue
            hist = self.histogram(prefix + key, buckets=bounds)
            for bound_key, count in buckets.items():
                if bound_key == "inf":
                    hist.overflow += int(count)
                    continue
                bound = float(bound_key[3:])
                idx = bisect_left(hist.bounds, bound)
                if idx < len(hist.bounds) and hist.bounds[idx] == bound:
                    hist.bucket_counts[idx] += int(count)
                else:
                    # Bounds drifted between shards; don't lose the count.
                    hist.overflow += int(count)
            hist.count += int(data.get("count", 0))
            hist.total += float(data.get("sum", 0.0))

    def snapshot(self) -> dict[str, Any]:
        """Everything recorded so far, as a JSON-serialisable dict.

        Shape: ``{"counters": {key: value}, "gauges": {key: value},
        "histograms": {key: {...}}}`` with keys rendered by name + sorted
        labels. Integral counter/gauge values come back as ``int`` so
        snapshots compare cleanly against integer totals.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for (kind, name, labels), metric in sorted(
            self._metrics.items(), key=lambda item: item[0]
        ):
            key = _render_key(name, labels)
            if isinstance(metric, Counter):
                counters[key] = _tidy(metric.value)
            elif isinstance(metric, Gauge):
                gauges[key] = _tidy(metric.value)
            else:
                histograms[key] = metric.as_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _tidy(value: float) -> float:
    """Render integer-valued floats as ints (JSON readability)."""
    return int(value) if float(value).is_integer() else value


# Installation seam: one shared implementation (repro.obs.seam) behind
# the module's established public names.
_seam: CollectorSeam[MetricsRegistry] = CollectorSeam(MetricsRegistry)


def active_registry() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when metrics are off."""
    return _seam.active()


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install ``registry`` process-wide (``None`` turns metrics off)."""
    _seam.install(registry)


def use_registry(
    registry: Optional[MetricsRegistry] = None,
) -> AbstractContextManager[MetricsRegistry]:
    """Scope-install a registry (a fresh one by default); restores on exit."""
    return _seam.scope(registry)
