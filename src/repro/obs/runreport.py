"""Unified run reports: join a run's observability artifacts.

``ptpminer report`` turns the artifacts one ``mine`` run can emit — a
JSONL span trace (``--trace``), a metrics snapshot (``--metrics-out``),
a live frame log (``--live-log``), a cost profile (``--cost-profile``),
a provenance snapshot (``--provenance``), and a shard plan
(``--plan-out``) — into one markdown (or JSON) report: a phase table,
per-shard utilization with an imbalance figure, the prune funnel,
straggler callouts, the realized heaviest-roots table (so plan-vs-shard
load reads in one place), a provenance summary, and — when both a plan
and a cost profile are given — a **Plan vs actual** section joining the
forecast against realized per-root cost (share-MAPE, rank correlation,
worst miss) and predicted against realized imbalance. Any subset of the
sources works: sections without data are omitted and the report instead
carries a ``notes`` list saying *why* each section is absent (source
not given vs. given but empty), so a partial report is an answer, not
an error. The trace and live-log parsers tolerate the truncated tails
of killed runs (see :func:`repro.obs.trace.read_trace` /
:func:`repro.obs.live.read_live_log`).

The shard section prefers the live frame log (it has roots/patterns/rss
per lane); with only a trace it falls back to the re-emitted
``shard<i>:<id>`` span durations. The prune funnel reads the parent
registry's ``search.*`` counters, which by construction mirror
:class:`repro.core.pruning.PruneCounters` totals.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from typing import Any, Optional

from repro.obs.live import LiveAggregator, LiveConfig, read_live_log
from repro.obs.trace import read_trace

__all__ = [
    "build_run_report",
    "render_markdown",
]

#: Rows shown in the realized heaviest-roots table.
_TOP_ROOTS_SHOWN = 10

#: ``search.*`` counter suffixes in funnel order: work done, then what
#: each pruning stage removed, then what survived.
_FUNNEL_STAGES: tuple[tuple[str, str], ...] = (
    ("nodes_expanded", "search nodes expanded"),
    ("candidates_considered", "candidates considered"),
    ("pruned_point_labels", "pruned: point-label"),
    ("pruned_pair", "pruned: pair"),
    ("pruned_postfix_branches", "pruned: postfix branch"),
    ("pruned_dead_states", "pruned: dead state"),
    ("candidates_frequent", "candidates frequent"),
    ("states_created", "states created"),
    ("patterns_emitted", "patterns emitted"),
)


def _phase_table(
    events: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Aggregate main-track end events into per-phase rows.

    Shard-re-emitted spans (string ids) are excluded — they are the
    shard section's job — so totals here are parent wall-clock phases.
    """
    totals: dict[str, list[float]] = {}
    order: list[str] = []
    for event in events:
        if event.get("ev") != "E" or isinstance(event.get("span"), str):
            continue
        duration = event.get("dur")
        if not isinstance(duration, (int, float)):
            continue
        name = str(event.get("name", "?"))
        if name not in totals:
            totals[name] = []
            order.append(name)
        totals[name].append(float(duration))
    return [
        {
            "phase": name,
            "count": len(durations),
            "total_s": round(sum(durations), 6),
            "mean_s": round(sum(durations) / len(durations), 6),
        }
        for name in order
        if (durations := totals[name])
    ]


def _shards_from_trace(
    events: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Per-shard busy time from re-emitted ``shard<i>:<id>`` spans.

    A shard's busy time is the summed duration of its *root* spans —
    the re-hung ones whose parent is back in the parent trace (not a
    ``shard...`` string id) — so nested spans are not double-counted.
    """
    begin_parent: dict[str, Any] = {}
    for event in events:
        if event.get("ev") == "B" and isinstance(event.get("span"), str):
            begin_parent[str(event["span"])] = event.get("parent")
    roots: dict[int, float] = {}
    for event in events:
        span_id = event.get("span")
        if event.get("ev") != "E" or not isinstance(span_id, str):
            continue
        if not span_id.startswith("shard") or ":" not in span_id:
            continue
        if isinstance(begin_parent.get(span_id), str):
            continue  # nested under another shard span
        try:
            shard = int(span_id[len("shard"):span_id.index(":")])
        except ValueError:
            continue
        duration = event.get("dur")
        if isinstance(duration, (int, float)):
            roots[shard] = roots.get(shard, 0.0) + float(duration)
    return [
        {"shard": shard, "busy_s": round(roots[shard], 6)}
        for shard in sorted(roots)
    ]


def _imbalance(busies: Sequence[float]) -> Optional[float]:
    """Max/mean busy time across shards (``None`` below two shards)."""
    positive = [b for b in busies if b > 0]
    if len(positive) < 2:
        return None
    mean = sum(positive) / len(positive)
    if mean <= 0:
        return None
    return round(max(positive) / mean, 6)


def _load_json_object(path: str, what: str) -> dict[str, Any]:
    """Load a JSON file that must hold an object (caller-error raise)."""
    with open(path, encoding="utf-8") as handle:
        loaded = json.load(handle)
    if not isinstance(loaded, dict):
        raise ValueError(f"{path}: expected a {what} object")
    return loaded


def build_run_report(
    *,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    live_log_path: Optional[str] = None,
    cost_path: Optional[str] = None,
    provenance_path: Optional[str] = None,
    plan_path: Optional[str] = None,
    straggler_factor: float = 0.5,
) -> dict[str, Any]:
    """Join the given artifacts into one JSON-ready report dict.

    At least one source must be given, but any subset works: each
    section that cannot be built lands one line in the report's
    ``notes`` list explaining whether its source was absent or present
    but empty. Missing *files* still raise — a wrong path is a caller
    error, not a degraded run. The live log is re-aggregated
    through :class:`repro.obs.live.LiveAggregator` (rendering off) with
    ``straggler_factor``, so the report's straggler callouts use the
    same rule as the live display.

    ``cost_path`` (a ``--cost-profile`` snapshot) adds the realized
    heaviest-roots table; ``provenance_path`` a pattern/prune-record
    summary; ``plan_path`` (a ``ptpminer plan`` / ``--plan-out``
    PlanReport) the predicted imbalance — and, combined with the cost
    profile, the full plan-vs-actual calibration section.
    """
    if not (
        trace_path
        or metrics_path
        or live_log_path
        or cost_path
        or provenance_path
        or plan_path
    ):
        raise ValueError(
            "build_run_report needs at least one of trace_path, "
            "metrics_path, live_log_path, cost_path, provenance_path, "
            "plan_path"
        )
    report: dict[str, Any] = {
        "sources": {
            "trace": trace_path,
            "metrics": metrics_path,
            "live_log": live_log_path,
            "cost": cost_path,
            "provenance": provenance_path,
            "plan": plan_path,
        }
    }
    notes: list[str] = []
    snapshot: Optional[Mapping[str, Any]] = None
    if metrics_path is not None:
        snapshot = _load_json_object(metrics_path, "metrics snapshot")
    events: list[dict[str, Any]] = []
    if trace_path is not None:
        events = read_trace(trace_path)
        phases = _phase_table(events)
        if phases:
            report["phases"] = phases
        else:
            notes.append(
                "phase table omitted: the trace has no completed "
                "main-track spans"
            )
    else:
        notes.append("phase table omitted: no trace given")
    if snapshot is not None:
        counters = snapshot.get("counters", {})
        funnel = [
            {"stage": label, "count": counters[key]}
            for suffix, label in _FUNNEL_STAGES
            if (key := f"search.{suffix}") in counters
        ]
        if funnel:
            report["prune_funnel"] = funnel
        else:
            notes.append(
                "prune funnel omitted: the metrics snapshot has no "
                "search.* counters"
            )
    else:
        notes.append("prune funnel omitted: no metrics snapshot given")
    live_summary: Optional[dict[str, Any]] = None
    if live_log_path is not None:
        frames = read_live_log(live_log_path)
        aggregator = LiveAggregator(
            LiveConfig(render=False, straggler_factor=straggler_factor)
        )
        for frame in frames:
            aggregator.ingest(frame)
        if aggregator.frames_ingested:
            live_summary = aggregator.summary()
            report["live"] = live_summary
        else:
            notes.append(
                "live summary omitted: the live log has no frames"
            )
    if live_summary is not None:
        lanes = live_summary["shards"]
        report["shards"] = [
            {"shard": int(shard), **lane} for shard, lane in lanes.items()
        ]
        report["shard_imbalance"] = live_summary["shard_imbalance"]
        report["stragglers"] = live_summary["stragglers"]
    elif events:
        shard_rows = _shards_from_trace(events)
        if shard_rows:
            report["shards"] = shard_rows
            report["shard_imbalance"] = _imbalance(
                [row["busy_s"] for row in shard_rows]
            )
        else:
            notes.append(
                "shard table omitted: no live log given and the trace "
                "has no shard spans (serial run?)"
            )
    elif live_log_path is None:
        notes.append("shard table omitted: no live log or trace given")
    cost_snapshot: Optional[dict[str, Any]] = None
    if cost_path is not None:
        from repro.obs import costmodel

        cost_snapshot = _load_json_object(cost_path, "cost profile")
        heavy = costmodel.top_roots(cost_snapshot, _TOP_ROOTS_SHOWN)
        if heavy:
            report["heaviest_roots"] = heavy
        else:
            notes.append(
                "heaviest-roots table omitted: the cost profile "
                "records no roots"
            )
    else:
        notes.append("heaviest-roots table omitted: no cost profile given")
    if provenance_path is not None:
        prov = _load_json_object(provenance_path, "provenance snapshot")
        report["provenance"] = {
            "patterns": len(dict(prov.get("patterns", {}))),
            "pruned": len(dict(prov.get("pruned", {}))),
            "labels": len(dict(prov.get("labels", {}))),
        }
    plan: Optional[dict[str, Any]] = None
    if plan_path is not None:
        from repro.obs import planner

        plan = planner.load_plan(plan_path)
        assignments = dict(plan.get("assignments", {}))
        section: dict[str, Any] = {
            "predictor": dict(plan.get("predictor", {})),
            "predicted_imbalance": {
                strategy: dict(entry).get("predicted_imbalance")
                for strategy, entry in sorted(assignments.items())
            },
            "realized_imbalance": report.get("shard_imbalance"),
        }
        if cost_snapshot is not None:
            section["calibration"] = planner.calibration_record(
                plan, cost_snapshot
            )
        else:
            notes.append(
                "plan-vs-actual calibration omitted: a plan was given "
                "but no cost profile to compare it against"
            )
        report["plan_vs_actual"] = section
    elif cost_path is not None:
        notes.append(
            "plan-vs-actual section omitted: no shard plan given"
        )
    if notes:
        report["notes"] = notes
    return report


def _format_cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else ""
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]]
) -> list[str]:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_cell(cell) for cell in row) + " |"
        )
    return lines


def render_markdown(report: Mapping[str, Any]) -> str:
    """Render a :func:`build_run_report` dict as a markdown document."""
    lines: list[str] = ["# ptpminer run report", ""]
    sources = report.get("sources", {})
    named = [
        f"{kind}: `{path}`"
        for kind, path in sources.items()
        if path is not None
    ]
    if named:
        lines.append("Sources — " + ", ".join(named))
        lines.append("")
    phases = report.get("phases")
    if phases:
        lines.append("## Phases")
        lines.append("")
        lines.extend(
            _markdown_table(
                ("phase", "count", "total (s)", "mean (s)"),
                [
                    (
                        row["phase"],
                        row["count"],
                        row["total_s"],
                        row["mean_s"],
                    )
                    for row in phases
                ],
            )
        )
        lines.append("")
    shards = report.get("shards")
    if shards:
        lines.append("## Shards")
        lines.append("")
        detailed = any("roots_done" in row for row in shards)
        if detailed:
            lines.extend(
                _markdown_table(
                    (
                        "shard",
                        "roots",
                        "patterns",
                        "busy (s)",
                        "rate (roots/s)",
                        "rss (MiB)",
                        "straggler",
                    ),
                    [
                        (
                            row["shard"],
                            f"{row.get('roots_done', 0)}/"
                            f"{row.get('roots_total', 0)}",
                            row.get("patterns"),
                            row.get("busy_s"),
                            row.get("rate_roots_per_s"),
                            row.get("rss_mb"),
                            bool(row.get("straggler")),
                        )
                        for row in shards
                    ],
                )
            )
        else:
            lines.extend(
                _markdown_table(
                    ("shard", "busy (s)"),
                    [(row["shard"], row.get("busy_s")) for row in shards],
                )
            )
        imbalance = report.get("shard_imbalance")
        lines.append("")
        if imbalance is not None:
            lines.append(
                f"Shard imbalance (max/mean busy): **{imbalance:g}** "
                "(1.0 = perfectly balanced)"
            )
            lines.append("")
    stragglers = report.get("stragglers")
    if stragglers is not None:
        lines.append("## Straggler callouts")
        lines.append("")
        if stragglers:
            lane_map = {
                row["shard"]: row for row in report.get("shards", [])
            }
            for shard in stragglers:
                lane = lane_map.get(shard, {})
                rate = lane.get("rate_roots_per_s")
                rate_text = "unknown rate" if rate is None else (
                    f"{rate:g} roots/s"
                )
                lines.append(
                    f"- **shard {shard}** fell below the straggler "
                    f"threshold ({rate_text})"
                )
        else:
            lines.append("None detected.")
        lines.append("")
    heavy = report.get("heaviest_roots")
    if heavy:
        lines.append("## Heaviest roots (realized)")
        lines.append("")
        lines.extend(
            _markdown_table(
                (
                    "root",
                    "wall (s)",
                    "states",
                    "nodes expanded",
                    "patterns",
                ),
                [
                    (
                        f"`{row.get('root')}`",
                        row.get("wall_s"),
                        row.get("states_created"),
                        row.get("nodes_expanded"),
                        row.get("patterns_emitted"),
                    )
                    for row in heavy
                ],
            )
        )
        lines.append("")
    plan_section = report.get("plan_vs_actual")
    if plan_section:
        lines.append("## Plan vs actual")
        lines.append("")
        predictor = dict(plan_section.get("predictor", {}))
        lines.append(
            f"- predictor: {predictor.get('source')} "
            f"({predictor.get('history_runs', 0)} ledger run(s))"
        )
        predicted = dict(plan_section.get("predicted_imbalance", {}))
        for strategy in sorted(predicted):
            value = predicted[strategy]
            lines.append(
                f"- predicted imbalance ({strategy}): "
                f"{_format_cell(value)}"
            )
        lines.append(
            "- realized imbalance: "
            f"{_format_cell(plan_section.get('realized_imbalance'))}"
        )
        calibration = plan_section.get("calibration")
        if calibration:
            lines.append(
                f"- forecast share-MAPE: "
                f"{_format_cell(calibration.get('mape'))}, "
                f"rank correlation: "
                f"{_format_cell(calibration.get('rank_corr'))} "
                f"(over {calibration.get('roots_matched')} roots, "
                f"actual = {calibration.get('actual_metric')})"
            )
            worst = calibration.get("worst_miss")
            if worst:
                lines.append(
                    f"- worst miss: `{worst.get('root')}` predicted "
                    f"share {_format_cell(worst.get('predicted_share'))} "
                    f"vs actual {_format_cell(worst.get('actual_share'))}"
                )
        lines.append("")
    provenance = report.get("provenance")
    if provenance:
        lines.append("## Provenance summary")
        lines.append("")
        lines.append(
            f"- {provenance.get('patterns')} pattern record(s), "
            f"{provenance.get('pruned')} prune record(s), "
            f"{provenance.get('labels')} label(s)"
        )
        lines.append("")
    funnel = report.get("prune_funnel")
    if funnel:
        lines.append("## Prune funnel")
        lines.append("")
        lines.extend(
            _markdown_table(
                ("stage", "count"),
                [(row["stage"], row["count"]) for row in funnel],
            )
        )
        lines.append("")
    live = report.get("live")
    if live:
        lines.append("## Live summary")
        lines.append("")
        lines.append(
            f"- roots: {live['roots_done']}/{live['roots_total']}, "
            f"patterns: {live['patterns']}, "
            f"frames ingested: {live['frames']}"
        )
        lines.append("")
    notes = report.get("notes")
    if notes:
        lines.append("## Notes")
        lines.append("")
        for note in notes:
            lines.append(f"- {note}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
