"""Human-readable rendering of a metrics snapshot.

Turns the JSON snapshot a :class:`~repro.obs.metrics.MetricsRegistry`
produces (CLI ``--metrics-out``, harness ``collect_obs=True``) into the
per-phase / per-depth summary a person reads to see *where a mining run
spent its effort*: a phase-time breakdown (encode vs prune vs project vs
extend), the DFS shape (states touched per depth, patterns per length,
candidates per extension kind), the search/prune totals, and any
histograms.

Also runnable directly on a saved snapshot::

    python -m repro.obs.report metrics.json
"""

from __future__ import annotations

import json
import re
import sys
from collections.abc import Mapping, Sequence
from pathlib import Path
from typing import Any, Optional

__all__ = ["main", "render_report"]

_LABELLED = re.compile(r"^(?P<name>[^\[]+)\[(?P<labels>.*)\]$")


def _split_key(key: str) -> tuple[str, dict[str, str]]:
    """Parse ``name[k=v,...]`` snapshot keys back into name + labels."""
    match = _LABELLED.match(key)
    if match is None:
        return key, {}
    labels: dict[str, str] = {}
    for part in match.group("labels").split(","):
        if "=" in part:
            label, value = part.split("=", 1)
            labels[label] = value
    return match.group("name"), labels


def _numeric(value: str) -> float:
    try:
        return float(value)
    except ValueError:
        return 0.0


def _rows_for_label(
    counters: Mapping[str, float], name: str, label: str
) -> list[tuple[str, float]]:
    """``(label_value, count)`` rows of one labelled counter family."""
    rows: list[tuple[str, float]] = []
    for key, value in counters.items():
        base, labels = _split_key(key)
        if base == name and label in labels:
            rows.append((labels[label], value))
    rows.sort(key=lambda item: _numeric(item[0]))
    return rows


def _table(
    title: str, header: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    from repro.harness.tables import render_table

    dict_rows = [dict(zip(header, row)) for row in rows]
    return render_table(dict_rows, list(header), title=title)


def render_report(snapshot: Mapping[str, Any]) -> str:
    """Render one metrics snapshot as aligned plain-text tables.

    Tolerant of partial snapshots (a run that died mid-mine, or JSON
    with explicit ``null`` sections): missing sections are skipped, never
    a traceback.
    """
    counters: Mapping[str, float] = snapshot.get("counters") or {}
    gauges: Mapping[str, float] = snapshot.get("gauges") or {}
    histograms: Mapping[str, Mapping[str, Any]] = (
        snapshot.get("histograms") or {}
    )
    sections: list[str] = []

    phases = _rows_for_label(counters, "phase_seconds", "phase")
    if phases:
        total = sum(seconds for _, seconds in phases)
        sections.append(
            _table(
                "Phase breakdown",
                ("phase", "seconds", "share"),
                [
                    (
                        phase,
                        round(seconds, 4),
                        f"{seconds / total:.1%}" if total else "—",
                    )
                    for phase, seconds in sorted(
                        phases, key=lambda item: -item[1]
                    )
                ],
            )
        )

    depth_rows = _rows_for_label(counters, "search.states_by_depth", "depth")
    if depth_rows:
        sections.append(
            _table(
                "Projection states per DFS depth",
                ("depth", "states"),
                [(depth, int(count)) for depth, count in depth_rows],
            )
        )

    length_rows = _rows_for_label(
        counters, "search.patterns_by_length", "tokens"
    )
    if length_rows:
        sections.append(
            _table(
                "Patterns emitted per length (endpoint tokens)",
                ("tokens", "patterns"),
                [(tokens, int(count)) for tokens, count in length_rows],
            )
        )

    ext_rows = _rows_for_label(counters, "search.candidates", "ext")
    if ext_rows:
        sections.append(
            _table(
                "Frequent candidates per extension kind",
                ("extension", "candidates"),
                [(ext, int(count)) for ext, count in ext_rows],
            )
        )

    totals = sorted(
        (key, value)
        for key, value in counters.items()
        if _split_key(key)[0] == key and key != "phase_seconds"
    )
    if totals or gauges:
        sections.append(
            _table(
                "Totals",
                ("metric", "value"),
                [*totals, *sorted(gauges.items())],
            )
        )

    for key, hist in sorted(histograms.items()):
        hist = hist or {}
        buckets: Mapping[str, int] = hist.get("buckets") or {}
        total_sum = float(hist.get("sum") or 0.0)
        sections.append(
            _table(
                f"Histogram {key} "
                f"(count={hist.get('count') or 0}, sum={total_sum:g})",
                ("bucket", "observations"),
                list(buckets.items()),
            )
        )

    if not sections:
        return "(empty metrics snapshot)"
    return "\n\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: render a saved metrics JSON (``python -m repro.obs.report``)."""
    args = list(sys.argv[1:] if argv is None else argv)
    if len(args) != 1 or args[0] in ("-h", "--help"):
        print(
            "usage: python -m repro.obs.report METRICS_JSON", file=sys.stderr
        )
        return 2
    snapshot = json.loads(Path(args[0]).read_text(encoding="utf-8"))
    print(render_report(snapshot))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
