"""The fixed workload matrices behind the performance baselines.

A *cell* is one measured configuration: a registered synthetic dataset
(truncated to a fixed sequence count), one absolute support setting, and
one miner. Every knob is pinned — datasets come from
:func:`repro.datagen.standard_dataset` with their registered seeds, so a
cell's search counters are bit-for-bit deterministic across machines and
only its wall time and peak memory vary with hardware.

Matrices:

``quick``
    The CI gate and the committed ``BENCH_PTPMINER.json``: sparse and
    dense synthetic workloads at 2–3 supports, P-TPMiner plus all four
    baselines. The sparse cells reuse the 120-sequence workload of the
    CI metrics-snapshot job (``benchmarks/ci_metrics_snapshot.py``), so
    the two artifacts describe the same run shape. The brute-force
    miner is exponential in sequence length and is therefore excluded
    from the dense cells (and from the lowest sparse support) to keep
    the whole matrix under a couple of minutes.
``tiny``
    A seconds-fast matrix for tests and smoke runs.
"""

from __future__ import annotations

import warnings
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass
from typing import Any

from repro import miners
from repro.core.config import MinerConfig
from repro.core.ptpminer import MiningResult
from repro.datagen import standard_dataset
from repro.model.database import ESequenceDatabase

__all__ = [
    "MATRICES",
    "MINER_FACTORIES",
    "WorkloadCell",
    "build_database",
    "matrix_cells",
]


class _DeprecatedFactories(Mapping[str, Callable[[float], Any]]):
    """Deprecation shim for the old ``MINER_FACTORIES`` dict.

    Miner construction now goes through the :mod:`repro.miners`
    registry; this keeps old ``MINER_FACTORIES["ptpminer"](0.1)`` call
    sites working (with a :class:`DeprecationWarning`) until they
    migrate to ``miners.build(name, min_sup=...)``.
    """

    def __getitem__(self, name: str) -> Callable[[float], Any]:
        factory = miners.get(name)  # raises the canonical error
        warnings.warn(
            "MINER_FACTORIES is deprecated; use repro.miners.build() "
            "or repro.miners.get() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return lambda min_sup: factory(MinerConfig(min_sup=min_sup))

    def __iter__(self) -> Iterator[str]:
        return iter(miners.available())

    def __len__(self) -> int:
        return len(miners.available())


#: Deprecated: miner key -> factory taking the cell's min_sup.
MINER_FACTORIES: Mapping[str, Callable[[float], Any]] = (
    _DeprecatedFactories()
)


@dataclass(frozen=True, slots=True)
class WorkloadCell:
    """One deterministic (dataset, support, miner) measurement point.

    ``workers`` selects the sharded engine (``workers > 1`` implies the
    process executor); the merged result's counters equal the serial
    run's exactly, so the counter-agreement gate applies unchanged.
    """

    dataset: str
    num_sequences: int
    min_sup: float
    miner: str
    workers: int = 1

    def __post_init__(self) -> None:
        if self.miner not in miners.available():
            raise ValueError(
                f"unknown miner {self.miner!r}; "
                f"known: {sorted(miners.available())}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    @property
    def cell_id(self) -> str:
        """Stable key used to match cells across baseline and fresh runs.

        The ``/wN`` suffix only appears for parallel cells so every
        pre-existing baseline cell id is unchanged.
        """
        base = (
            f"{self.dataset}{self.num_sequences}"
            f"/sup{self.min_sup:g}/{self.miner}"
        )
        return base if self.workers == 1 else f"{base}/w{self.workers}"

    def build_miner(self) -> Any:
        """A fresh miner instance configured for this cell."""
        return miners.build(
            self.miner,
            MinerConfig(min_sup=self.min_sup),
            workers=self.workers,
        )

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Run this cell's miner on ``db`` (always a fresh instance)."""
        result: MiningResult = self.build_miner().mine(db)
        return result


def _grid(
    dataset: str,
    num_sequences: int,
    supports: tuple[float, ...],
    miners: tuple[str, ...],
) -> Iterator[WorkloadCell]:
    for min_sup in supports:
        for miner in miners:
            yield WorkloadCell(dataset, num_sequences, min_sup, miner)


_ALL_MINERS = ("ptpminer", "tprefixspan", "hdfs", "ieminer", "bruteforce")
_FAST_MINERS = ("ptpminer", "tprefixspan", "hdfs", "ieminer")

#: Registered matrices, by name. Cells are ordered (cheap datasets
#: first) and cell ids are unique within a matrix.
MATRICES: dict[str, tuple[WorkloadCell, ...]] = {
    "quick": (
        # Sparse: the CI metrics-snapshot workload (sparse @ 120
        # sequences, min_sup 0.10) plus two higher supports; brute
        # force only where its enumeration stays a few seconds.
        *_grid("sparse", 120, (0.1,), _FAST_MINERS),
        *_grid("sparse", 120, (0.2, 0.4), _ALL_MINERS),
        # Dense: heavy overlap drives projection/counting cost; the
        # verification-based baselines are already ~100x slower here at
        # moderate supports, so keep supports high and skip brute force.
        *_grid("dense", 40, (0.5, 0.6), _FAST_MINERS),
        # Sharded engine: same sparse workload through the process
        # executor, gating both the exact shard-merge (counters must
        # equal the serial cell's) and parallel-dispatch overhead.
        WorkloadCell("sparse", 120, 0.2, "ptpminer", workers=2),
    ),
    "tiny": (
        *_grid("tiny", 60, (0.4,), ("ptpminer", "tprefixspan")),
    ),
}


def matrix_cells(name: str) -> tuple[WorkloadCell, ...]:
    """The cells of a registered matrix (``KeyError``-free lookup)."""
    try:
        return MATRICES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload matrix {name!r}; known: {sorted(MATRICES)}"
        ) from None


def build_database(cell: WorkloadCell) -> ESequenceDatabase:
    """Generate the cell's dataset (deterministic under registered seeds)."""
    return standard_dataset(
        cell.dataset, num_sequences=cell.num_sequences
    )
