"""repro.perf — machine-readable performance baselines + regression gate.

The paper's contribution is *efficiency*, so the repo keeps a committed,
schema-versioned performance baseline (``BENCH_PTPMINER.json`` at the
repository root) and tooling to regenerate and compare it:

:mod:`repro.perf.workloads`
    The fixed, deterministic workload matrix (dataset x support x
    miner cells) every baseline run executes.
:mod:`repro.perf.baseline`
    Runs a matrix — timing and memory in **separate** runs, since
    tracemalloc inflates timed code — and serialises the
    schema-versioned report with an environment fingerprint.
:mod:`repro.perf.compare`
    Diffs a fresh run against a baseline with noise-aware thresholds:
    search counters must match exactly (the miners are deterministic),
    wall time and peak memory get per-class relative tolerances, and
    findings render as a markdown regression report.
:mod:`repro.perf.cli`
    ``run`` / ``compare`` / ``update-baseline`` subcommands, reachable
    as ``python -m repro.perf`` or ``ptpminer perf ...``. CI's
    perf-smoke job runs ``compare`` on the quick matrix and fails on
    regression.

See ``docs/observability.md`` for how to read reports and ``DESIGN.md``
for the baseline-update policy.
"""

from __future__ import annotations

from repro.perf.baseline import (
    BASELINE_FILENAME,
    SCHEMA_VERSION,
    environment_fingerprint,
    load_report,
    run_matrix,
    write_report,
)
from repro.perf.compare import (
    ComparisonResult,
    Finding,
    Tolerance,
    compare_reports,
    render_markdown,
)
from repro.perf.workloads import MATRICES, WorkloadCell, matrix_cells

__all__ = [
    "BASELINE_FILENAME",
    "ComparisonResult",
    "Finding",
    "MATRICES",
    "SCHEMA_VERSION",
    "Tolerance",
    "WorkloadCell",
    "compare_reports",
    "environment_fingerprint",
    "load_report",
    "matrix_cells",
    "render_markdown",
    "run_matrix",
    "write_report",
]
