"""Command-line entry points for the performance baseline tooling.

Reachable as ``python -m repro.perf <cmd>`` or ``ptpminer perf <cmd>``:

``run``
    Execute a matrix and write the report to ``--out`` (default: print
    to stdout). Never compares anything.
``compare``
    Execute a matrix (or take a prebuilt report via ``--fresh``) and
    diff it against ``--baseline``. Exits 1 on regression, 0 otherwise;
    always prints the markdown regression report.
``update-baseline``
    Execute a matrix and overwrite the committed baseline file —
    printing the comparison against the old baseline (when one exists)
    as the evidence to paste into the commit message. See DESIGN.md for
    when updating is legitimate.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Any, Optional

from repro.perf.baseline import (
    BASELINE_FILENAME,
    append_report_to_ledger,
    load_report,
    run_matrix,
    stderr_progress,
    write_report,
)
from repro.perf.compare import Tolerance, compare_reports, render_markdown

__all__ = ["build_parser", "main"]


def build_parser(prog: str = "repro.perf") -> argparse.ArgumentParser:
    """The argument parser for all perf subcommands."""
    parser = argparse.ArgumentParser(
        prog=prog,
        description="Performance baselines: run, compare, update.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_matrix(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--matrix",
            default="quick",
            help="workload matrix name (default: quick)",
        )
        p.add_argument(
            "--quiet",
            action="store_true",
            help="suppress per-cell progress on stderr",
        )
        p.add_argument(
            "--ledger-dir",
            default=None,
            help="also append every fresh cell to the run ledger here "
            "(see 'ptpminer history')",
        )

    run_p = sub.add_parser("run", help="run a matrix, emit the report")
    add_matrix(run_p)
    run_p.add_argument(
        "--out",
        default=None,
        help="write report JSON here (default: stdout)",
    )

    cmp_p = sub.add_parser(
        "compare", help="diff a fresh run against a baseline"
    )
    add_matrix(cmp_p)
    cmp_p.add_argument(
        "--baseline",
        default=BASELINE_FILENAME,
        help=f"baseline report to diff against (default: {BASELINE_FILENAME})",
    )
    cmp_p.add_argument(
        "--fresh",
        default=None,
        help="prebuilt fresh report (skips running the matrix)",
    )
    cmp_p.add_argument(
        "--report-out",
        default=None,
        help="also write the markdown regression report here",
    )
    cmp_p.add_argument(
        "--fresh-out",
        default=None,
        help="also write the fresh report JSON here (CI artifact)",
    )
    cmp_p.add_argument(
        "--time-rtol",
        type=float,
        default=None,
        help=f"relative wall-time tolerance (default: {Tolerance().time_rtol})",
    )
    cmp_p.add_argument(
        "--time-abs",
        type=float,
        default=None,
        help=f"absolute wall-time floor, seconds (default: {Tolerance().time_abs_s})",
    )
    cmp_p.add_argument(
        "--mem-rtol",
        type=float,
        default=None,
        help=f"relative peak-memory tolerance (default: {Tolerance().mem_rtol})",
    )
    cmp_p.add_argument(
        "--mem-abs",
        type=float,
        default=None,
        help=f"absolute peak-memory floor, MiB (default: {Tolerance().mem_abs_mib})",
    )
    cmp_p.add_argument(
        "--strict-env",
        action="store_true",
        help="fail on timing/memory even across environments",
    )

    upd_p = sub.add_parser(
        "update-baseline", help="re-run the matrix and rewrite the baseline"
    )
    add_matrix(upd_p)
    upd_p.add_argument(
        "--baseline",
        default=BASELINE_FILENAME,
        help=f"baseline file to rewrite (default: {BASELINE_FILENAME})",
    )
    return parser


def _tolerance_from(args: argparse.Namespace) -> Tolerance:
    defaults = Tolerance()
    return Tolerance(
        time_rtol=(
            defaults.time_rtol if args.time_rtol is None else args.time_rtol
        ),
        time_abs_s=(
            defaults.time_abs_s if args.time_abs is None else args.time_abs
        ),
        mem_rtol=(
            defaults.mem_rtol if args.mem_rtol is None else args.mem_rtol
        ),
        mem_abs_mib=(
            defaults.mem_abs_mib if args.mem_abs is None else args.mem_abs
        ),
    )


def _run_fresh(args: argparse.Namespace) -> dict[str, Any]:
    progress = None if args.quiet else stderr_progress
    return run_matrix(args.matrix, progress=progress)


def _maybe_append_ledger(
    args: argparse.Namespace, report: dict[str, Any]
) -> None:
    """Append the report's cells to ``--ledger-dir`` when requested."""
    if getattr(args, "ledger_dir", None) is None:
        return
    entries = append_report_to_ledger(report, args.ledger_dir)
    print(
        f"ledger: appended {len(entries)} cell run(s) to "
        f"{Path(args.ledger_dir)}",
        file=sys.stderr,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    try:
        if args.command == "run":
            report = _run_fresh(args)
            _maybe_append_ledger(args, report)
            text = json.dumps(report, indent=2, sort_keys=True)
            if args.out is None:
                print(text)
            else:
                write_report(report, args.out)
                print(f"wrote {args.out}", file=sys.stderr)
            return 0

        if args.command == "compare":
            baseline = load_report(args.baseline)
            if args.fresh is not None:
                fresh = load_report(args.fresh)
            else:
                fresh = _run_fresh(args)
            _maybe_append_ledger(args, fresh)
            if args.fresh_out is not None:
                write_report(fresh, args.fresh_out)
            result = compare_reports(
                baseline,
                fresh,
                tolerance=_tolerance_from(args),
                strict_env=args.strict_env,
            )
            markdown = render_markdown(result)
            print(markdown, end="")
            if args.report_out is not None:
                Path(args.report_out).write_text(markdown, encoding="utf-8")
            return 0 if result.ok else 1

        if args.command == "update-baseline":
            old: Optional[dict[str, Any]] = None
            try:
                old = load_report(args.baseline)
            except ValueError:
                pass
            fresh = _run_fresh(args)
            _maybe_append_ledger(args, fresh)
            write_report(fresh, args.baseline)
            print(f"wrote {args.baseline}", file=sys.stderr)
            if old is not None:
                result = compare_reports(old, fresh)
                print(render_markdown(result), end="")
            return 0
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
