"""Run a workload matrix and serialise the performance report.

Per cell, two **separate** runs (see the measurement-hygiene note on
:func:`repro.harness.metrics.measure`):

1. a *timing* run with ``track_memory=False`` — tracemalloc hooks every
   allocation and inflates allocation-heavy mining code noticeably, so
   the wall time a baseline records must never come from a traced run;
2. a *memory* run with ``track_memory=True`` for peak additional heap.

Search counters are read from both runs and must agree exactly — the
miners are deterministic, so a mismatch means nondeterminism crept into
the stack and the report must not be trusted (the runner raises).

Report shape (schema-versioned; see ``BENCH_PTPMINER.json``)::

    {
      "schema": 1,
      "kind": "repro-bench",
      "matrix": "quick",
      "environment": {"python": "3.11.7", ...},
      "cells": [
        {"cell": "sparse120/sup0.1/ptpminer", "dataset": "sparse", ...,
         "wall_s": 0.031, "peak_mib": 1.42, "patterns": 36,
         "counters": {"nodes_expanded": 83, ...}},
        ...
      ]
    }
"""

from __future__ import annotations

import json
import platform
import sys
from collections.abc import Callable, Mapping
from pathlib import Path
from typing import Any, Optional, Union

from repro.harness.metrics import measure
from repro.model.database import ESequenceDatabase
from repro.perf.workloads import WorkloadCell, build_database, matrix_cells

__all__ = [
    "BASELINE_FILENAME",
    "SCHEMA_VERSION",
    "append_report_to_ledger",
    "environment_fingerprint",
    "load_report",
    "run_cell",
    "run_matrix",
    "stderr_progress",
    "write_report",
]

#: Schema version stamped into every report this module writes.
SCHEMA_VERSION = 1

#: Canonical committed-baseline filename (lives at the repository root).
BASELINE_FILENAME = "BENCH_PTPMINER.json"


def environment_fingerprint() -> dict[str, str]:
    """Identify the machine/runtime a report was measured on.

    Compared (as a whole) against the baseline's fingerprint when
    diffing: search counters transfer across environments, wall time
    and peak memory do not — :mod:`repro.perf.compare` downgrades
    timing/memory findings to warnings on a fingerprint mismatch.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "machine": platform.machine(),
    }


def run_cell(
    cell: WorkloadCell, db: Optional[ESequenceDatabase] = None
) -> dict[str, Any]:
    """Measure one cell; returns its report row.

    ``db`` lets callers share one generated database across the cells
    that use it (the matrix runner does); when omitted the cell's
    dataset is generated fresh.
    """
    if db is None:
        db = build_database(cell)
    # Timing run: no tracemalloc, no registry — the leanest path.
    timed = measure(
        lambda: cell.mine(db), track_memory=False, workers=cell.workers
    )
    # Memory run: separate, so tracemalloc never pollutes wall_s above.
    traced = measure(
        lambda: cell.mine(db), track_memory=True, workers=cell.workers
    )
    counters = dict(timed.result.counters.as_dict())
    if counters != traced.result.counters.as_dict():
        raise RuntimeError(
            f"nondeterministic search counters in cell {cell.cell_id}: "
            "timing and memory runs disagree"
        )
    peak = traced.peak_mem_mb
    return {
        "cell": cell.cell_id,
        "dataset": cell.dataset,
        "num_sequences": cell.num_sequences,
        "min_sup": cell.min_sup,
        "miner": cell.miner,
        "workers": cell.workers,
        "wall_s": round(timed.elapsed_s, 6),
        "peak_mib": None if peak is None else round(peak, 3),
        "patterns": len(timed.result.patterns),
        "counters": counters,
    }


def run_matrix(
    matrix: str = "quick",
    *,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, Any]:
    """Execute every cell of ``matrix``; return the full report dict.

    ``progress`` (e.g. ``lambda msg: print(msg, file=sys.stderr)``)
    receives one line per completed cell.
    """
    cells = matrix_cells(matrix)
    databases: dict[tuple[str, int], ESequenceDatabase] = {}
    rows: list[dict[str, Any]] = []
    for cell in cells:
        key = (cell.dataset, cell.num_sequences)
        if key not in databases:
            databases[key] = build_database(cell)
        row = run_cell(cell, databases[key])
        rows.append(row)
        if progress is not None:
            progress(
                f"{row['cell']}: {row['wall_s']:.3f}s, "
                f"{row['peak_mib']} MiB, {row['patterns']} patterns"
            )
    return {
        "schema": SCHEMA_VERSION,
        "kind": "repro-bench",
        "matrix": matrix,
        "environment": environment_fingerprint(),
        "cells": rows,
    }


def write_report(
    report: Mapping[str, Any], path: Union[str, Path]
) -> None:
    """Serialise a report as stable, diff-friendly indented JSON."""
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: Union[str, Path]) -> dict[str, Any]:
    """Load and sanity-check a serialised report.

    Raises ``ValueError`` on a missing/garbled file or a schema this
    code does not understand, so ``compare`` failures are actionable.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValueError(
            f"no benchmark report at {path} "
            f"(generate one with 'python -m repro.perf update-baseline')"
        ) from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"unparseable benchmark report {path}: {exc}") from exc
    if not isinstance(data, dict) or data.get("kind") != "repro-bench":
        raise ValueError(f"{path} is not a repro-bench report")
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has schema {data.get('schema')!r}; "
            f"this tool understands schema {SCHEMA_VERSION}"
        )
    return data


def append_report_to_ledger(
    report: Mapping[str, Any], ledger_dir: Union[str, Path]
) -> list[dict[str, Any]]:
    """Append one run-ledger entry per cell of a bench report.

    This is how ``BENCH_PTPMINER.json`` gains a *trajectory*: every
    ``perf run``/``compare`` invoked with ``--ledger-dir`` lands its
    cells in the persistent ledger, and ``ptpminer history`` then
    trends each cell across runs (the cell id is folded into the config
    fingerprint, so every cell forms its own group). Dataset digests
    are computed by regenerating each cell's database — generation is
    deterministic under the registered seeds, so the digest matches a
    ``mine --ledger-dir`` run over the same generated file. Returns the
    appended entries in cell order.
    """
    # Imported here, not at module level: repro.obs.ledger imports
    # repro.perf.compare for its tolerances, so a module-level import
    # back into repro.perf would be circular.
    from repro.obs.ledger import RunLedger, build_entry, dataset_digest

    cells_by_id = {
        cell.cell_id: cell for cell in matrix_cells(report["matrix"])
    }
    digests: dict[tuple[str, int], str] = {}
    ledger = RunLedger(ledger_dir)
    appended: list[dict[str, Any]] = []
    environment = dict(report.get("environment", {}))
    for row in report["cells"]:
        cell = cells_by_id.get(row["cell"])
        if cell is not None:
            key = (cell.dataset, cell.num_sequences)
            if key not in digests:
                digests[key] = dataset_digest(build_database(cell))
            digest = digests[key]
        else:  # a cell the current matrix no longer defines
            digest = f"cell:{row['cell']}"
        entry = build_entry(
            dataset_digest=digest,
            miner=row["miner"],
            min_sup=row["min_sup"],
            mode="tp",
            workers=int(row.get("workers", 1)),
            extra_config={"cell": row["cell"], "matrix": report["matrix"]},
            environment=environment,
            wall_s=float(row["wall_s"]),
            patterns=int(row["patterns"]),
            counters=row["counters"],
        )
        appended.append(ledger.append(entry))
    return appended


def stderr_progress(message: str) -> None:
    """Per-cell progress sink printing to stderr (the CLI default)."""
    print(message, file=sys.stderr, flush=True)
