"""``python -m repro.perf`` — performance baseline tooling."""

from __future__ import annotations

from repro.perf.cli import main

__all__: list[str] = []

if __name__ == "__main__":
    raise SystemExit(main())
