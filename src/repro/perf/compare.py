"""Diff a fresh benchmark report against the committed baseline.

Metric classes get different treatment, because they have different
noise characteristics:

* **counters** (``nodes_expanded``, ``pruned_*``, ``states_created``,
  …) and **pattern counts** are exact: the miners are deterministic, so
  any difference is a real behavioural change — always a hard failure.
* **wall time** is noisy: a cell only regresses when it is slower than
  the baseline by *both* a relative factor (``time_rtol``) and an
  absolute floor (``time_abs_s`` — sub-100ms cells jitter by whole
  multiples).
* **peak memory** is stable on one interpreter but shifts across
  Python versions; it gets its own (tighter) tolerance pair.

When the fresh report's environment fingerprint differs from the
baseline's, timing and memory findings are *downgraded to warnings* by
default (``strict_env=True`` restores hard failures) — a laptop cannot
meaningfully gate on CI-runner milliseconds, but counters still can.
Improvements beyond the same thresholds are reported (never fatal) so
``update-baseline`` runs have evidence attached.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "ComparisonResult",
    "Finding",
    "Tolerance",
    "compare_reports",
    "render_markdown",
]


@dataclass(frozen=True, slots=True)
class Tolerance:
    """Noise thresholds per metric class (see the module docstring)."""

    time_rtol: float = 0.75
    time_abs_s: float = 0.25
    mem_rtol: float = 0.30
    mem_abs_mib: float = 2.0


@dataclass(frozen=True, slots=True)
class Finding:
    """One comparison outcome for one metric of one cell."""

    cell: str
    metric: str
    baseline: Any
    fresh: Any
    detail: str

    def render(self) -> str:
        """One-line human-readable form."""
        return (
            f"{self.cell} · {self.metric}: "
            f"{self.baseline} -> {self.fresh} ({self.detail})"
        )


@dataclass(slots=True)
class ComparisonResult:
    """Everything a comparison found, bucketed by severity."""

    matrix: str
    env_match: bool
    regressions: list[Finding] = field(default_factory=list)
    warnings: list[Finding] = field(default_factory=list)
    improvements: list[Finding] = field(default_factory=list)
    cells_compared: int = 0

    @property
    def ok(self) -> bool:
        """True when no hard regression was found."""
        return not self.regressions


def _rel_change(baseline: float, fresh: float) -> float:
    if baseline <= 0:
        return 0.0 if fresh <= 0 else float("inf")
    return (fresh - baseline) / baseline


def _index_cells(report: Mapping[str, Any]) -> dict[str, dict[str, Any]]:
    return {
        str(row.get("cell")): dict(row)
        for row in report.get("cells", ())
    }


def compare_reports(
    baseline: Mapping[str, Any],
    fresh: Mapping[str, Any],
    *,
    tolerance: Optional[Tolerance] = None,
    strict_env: bool = False,
) -> ComparisonResult:
    """Compare ``fresh`` against ``baseline``; classify every difference.

    Cells are matched by ``cell`` id; a cell present on only one side is
    a hard failure (the workload matrix itself changed — re-run
    ``update-baseline`` deliberately). See the module docstring for the
    per-metric-class rules.
    """
    tol = tolerance if tolerance is not None else Tolerance()
    env_match = dict(baseline.get("environment", {})) == dict(
        fresh.get("environment", {})
    )
    result = ComparisonResult(
        matrix=str(fresh.get("matrix", baseline.get("matrix", "?"))),
        env_match=env_match,
    )
    soft_sink = (
        result.regressions
        if (env_match or strict_env)
        else result.warnings
    )

    base_cells = _index_cells(baseline)
    fresh_cells = _index_cells(fresh)
    for cell_id in sorted(set(base_cells) - set(fresh_cells)):
        result.regressions.append(
            Finding(cell_id, "presence", "present", "missing",
                    "cell missing from fresh run")
        )
    for cell_id in sorted(set(fresh_cells) - set(base_cells)):
        result.regressions.append(
            Finding(cell_id, "presence", "missing", "present",
                    "cell not in baseline (update the baseline?)")
        )

    for cell_id in sorted(set(base_cells) & set(fresh_cells)):
        base, new = base_cells[cell_id], fresh_cells[cell_id]
        result.cells_compared += 1

        # --- exact classes: counters + pattern count -------------------
        if base.get("patterns") != new.get("patterns"):
            result.regressions.append(
                Finding(cell_id, "patterns", base.get("patterns"),
                        new.get("patterns"),
                        "deterministic output changed")
            )
        base_counters = dict(base.get("counters", {}))
        new_counters = dict(new.get("counters", {}))
        for name in sorted(set(base_counters) | set(new_counters)):
            if base_counters.get(name) != new_counters.get(name):
                result.regressions.append(
                    Finding(cell_id, f"counters.{name}",
                            base_counters.get(name),
                            new_counters.get(name),
                            "counters are exact-match (deterministic)")
                )

        # --- tolerant classes: wall time + peak memory -----------------
        for metric, rtol, abs_floor, unit in (
            ("wall_s", tol.time_rtol, tol.time_abs_s, "s"),
            ("peak_mib", tol.mem_rtol, tol.mem_abs_mib, "MiB"),
        ):
            base_value = base.get(metric)
            new_value = new.get(metric)
            if base_value is None or new_value is None:
                continue
            delta = float(new_value) - float(base_value)
            rel = _rel_change(float(base_value), float(new_value))
            detail = (
                f"{'+' if delta >= 0 else ''}{delta:.3f}{unit}, "
                f"{rel:+.1%} vs rtol {rtol:.0%} / floor {abs_floor}{unit}"
            )
            finding = Finding(cell_id, metric, base_value, new_value, detail)
            if delta > abs_floor and rel > rtol:
                soft_sink.append(finding)
            elif -delta > abs_floor and -rel > rtol:
                result.improvements.append(finding)
    return result


def render_markdown(result: ComparisonResult) -> str:
    """Render a comparison as a markdown regression report."""
    lines = [
        f"# Perf comparison — matrix `{result.matrix}`",
        "",
        f"- cells compared: **{result.cells_compared}**",
        f"- environment match: **{'yes' if result.env_match else 'no'}**"
        + (
            ""
            if result.env_match
            else " (timing/memory findings downgraded to warnings)"
        ),
        f"- verdict: **{'OK' if result.ok else 'REGRESSION'}**",
    ]
    for title, findings in (
        ("Regressions", result.regressions),
        ("Warnings", result.warnings),
        ("Improvements", result.improvements),
    ):
        lines.append("")
        lines.append(f"## {title} ({len(findings)})")
        if not findings:
            lines.append("")
            lines.append("none")
            continue
        lines.append("")
        lines.append("| cell | metric | baseline | fresh | detail |")
        lines.append("|------|--------|----------|-------|--------|")
        for finding in findings:
            lines.append(
                f"| `{finding.cell}` | {finding.metric} "
                f"| {finding.baseline} | {finding.fresh} "
                f"| {finding.detail} |"
            )
    return "\n".join(lines) + "\n"
