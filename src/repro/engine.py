"""Parallel sharded mining engine.

The engine parallelizes P-TPMiner by sharding its **level-1 fan-out**:
the parent process runs the root of the search exactly once
(:meth:`~repro.core.ptpminer.PTPMiner.plan_root` — validation, point
pruning, encoding, pair tables, and the root candidate gather with full
root-node accounting), partitions the root candidates into serializable
:class:`ShardTask`s, and hands each shard to a worker that expands only
its candidates' subtrees
(:meth:`~repro.core.ptpminer.PTPMiner.search_shard`). Per-shard
patterns, :class:`~repro.core.pruning.PruneCounters`, and observability
data are then merged into a single :class:`~repro.core.ptpminer.MiningResult`.

Determinism guarantee
---------------------
The merged result's pattern list — patterns *and* supports, in the
canonical result order — is identical to the sequential miner's, for any
worker count and any shard partition. So are the merged counters: the
parent accounts the root node once, workers skip root accounting and sum
only their subtrees, and subtree accounting is independent across root
candidates, so ``parent + Σ shards`` reproduces the serial counters
exactly. ``perf compare``'s exact counter gate therefore holds with
``workers > 1``.

Executors
---------
``serial``
    Runs every shard in-process, sequentially. The default (and the
    debugging surface: pure Python stack traces, no pickling).
``process``
    Runs shards on a :class:`concurrent.futures.ProcessPoolExecutor`.
    The database is shipped once per worker via the pool initializer;
    tasks themselves stay small. This module is the **only** place in
    the repository allowed to construct a process pool (lint rule R008).

Observability merge semantics
-----------------------------
Workers run with private, freshly scoped tracers/registries (never the
parent's — a forked child must not write to inherited handles). Each
shard ships its trace events and metrics snapshot home, where the
parent:

* re-emits trace events with span ids rewritten to ``"shard<i>:<id>"``
  and orphan parents re-hung under the engine's dispatching span, so
  ``--trace`` files stay a single well-formed tree;
* absorbs metrics snapshots under the ``shard.`` prefix
  (:meth:`~repro.obs.metrics.MetricsRegistry.absorb_snapshot`):
  counters add across shards, histograms merge bound-for-bound;
* records one ``engine.shard_elapsed_s[shard=<i>]`` gauge per shard, so
  metrics snapshots carry the load-balance picture (the harness's
  ``shard_imbalance`` column derives from them).

Live telemetry
--------------
``mine_sharded(live=...)`` (or an installed
:func:`repro.obs.live.use_live` scope — what the CLI's ``--live`` and
the harness's ``collect_live=True`` use) streams worker heartbeats to
the parent **during** the run over the :mod:`repro.obs.live` bus:
workers publish throttled frames from a per-root-candidate hook, the
parent drains them from its result-collection loop (a ``multiprocessing``
manager queue for the process executor, a direct callback for the
serial one), and a :class:`~repro.obs.live.LiveAggregator` merges them
into per-shard lanes with a global ETA and straggler callouts. The bus
is never constructed unless live mode is requested — the disabled path
costs one ``None`` check per run.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as _queue
from collections.abc import Callable
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from repro import contracts
from repro.core.config import SHARD_STRATEGIES, MinerConfig
from repro.core.pruning import PruneCounters
from repro.core.ptpminer import (
    MiningResult,
    PTPMiner,
    RootCandidates,
    _run_snapshot,
)
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport
from repro.obs import clock as obs_clock
from repro.obs import costmodel as obs_costmodel
from repro.obs import live as obs_live
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import provenance as obs_provenance
from repro.obs import trace as obs_trace
from repro.temporal.endpoint import token_name

__all__ = [
    "EXECUTORS",
    "SHARD_STRATEGIES",
    "ShardResult",
    "ShardTask",
    "ShardedMiner",
    "mine_sharded",
    "plan_shards",
]

#: Valid executor names (``"auto"`` resolves by worker count).
EXECUTORS = ("auto", "serial", "process")

#: One root candidate shipped to a worker:
#: ``((ext_kind, sym, pocc), (weight, (sid, ...)))``.
_TaskCandidate = tuple[tuple[int, int, int], tuple[float, tuple[int, ...]]]


@dataclass(frozen=True, slots=True)
class ShardTask:
    """One worker's slice of the level-1 fan-out. Frozen and picklable.

    The database itself is *not* part of the task — it is shipped once
    per worker process through the pool initializer; tasks carry only
    the shard's root candidates plus enough configuration to rebuild the
    miner identically.
    """

    shard: int
    num_shards: int
    config: MinerConfig
    threshold: float
    candidates: tuple[_TaskCandidate, ...]

    def candidate_map(self) -> RootCandidates:
        """Rebuild the ``candidate -> (weight, sids)`` map the search eats."""
        return {
            cand: (weight, list(sids))
            for cand, (weight, sids) in self.candidates
        }


@dataclass(slots=True)
class ShardResult:
    """What one shard sends home to be merged."""

    shard: int
    patterns: list[PatternWithSupport]
    counters: PruneCounters
    metrics: dict[str, Any] = field(default_factory=dict)
    trace_events: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0
    #: Cost-profile snapshot (``CostCollector.snapshot()``), shipped
    #: home exactly like ``metrics`` and absorbed by the parent.
    cost: dict[str, Any] = field(default_factory=dict)
    #: Provenance snapshot (``ProvenanceCollector.snapshot()``), same
    #: channel: per-shard records cover disjoint subtrees, so the
    #: parent's merge is a keyed union, order-independent.
    provenance: dict[str, Any] = field(default_factory=dict)


def _candidate_name(
    cand: tuple[int, int, int], labels: Sequence[str]
) -> str:
    """The display name of a root candidate, e.g. ``"A+"``, ``"B#2-"``.

    Matches the names the cost model records per root and the planner
    forecasts against (``sym = label_id * 3 + kind``); uses the shared
    :func:`~repro.temporal.endpoint.token_name` formatter rather than
    constructing endpoints outside the encoder.
    """
    _ext, sym, pocc = cand
    return token_name(labels[sym // 3], pocc, sym % 3)


def plan_shards(
    root: RootCandidates,
    config: MinerConfig,
    threshold: float,
    num_shards: int,
    *,
    strategy: str = "roundrobin",
    costs: Optional[dict[str, float]] = None,
    labels: Optional[Sequence[str]] = None,
) -> list[ShardTask]:
    """Partition the root candidates into at most ``num_shards`` tasks.

    With the default ``"roundrobin"`` strategy, candidates are dealt in
    canonical (sorted) order, which spreads the heavy low-index prefixes
    across shards. With ``"predicted"``, candidates are placed
    heaviest-first onto the least-loaded shard (LPT) using the per-root
    forecasts in ``costs`` (root name -> predicted cost, as produced by
    :mod:`repro.obs.planner`); ``labels`` (the database's sorted
    alphabet) is then required to map candidates to their names. Roots
    missing from ``costs`` — or every root, when no plan is supplied —
    fall back to ``support * supporter_count``, a zero-cost static proxy
    computable from the candidate map alone.

    Either way, empty shards are never produced; with fewer candidates
    than shards you get fewer tasks. The partition has no effect on the
    merged result — only on load balance (see the module docstring's
    determinism guarantee).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
        )
    ordered = sorted(root)
    count = min(num_shards, len(ordered))
    if count == 0:
        return []
    buckets: list[list[_TaskCandidate]] = [[] for _ in range(count)]
    if strategy == "roundrobin":
        for index, cand in enumerate(ordered):
            weight, sids = root[cand]
            buckets[index % count].append((cand, (weight, tuple(sids))))
    else:
        if labels is None:
            raise ValueError(
                "strategy='predicted' needs labels to name root candidates"
            )
        forecasts = costs or {}

        def cost_of(cand: tuple[int, int, int]) -> float:
            weight, sids = root[cand]
            forecast = forecasts.get(_candidate_name(cand, labels))
            if forecast is not None:
                return max(float(forecast), 0.0)
            return float(weight) * len(sids)

        heap = [(0.0, shard) for shard in range(count)]
        heapq.heapify(heap)
        # LPT: heaviest candidate first, onto the least-loaded shard;
        # ties break on the candidate tuple so the deal is deterministic.
        for cand in sorted(ordered, key=lambda c: (-cost_of(c), c)):
            load, shard = heapq.heappop(heap)
            weight, sids = root[cand]
            buckets[shard].append((cand, (weight, tuple(sids))))
            heapq.heappush(heap, (load + cost_of(cand), shard))
        for bucket in buckets:
            bucket.sort()
        # All-zero forecasts can pile everything on shard 0; drop the
        # resulting empty buckets to keep the no-empty-shards invariant.
        buckets = [bucket for bucket in buckets if bucket]
    return [
        ShardTask(
            shard=shard,
            num_shards=count,
            config=config,
            threshold=threshold,
            candidates=tuple(bucket),
        )
        for shard, bucket in enumerate(buckets)
    ]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-worker-process payload installed by :func:`_init_worker`.
_WORKER_PAYLOAD: dict[str, Any] = {}


def _init_worker(
    db: ESequenceDatabase,
    weights: Sequence[float],
    collect_metrics: bool,
    collect_trace: bool,
    collect_cost: bool = False,
    collect_provenance: bool = False,
    live_queue: Optional[Any] = None,
    live_interval: float = 0.5,
) -> None:
    """Pool initializer: receive the database once, silence inherited obs.

    A forked child inherits the parent's installed tracer / registry /
    progress reporter; writing to those copies would be lost at best and
    interleave with the parent's output at worst, so the worker starts
    observability from a clean slate and scopes its own per-shard
    collectors in :func:`_run_shard`. ``live_queue`` (a manager-queue
    proxy, present only in live mode) is where the worker's
    :class:`~repro.obs.live.LiveSink` publishes heartbeat frames.
    """
    obs_trace.set_tracer(None)
    obs_metrics.set_registry(None)
    obs_progress.set_reporter(None)
    obs_live.set_live(None)
    obs_costmodel.set_collector(None)
    obs_provenance.set_collector(None)
    _WORKER_PAYLOAD["db"] = db
    _WORKER_PAYLOAD["weights"] = list(weights)
    _WORKER_PAYLOAD["collect_metrics"] = collect_metrics
    _WORKER_PAYLOAD["collect_trace"] = collect_trace
    _WORKER_PAYLOAD["collect_cost"] = collect_cost
    _WORKER_PAYLOAD["collect_provenance"] = collect_provenance
    _WORKER_PAYLOAD["live_publish"] = (
        None if live_queue is None else live_queue.put
    )
    _WORKER_PAYLOAD["live_interval"] = live_interval


def _run_shard(task: ShardTask) -> ShardResult:
    """Expand one shard (runs inside a worker process, or in-process)."""
    db: ESequenceDatabase = _WORKER_PAYLOAD["db"]
    weights: list[float] = _WORKER_PAYLOAD["weights"]
    collector = (
        obs_trace.TraceCollector()
        if _WORKER_PAYLOAD["collect_trace"]
        else None
    )
    registry = (
        obs_metrics.MetricsRegistry()
        if _WORKER_PAYLOAD["collect_metrics"]
        else None
    )
    # A private collector even on the serial executor: the parent's
    # collector stays shadowed during the search and the snapshot comes
    # home through ShardResult, so both executors merge identically.
    cost = (
        obs_costmodel.CostCollector()
        if _WORKER_PAYLOAD.get("collect_cost")
        else None
    )
    prov = (
        obs_provenance.ProvenanceCollector()
        if _WORKER_PAYLOAD.get("collect_provenance")
        else None
    )
    publish = _WORKER_PAYLOAD.get("live_publish")
    sink = (
        None
        if publish is None
        else obs_live.LiveSink(
            task.shard,
            len(task.candidates),
            publish,
            min_interval_s=_WORKER_PAYLOAD.get("live_interval", 0.5),
        )
    )
    miner = PTPMiner.from_config(task.config)
    started = obs_clock.now()
    with ExitStack() as stack:
        if registry is not None:
            stack.enter_context(obs_metrics.use_registry(registry))
        if collector is not None:
            stack.enter_context(obs_trace.use_tracer(collector))
        if cost is not None:
            stack.enter_context(obs_costmodel.use_collector(cost))
        if prov is not None:
            stack.enter_context(obs_provenance.use_collector(prov))
        patterns, counters = miner.search_shard(
            db,
            weights,
            task.threshold,
            task.candidate_map(),
            on_root=None if sink is None else sink.on_root,
        )
    if sink is not None:
        sink.finish(
            len(patterns),
            {k: float(v) for k, v in counters.as_dict().items()},
        )
    elapsed = obs_clock.now() - started
    return ShardResult(
        shard=task.shard,
        patterns=patterns,
        counters=counters,
        metrics=registry.snapshot() if registry is not None else {},
        trace_events=collector.events if collector is not None else [],
        elapsed=elapsed,
        cost=cost.snapshot() if cost is not None else {},
        provenance=prov.snapshot() if prov is not None else {},
    )


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
def _run_serial(tasks: list[ShardTask]) -> list[ShardResult]:
    """Run every shard in-process, sequentially."""
    return [_run_shard(task) for task in tasks]


def _run_process(
    tasks: list[ShardTask],
    db: ESequenceDatabase,
    weights: Sequence[float],
    workers: int,
    collect_metrics: bool,
    collect_trace: bool,
    collect_cost: bool = False,
    collect_provenance: bool = False,
    live_queue: Optional[Any] = None,
    live_interval: float = 0.5,
    on_frame: Optional[Callable[[dict[str, Any]], None]] = None,
) -> list[ShardResult]:
    """Run shards on a process pool, shipping the database once per worker.

    In live mode (``live_queue`` + ``on_frame`` given) the shards are
    submitted individually and the parent drains heartbeat frames off
    the queue *while* waiting for results — the telemetry bus needs no
    extra thread, just this loop's blocking ``get(timeout=...)``.
    """
    # The one sanctioned process-pool construction site (lint rule R008).
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        initializer=_init_worker,
        initargs=(
            db,
            weights,
            collect_metrics,
            collect_trace,
            collect_cost,
            collect_provenance,
            live_queue,
            live_interval,
        ),
    ) as pool:
        if live_queue is None or on_frame is None:
            return list(pool.map(_run_shard, tasks))
        futures = [pool.submit(_run_shard, task) for task in tasks]
        pending = set(futures)
        poll_s = max(0.05, live_interval / 2)
        while pending:
            try:
                payload = live_queue.get(timeout=poll_s)
            except _queue.Empty:
                pass
            else:
                on_frame(payload)
            pending = {f for f in pending if not f.done()}
        while True:  # drain whatever arrived after the last result
            try:
                payload = live_queue.get_nowait()
            except _queue.Empty:
                break
            on_frame(payload)
        return [future.result() for future in futures]


def _reemit_shard_trace(
    tracer: obs_trace.Tracer,
    result: ShardResult,
    parent_span: Optional[int],
) -> None:
    """Replay a worker's span events into the parent trace.

    Span ids are rewritten to ``"shard<i>:<id>"`` strings (unique across
    shards); parent links pointing at spans the worker did not itself
    open — ``None`` roots, or stale ids inherited through ``fork`` — are
    re-hung under the engine's dispatching span.
    """
    own = {ev["span"] for ev in result.trace_events}

    def remap(span_id: Any) -> Any:
        if span_id in own:
            return f"shard{result.shard}:{span_id}"
        return parent_span

    for event in result.trace_events:
        rewritten = dict(event)
        rewritten["span"] = f"shard{result.shard}:{event['span']}"
        if "parent" in rewritten:
            rewritten["parent"] = remap(event["parent"])
        tracer.emit(rewritten)


# ----------------------------------------------------------------------
# the engine entry points
# ----------------------------------------------------------------------
def _resolve_live(
    live: Union[None, bool, "obs_live.LiveConfig", "obs_live.LiveCollector"],
) -> Optional[obs_live.LiveCollector]:
    """Normalize ``mine_sharded``'s ``live=`` argument to a collector.

    ``None`` defers to the installed :func:`repro.obs.live.use_live`
    scope (so the CLI and harness can enable live mode without plumbing
    an argument through every layer); ``False`` forces it off even with
    a scope installed; ``True`` / a config / a collector turn it on.
    """
    if live is None:
        return obs_live.active_live()
    if live is False:
        return None
    if live is True:
        return obs_live.LiveCollector()
    if isinstance(live, obs_live.LiveConfig):
        return obs_live.LiveCollector(config=live)
    if isinstance(live, obs_live.LiveCollector):
        return live
    raise TypeError(
        "live must be None, a bool, a LiveConfig, or a LiveCollector; "
        f"got {type(live).__name__}"
    )


def mine_sharded(
    db: ESequenceDatabase,
    config: MinerConfig,
    *,
    workers: int = 1,
    executor: str = "auto",
    live: Union[
        None, bool, "obs_live.LiveConfig", "obs_live.LiveCollector"
    ] = None,
    shard_strategy: str = "roundrobin",
    plan: Optional[dict[str, Any]] = None,
) -> MiningResult:
    """Mine ``db`` with the sharded engine.

    Returns a result whose patterns, supports, and counters are
    identical to ``PTPMiner.from_config(config).mine(db)`` for every
    ``workers`` value (see the module docstring for why). ``executor``
    is one of :data:`EXECUTORS`; ``"auto"`` picks ``serial`` for one
    worker and ``process`` otherwise. ``live`` streams shard telemetry
    during the run (see the module docstring); the determinism guarantee
    is unaffected — live mode only changes *when* progress is visible,
    never what is mined.

    ``shard_strategy`` picks the deal (:data:`SHARD_STRATEGIES`):
    ``"predicted"`` places root candidates by forecast cost (LPT),
    reading per-root forecasts from ``plan`` — a
    :func:`repro.obs.planner.build_plan` PlanReport — when one is
    supplied, else from the static ``support * supporters`` fallback.
    Because the merge is order-independent, any strategy (with or
    without a plan, with an arbitrarily wrong plan) yields a bit-for-bit
    identical result; the strategy only moves wall time between shards.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if shard_strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"shard_strategy must be one of {SHARD_STRATEGIES}, "
            f"got {shard_strategy!r}"
        )
    resolved = (
        ("serial" if workers == 1 else "process")
        if executor == "auto"
        else executor
    )
    collector = _resolve_live(live)
    miner = PTPMiner.from_config(config)
    threshold = float(db.absolute_support(config.min_sup))
    weights = [1.0] * len(db)
    registry = obs_metrics.active_registry()
    tracer = obs_trace.active_tracer()
    cost = obs_costmodel.active_collector()
    prov = obs_provenance.active_collector()
    started = obs_clock.now()
    with obs_trace.span(
        "mine",
        miner="P-TPMiner",
        mode=config.mode,
        sequences=len(db),
        workers=workers,
        executor=resolved,
    ):
        mining_db, counters, root = miner.plan_root(db, weights, threshold)
        plan_costs: Optional[dict[str, float]] = None
        plan_labels: Optional[tuple[str, ...]] = None
        if shard_strategy == "predicted":
            if plan is not None:
                plan_costs = {
                    str(name): float(entry.get("predicted_cost", 0.0))
                    for name, entry in dict(plan.get("roots", {})).items()
                    if isinstance(entry, dict)
                }
            # Same sorted alphabet the encoder interns, so candidate
            # names line up with the plan's root names.
            plan_labels = tuple(sorted(mining_db.alphabet))
        tasks = plan_shards(
            root,
            config,
            threshold,
            workers,
            strategy=shard_strategy,
            costs=plan_costs,
            labels=plan_labels,
        )
        aggregator: Optional[obs_live.LiveAggregator] = None
        on_frame: Optional[Callable[[dict[str, Any]], None]] = None
        if collector is not None:
            aggregator = obs_live.LiveAggregator(
                collector.config,
                shard_totals={
                    task.shard: len(task.candidates) for task in tasks
                },
            )
            collector.aggregator = aggregator
            aggregator.open_log()

            def _on_frame(
                payload: dict[str, Any],
                _agg: obs_live.LiveAggregator = aggregator,
            ) -> None:
                _agg.ingest(payload)
                _agg.maybe_render()

            on_frame = _on_frame
        manager: Optional[Any] = None
        try:
            parent_span = obs_trace.current_span_id()
            with obs_trace.span("shards", count=len(tasks)):
                if not tasks:
                    shard_results: list[ShardResult] = []
                elif resolved == "serial":
                    # In-process: point the payload at this run's data.
                    _init_payload_inline(
                        mining_db,
                        weights,
                        collect_metrics=registry is not None,
                        collect_trace=tracer is not None,
                        collect_cost=cost is not None,
                        collect_provenance=prov is not None,
                        live_publish=on_frame,
                        live_interval=(
                            collector.config.interval_s
                            if collector is not None
                            else 0.5
                        ),
                    )
                    try:
                        shard_results = _run_serial(tasks)
                    finally:
                        _clear_payload()
                else:
                    live_queue: Optional[Any] = None
                    if on_frame is not None:
                        # Manager-queue proxies survive the executor's
                        # pickling initargs; plain mp.Queue does not.
                        manager = multiprocessing.Manager()
                        live_queue = manager.Queue()
                    shard_results = _run_process(
                        tasks,
                        mining_db,
                        weights,
                        workers,
                        collect_metrics=registry is not None,
                        collect_trace=tracer is not None,
                        collect_cost=cost is not None,
                        collect_provenance=prov is not None,
                        live_queue=live_queue,
                        live_interval=(
                            collector.config.interval_s
                            if collector is not None
                            else 0.5
                        ),
                        on_frame=on_frame,
                    )
            with obs_trace.span("merge", shards=len(shard_results)):
                patterns: list[PatternWithSupport] = []
                for result in sorted(shard_results, key=lambda r: r.shard):
                    patterns.extend(result.patterns)
                    counters.merge(result.counters)
                    if tracer is not None:
                        _reemit_shard_trace(tracer, result, parent_span)
                    if registry is not None and result.metrics:
                        registry.absorb_snapshot(
                            result.metrics, prefix="shard."
                        )
                    if registry is not None:
                        registry.gauge(
                            "engine.shard_elapsed_s", shard=result.shard
                        ).set(result.elapsed)
                    if cost is not None and result.cost:
                        cost.absorb(result.cost)
                    if prov is not None and result.provenance:
                        prov.absorb(result.provenance)
                patterns.sort(key=PatternWithSupport.sort_key)
        finally:
            if manager is not None:
                manager.shutdown()
            if aggregator is not None:
                aggregator.maybe_render(force=True)
                aggregator.close_log()
                if collector is not None:
                    collector.summary = aggregator.summary()
    if contracts.checking:
        counters.check_consistency()
        miner._oracle_check(db, weights, threshold, patterns)
    elapsed = obs_clock.now() - started
    return MiningResult(
        patterns=patterns,
        threshold=threshold,
        db_size=len(db),
        elapsed=elapsed,
        counters=counters,
        metrics=_run_snapshot(
            registry,
            counters,
            patterns=len(patterns),
            elapsed=elapsed,
            db_size=len(db),
            threshold=threshold,
        ),
        miner="P-TPMiner",
        params={
            **config.describe(),
            "workers": workers,
            "executor": resolved,
            "shards": len(tasks),
            "shard_strategy": shard_strategy,
        },
    )


def _init_payload_inline(
    db: ESequenceDatabase,
    weights: Sequence[float],
    *,
    collect_metrics: bool,
    collect_trace: bool,
    collect_cost: bool = False,
    collect_provenance: bool = False,
    live_publish: Optional[Callable[[dict[str, Any]], None]] = None,
    live_interval: float = 0.5,
) -> None:
    """Serial-executor payload setup (no obs silencing: same process).

    ``live_publish`` feeds frames straight to the parent aggregator —
    the serial path has no queue; the callback is invoked inline.
    """
    _WORKER_PAYLOAD["db"] = db
    _WORKER_PAYLOAD["weights"] = list(weights)
    _WORKER_PAYLOAD["collect_metrics"] = collect_metrics
    _WORKER_PAYLOAD["collect_trace"] = collect_trace
    _WORKER_PAYLOAD["collect_cost"] = collect_cost
    _WORKER_PAYLOAD["collect_provenance"] = collect_provenance
    _WORKER_PAYLOAD["live_publish"] = live_publish
    _WORKER_PAYLOAD["live_interval"] = live_interval


def _clear_payload() -> None:
    """Drop the inline payload so stale databases are not kept alive."""
    _WORKER_PAYLOAD.clear()


class ShardedMiner:
    """P-TPMiner behind the sharded engine; satisfies the Miner protocol.

    A drop-in for :class:`~repro.core.ptpminer.PTPMiner` whose
    :meth:`mine` runs the engine instead of the sequential search —
    with an identical result, per the determinism guarantee.
    """

    def __init__(
        self,
        min_sup: float = 0.1,
        *,
        workers: int = 1,
        executor: str = "auto",
        live: Union[
            None, bool, "obs_live.LiveConfig", "obs_live.LiveCollector"
        ] = None,
        shard_strategy: str = "roundrobin",
        plan: Optional[dict[str, Any]] = None,
        config: Optional[MinerConfig] = None,
        **kwargs: Any,
    ) -> None:
        if config is not None:
            if kwargs:
                raise TypeError(
                    "pass either config= or individual miner options, "
                    "not both"
                )
            self.config = config
        else:
            self.config = MinerConfig.from_kwargs(min_sup=min_sup, **kwargs)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"shard_strategy must be one of {SHARD_STRATEGIES}, "
                f"got {shard_strategy!r}"
            )
        self.workers = workers
        self.executor = executor
        self.live = live
        self.shard_strategy = shard_strategy
        self.plan = plan

    @classmethod
    def from_config(
        cls,
        config: MinerConfig,
        *,
        workers: int = 1,
        executor: str = "auto",
        live: Union[
            None, bool, "obs_live.LiveConfig", "obs_live.LiveCollector"
        ] = None,
        shard_strategy: str = "roundrobin",
        plan: Optional[dict[str, Any]] = None,
    ) -> "ShardedMiner":
        """Build from a ready-made :class:`MinerConfig`."""
        return cls(
            config=config,
            workers=workers,
            executor=executor,
            live=live,
            shard_strategy=shard_strategy,
            plan=plan,
        )

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine ``db`` through :func:`mine_sharded`."""
        return mine_sharded(
            db,
            self.config,
            workers=self.workers,
            executor=self.executor,
            live=self.live,
            shard_strategy=self.shard_strategy,
            plan=self.plan,
        )
