"""Parallel sharded mining engine.

The engine parallelizes P-TPMiner by sharding its **level-1 fan-out**:
the parent process runs the root of the search exactly once
(:meth:`~repro.core.ptpminer.PTPMiner.plan_root` — validation, point
pruning, encoding, pair tables, and the root candidate gather with full
root-node accounting), partitions the root candidates into serializable
:class:`ShardTask`s, and hands each shard to a worker that expands only
its candidates' subtrees
(:meth:`~repro.core.ptpminer.PTPMiner.search_shard`). Per-shard
patterns, :class:`~repro.core.pruning.PruneCounters`, and observability
data are then merged into a single :class:`~repro.core.ptpminer.MiningResult`.

Determinism guarantee
---------------------
The merged result's pattern list — patterns *and* supports, in the
canonical result order — is identical to the sequential miner's, for any
worker count and any shard partition. So are the merged counters: the
parent accounts the root node once, workers skip root accounting and sum
only their subtrees, and subtree accounting is independent across root
candidates, so ``parent + Σ shards`` reproduces the serial counters
exactly. ``perf compare``'s exact counter gate therefore holds with
``workers > 1``.

Executors
---------
``serial``
    Runs every shard in-process, sequentially. The default (and the
    debugging surface: pure Python stack traces, no pickling).
``process``
    Runs shards on a :class:`concurrent.futures.ProcessPoolExecutor`.
    The database is shipped once per worker via the pool initializer;
    tasks themselves stay small. This module is the **only** place in
    the repository allowed to construct a process pool (lint rule R008).

Observability merge semantics
-----------------------------
Workers run with private, freshly scoped tracers/registries (never the
parent's — a forked child must not write to inherited handles). Each
shard ships its trace events and metrics snapshot home, where the
parent:

* re-emits trace events with span ids rewritten to ``"shard<i>:<id>"``
  and orphan parents re-hung under the engine's dispatching span, so
  ``--trace`` files stay a single well-formed tree;
* absorbs metrics snapshots under the ``shard.`` prefix
  (:meth:`~repro.obs.metrics.MetricsRegistry.absorb_snapshot`):
  counters add across shards, histograms merge bound-for-bound.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro import contracts
from repro.core.config import MinerConfig
from repro.core.pruning import PruneCounters
from repro.core.ptpminer import (
    MiningResult,
    PTPMiner,
    RootCandidates,
    _run_snapshot,
)
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport
from repro.obs import clock as obs_clock
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace

__all__ = [
    "EXECUTORS",
    "ShardResult",
    "ShardTask",
    "ShardedMiner",
    "mine_sharded",
    "plan_shards",
]

#: Valid executor names (``"auto"`` resolves by worker count).
EXECUTORS = ("auto", "serial", "process")

#: One root candidate shipped to a worker:
#: ``((ext_kind, sym, pocc), (weight, (sid, ...)))``.
_TaskCandidate = tuple[tuple[int, int, int], tuple[float, tuple[int, ...]]]


@dataclass(frozen=True, slots=True)
class ShardTask:
    """One worker's slice of the level-1 fan-out. Frozen and picklable.

    The database itself is *not* part of the task — it is shipped once
    per worker process through the pool initializer; tasks carry only
    the shard's root candidates plus enough configuration to rebuild the
    miner identically.
    """

    shard: int
    num_shards: int
    config: MinerConfig
    threshold: float
    candidates: tuple[_TaskCandidate, ...]

    def candidate_map(self) -> RootCandidates:
        """Rebuild the ``candidate -> (weight, sids)`` map the search eats."""
        return {
            cand: (weight, list(sids))
            for cand, (weight, sids) in self.candidates
        }


@dataclass(slots=True)
class ShardResult:
    """What one shard sends home to be merged."""

    shard: int
    patterns: list[PatternWithSupport]
    counters: PruneCounters
    metrics: dict[str, Any] = field(default_factory=dict)
    trace_events: list[dict[str, Any]] = field(default_factory=list)
    elapsed: float = 0.0


def plan_shards(
    root: RootCandidates,
    config: MinerConfig,
    threshold: float,
    num_shards: int,
) -> list[ShardTask]:
    """Partition the root candidates into at most ``num_shards`` tasks.

    Candidates are dealt round-robin in canonical (sorted) order, which
    spreads the heavy low-index prefixes across shards. Empty shards are
    never produced; with fewer candidates than shards you get fewer
    tasks. The partition has no effect on the merged result — only on
    load balance.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    ordered = sorted(root)
    count = min(num_shards, len(ordered))
    if count == 0:
        return []
    buckets: list[list[_TaskCandidate]] = [[] for _ in range(count)]
    for index, cand in enumerate(ordered):
        weight, sids = root[cand]
        buckets[index % count].append((cand, (weight, tuple(sids))))
    return [
        ShardTask(
            shard=shard,
            num_shards=count,
            config=config,
            threshold=threshold,
            candidates=tuple(bucket),
        )
        for shard, bucket in enumerate(buckets)
    ]


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: Per-worker-process payload installed by :func:`_init_worker`.
_WORKER_PAYLOAD: dict[str, Any] = {}


def _init_worker(
    db: ESequenceDatabase,
    weights: Sequence[float],
    collect_metrics: bool,
    collect_trace: bool,
) -> None:
    """Pool initializer: receive the database once, silence inherited obs.

    A forked child inherits the parent's installed tracer / registry /
    progress reporter; writing to those copies would be lost at best and
    interleave with the parent's output at worst, so the worker starts
    observability from a clean slate and scopes its own per-shard
    collectors in :func:`_run_shard`.
    """
    obs_trace.set_tracer(None)
    obs_metrics.set_registry(None)
    obs_progress.set_reporter(None)
    _WORKER_PAYLOAD["db"] = db
    _WORKER_PAYLOAD["weights"] = list(weights)
    _WORKER_PAYLOAD["collect_metrics"] = collect_metrics
    _WORKER_PAYLOAD["collect_trace"] = collect_trace


def _run_shard(task: ShardTask) -> ShardResult:
    """Expand one shard (runs inside a worker process, or in-process)."""
    db: ESequenceDatabase = _WORKER_PAYLOAD["db"]
    weights: list[float] = _WORKER_PAYLOAD["weights"]
    collector = (
        obs_trace.TraceCollector()
        if _WORKER_PAYLOAD["collect_trace"]
        else None
    )
    registry = (
        obs_metrics.MetricsRegistry()
        if _WORKER_PAYLOAD["collect_metrics"]
        else None
    )
    miner = PTPMiner.from_config(task.config)
    started = obs_clock.now()
    with ExitStack() as stack:
        if registry is not None:
            stack.enter_context(obs_metrics.use_registry(registry))
        if collector is not None:
            stack.enter_context(obs_trace.use_tracer(collector))
        patterns, counters = miner.search_shard(
            db, weights, task.threshold, task.candidate_map()
        )
    elapsed = obs_clock.now() - started
    return ShardResult(
        shard=task.shard,
        patterns=patterns,
        counters=counters,
        metrics=registry.snapshot() if registry is not None else {},
        trace_events=collector.events if collector is not None else [],
        elapsed=elapsed,
    )


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
def _run_serial(tasks: list[ShardTask]) -> list[ShardResult]:
    """Run every shard in-process, sequentially."""
    return [_run_shard(task) for task in tasks]


def _run_process(
    tasks: list[ShardTask],
    db: ESequenceDatabase,
    weights: Sequence[float],
    workers: int,
    collect_metrics: bool,
    collect_trace: bool,
) -> list[ShardResult]:
    """Run shards on a process pool, shipping the database once per worker."""
    # The one sanctioned process-pool construction site (lint rule R008).
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)),
        initializer=_init_worker,
        initargs=(db, weights, collect_metrics, collect_trace),
    ) as pool:
        return list(pool.map(_run_shard, tasks))


def _reemit_shard_trace(
    tracer: obs_trace.Tracer,
    result: ShardResult,
    parent_span: Optional[int],
) -> None:
    """Replay a worker's span events into the parent trace.

    Span ids are rewritten to ``"shard<i>:<id>"`` strings (unique across
    shards); parent links pointing at spans the worker did not itself
    open — ``None`` roots, or stale ids inherited through ``fork`` — are
    re-hung under the engine's dispatching span.
    """
    own = {ev["span"] for ev in result.trace_events}

    def remap(span_id: Any) -> Any:
        if span_id in own:
            return f"shard{result.shard}:{span_id}"
        return parent_span

    for event in result.trace_events:
        rewritten = dict(event)
        rewritten["span"] = f"shard{result.shard}:{event['span']}"
        if "parent" in rewritten:
            rewritten["parent"] = remap(event["parent"])
        tracer.emit(rewritten)


# ----------------------------------------------------------------------
# the engine entry points
# ----------------------------------------------------------------------
def mine_sharded(
    db: ESequenceDatabase,
    config: MinerConfig,
    *,
    workers: int = 1,
    executor: str = "auto",
) -> MiningResult:
    """Mine ``db`` with the sharded engine.

    Returns a result whose patterns, supports, and counters are
    identical to ``PTPMiner.from_config(config).mine(db)`` for every
    ``workers`` value (see the module docstring for why). ``executor``
    is one of :data:`EXECUTORS`; ``"auto"`` picks ``serial`` for one
    worker and ``process`` otherwise.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    resolved = (
        ("serial" if workers == 1 else "process")
        if executor == "auto"
        else executor
    )
    miner = PTPMiner.from_config(config)
    threshold = float(db.absolute_support(config.min_sup))
    weights = [1.0] * len(db)
    registry = obs_metrics.active_registry()
    tracer = obs_trace.active_tracer()
    started = obs_clock.now()
    with obs_trace.span(
        "mine",
        miner="P-TPMiner",
        mode=config.mode,
        sequences=len(db),
        workers=workers,
        executor=resolved,
    ):
        mining_db, counters, root = miner.plan_root(db, weights, threshold)
        tasks = plan_shards(root, config, threshold, workers)
        parent_span = obs_trace.current_span_id()
        with obs_trace.span("shards", count=len(tasks)):
            if not tasks:
                shard_results: list[ShardResult] = []
            elif resolved == "serial":
                # In-process: point the payload at this run's data.
                _init_payload_inline(
                    mining_db,
                    weights,
                    collect_metrics=registry is not None,
                    collect_trace=tracer is not None,
                )
                try:
                    shard_results = _run_serial(tasks)
                finally:
                    _clear_payload()
            else:
                shard_results = _run_process(
                    tasks,
                    mining_db,
                    weights,
                    workers,
                    collect_metrics=registry is not None,
                    collect_trace=tracer is not None,
                )
        with obs_trace.span("merge", shards=len(shard_results)):
            patterns: list[PatternWithSupport] = []
            for result in sorted(shard_results, key=lambda r: r.shard):
                patterns.extend(result.patterns)
                counters.merge(result.counters)
                if tracer is not None:
                    _reemit_shard_trace(tracer, result, parent_span)
                if registry is not None and result.metrics:
                    registry.absorb_snapshot(result.metrics, prefix="shard.")
            patterns.sort(key=PatternWithSupport.sort_key)
    if contracts.checking:
        counters.check_consistency()
        miner._oracle_check(db, weights, threshold, patterns)
    elapsed = obs_clock.now() - started
    return MiningResult(
        patterns=patterns,
        threshold=threshold,
        db_size=len(db),
        elapsed=elapsed,
        counters=counters,
        metrics=_run_snapshot(
            registry,
            counters,
            patterns=len(patterns),
            elapsed=elapsed,
            db_size=len(db),
            threshold=threshold,
        ),
        miner="P-TPMiner",
        params={
            **config.describe(),
            "workers": workers,
            "executor": resolved,
            "shards": len(tasks),
        },
    )


def _init_payload_inline(
    db: ESequenceDatabase,
    weights: Sequence[float],
    *,
    collect_metrics: bool,
    collect_trace: bool,
) -> None:
    """Serial-executor payload setup (no obs silencing: same process)."""
    _WORKER_PAYLOAD["db"] = db
    _WORKER_PAYLOAD["weights"] = list(weights)
    _WORKER_PAYLOAD["collect_metrics"] = collect_metrics
    _WORKER_PAYLOAD["collect_trace"] = collect_trace


def _clear_payload() -> None:
    """Drop the inline payload so stale databases are not kept alive."""
    _WORKER_PAYLOAD.clear()


class ShardedMiner:
    """P-TPMiner behind the sharded engine; satisfies the Miner protocol.

    A drop-in for :class:`~repro.core.ptpminer.PTPMiner` whose
    :meth:`mine` runs the engine instead of the sequential search —
    with an identical result, per the determinism guarantee.
    """

    def __init__(
        self,
        min_sup: float = 0.1,
        *,
        workers: int = 1,
        executor: str = "auto",
        config: Optional[MinerConfig] = None,
        **kwargs: Any,
    ) -> None:
        if config is not None:
            if kwargs:
                raise TypeError(
                    "pass either config= or individual miner options, "
                    "not both"
                )
            self.config = config
        else:
            self.config = MinerConfig.from_kwargs(min_sup=min_sup, **kwargs)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        self.workers = workers
        self.executor = executor

    @classmethod
    def from_config(
        cls,
        config: MinerConfig,
        *,
        workers: int = 1,
        executor: str = "auto",
    ) -> "ShardedMiner":
        """Build from a ready-made :class:`MinerConfig`."""
        return cls(config=config, workers=workers, executor=executor)

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine ``db`` through :func:`mine_sharded`."""
        return mine_sharded(
            db, self.config, workers=self.workers, executor=self.executor
        )
