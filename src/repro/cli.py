"""Command-line interface: ``ptpminer``.

Subcommands
-----------
``generate``
    Produce a dataset (synthetic config or named generator) to a file.
``mine``
    Mine a database file with a chosen miner and print/save patterns.
``stats``
    Print descriptive statistics of a database file.
``perf``
    Performance baselines: ``perf run|compare|update-baseline ...`` is
    forwarded verbatim to :mod:`repro.perf.cli` (same as
    ``python -m repro.perf``).
``plan``
    Profile a dataset and forecast its shard plan without mining any
    subtree (:mod:`repro.obs.planner`): predicted per-root costs
    (ledger-calibrated with ``--ledger-dir``, static features
    otherwise), the imbalance the round-robin deal would produce, and
    the recommended LPT assignment — as markdown or (``--json``) the
    JSON consumed by ``mine --shard-strategy predicted`` tooling and
    ``report --plan``.
``report``
    Join a run's span trace, metrics snapshot, ``--live-log`` frame
    log, cost profile (``--cost``), provenance snapshot
    (``--provenance``), and shard plan (``--plan``) into one markdown
    (or JSON) run report: phase table, shard utilization/imbalance,
    prune funnel, straggler callouts, realized heaviest roots, and the
    plan-vs-actual calibration section. With only a subset of the
    inputs the report is partial and says so in a Notes section
    instead of erroring.
``history``
    Trend table over a run ledger (``mine --ledger-dir``), grouped by
    config fingerprint, with noise-aware regression flags reusing the
    perf tolerances; ``--check`` exits 1 when the latest run of any
    config regressed (for CI); ``--limit N`` shows only the most
    recent N runs per config (flags are still computed over all runs).
``diff``
    Compare two ledger runs by id (or unique id prefix): exact counter
    deltas, phase-wall deltas with tolerance verdicts, heaviest-root
    shifts. Exits 1 when the diff shows a hard regression. With
    ``--patterns`` the two arguments are provenance snapshot files
    (``mine --provenance``) or ledger run ids whose entries recorded
    one, and the diff is pattern-level: every added/removed pattern is
    attributed to the prune decision that killed it in the other run.
``explain``
    Why is this pattern in the result? Reads a provenance snapshot
    (``mine --provenance``) and reports the pattern's support set, one
    witness occurrence per supporting sequence, and its pruned
    siblings. Exits 2 with a parse hint on malformed pattern strings.
``why-not``
    Why is this pattern *not* in the result? Walks the recorded
    candidate tree: pruned-with-rule (which rule, where) vs never
    generated because a prefix died vs label point-pruned vs the
    arrangement simply never occurs. Same parse-hint contract.
``lint``
    Run the project's static analyzer (``tools/repro_lint``) over the
    checkout: per-file rules plus, by default, the deep project-graph
    passes (determinism, engine-boundary shippability, purity,
    contract coverage, suppression hygiene). ``--format text|sarif|json``
    selects the report format; see ``docs/static-analysis.md``.

Observability
-------------
``mine`` exposes the :mod:`repro.obs` layer: ``--trace FILE`` streams a
JSONL span trace, ``--metrics-out FILE`` writes the run's metrics
snapshot as JSON (render it with ``python -m repro.obs.report FILE``),
``--progress`` prints throttled search heartbeats to stderr, and the
global ``--log-level`` configures the standard-library logging root.
``--profile`` runs the per-phase profiler
(:mod:`repro.obs.profile`) and writes ``BASE.json`` (render with
``python -m repro.obs.profile``) plus ``BASE.folded`` collapsed stacks
for flamegraph tooling; ``--profile-out BASE`` picks the base path
(default ``profile``). Profiling inflates the reported runtime.
``--live`` streams per-shard progress lanes with an ETA and straggler
callouts to stderr during the run (sharded engine; see
:mod:`repro.obs.live`); ``--live-log FILE`` additionally appends every
heartbeat frame as JSONL for ``ptpminer report``.
``--cost-profile FILE`` writes the per-root / per-level search cost
profile (:mod:`repro.obs.costmodel`) as JSON,
``--provenance FILE`` (alias ``--explain-out``) records pattern
provenance and prune decisions (:mod:`repro.obs.provenance`) as JSON
for ``explain``/``why-not``/``diff --patterns``, and
``--ledger-dir DIR`` appends the run — config/environment
fingerprints, phase timings, counters, cost digest with heaviest
roots, and an order-independent digest of the result's pattern set —
to the persistent run ledger (:mod:`repro.obs.ledger`) read by
``history`` and ``diff``.

Examples
--------
.. code-block:: shell

    ptpminer generate --dataset sparse --out sparse.txt
    ptpminer mine sparse.txt --min-sup 0.05 --top 20
    ptpminer mine sparse.txt --min-sup 0.05 --miner tprefixspan --out pats.txt
    ptpminer mine sparse.txt --metrics-out metrics.json --trace trace.jsonl
    ptpminer mine sparse.txt --workers 4 --live --live-log frames.jsonl
    ptpminer report --trace trace.jsonl --live-log frames.jsonl
    ptpminer mine sparse.txt --cost-profile cost.json --ledger-dir runs/
    ptpminer plan sparse.txt --workers 4 --ledger-dir runs/
    ptpminer mine sparse.txt --workers 4 --shard-strategy predicted \\
        --ledger-dir runs/ --plan-out plan.json
    ptpminer report --plan plan.json --cost cost.json
    ptpminer mine sparse.txt --provenance prov.json
    ptpminer explain "(A+) (A-)" --provenance prov.json
    ptpminer why-not "(A+ B+) (A- B-)" --provenance prov.json
    ptpminer diff --patterns prov-a.json prov-b.json
    ptpminer history --ledger-dir runs/ --check --limit 10
    ptpminer diff 2026 2026-08 --ledger-dir runs/
    ptpminer stats sparse.txt
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Sequence
from contextlib import ExitStack
from pathlib import Path
from typing import Any

from repro import miners, obs
from repro.core.closed import filter_closed, filter_maximal
from repro.core.config import MinerConfig
from repro.core.pruning import PruningConfig
from repro.core.ptpminer import PTPMiner
from repro.core.rules import generate_rules
from repro.datagen import (
    STANDARD_DATASETS,
    generate_asl,
    generate_clinical,
    generate_library,
    generate_stock,
    standard_dataset,
)
from repro.harness.tables import render_table
from repro.io import (
    read_csv,
    read_database,
    read_jsonl,
    read_spmf,
    write_csv,
    write_database,
    write_jsonl,
    write_patterns,
    write_spmf,
)

__all__ = ["build_parser", "main"]

_GENERATORS = {
    "asl": generate_asl,
    "clinical": generate_clinical,
    "library": generate_library,
    "stock": generate_stock,
}

_READERS = {
    "text": read_database,
    "spmf": read_spmf,
    "jsonl": read_jsonl,
    "csv": read_csv,
}
_WRITERS = {
    "text": write_database,
    "spmf": write_spmf,
    "jsonl": write_jsonl,
    "csv": write_csv,
}


def _infer_format(path: str, explicit: str | None) -> str:
    if explicit:
        return explicit
    for suffix, fmt in ((".spmf", "spmf"), (".jsonl", "jsonl"),
                        (".csv", "csv")):
        if path.endswith(suffix):
            return fmt
    return "text"


def _miner_config(args: argparse.Namespace) -> MinerConfig:
    """The :class:`MinerConfig` a ``mine``-like namespace describes."""
    return MinerConfig(
        min_sup=args.min_sup,
        mode=args.mode,
        pruning=PruningConfig(
            point=not args.no_point_prune,
            pair=not args.no_pair_prune,
            postfix=not args.no_postfix_prune,
        ),
        max_size=args.max_size,
        max_span=args.max_span,
    )


def _build_miner(
    args: argparse.Namespace, plan: dict[str, Any] | None = None
) -> miners.Miner:
    """Translate CLI flags into a config and build through the registry.

    The full option surface goes into one :class:`MinerConfig`; miners
    that do not support a *non-default* option reject it eagerly with
    an error naming the miner and the flag (instead of the old
    behaviour of silently ignoring it). ``plan`` is the shard plan a
    ``--shard-strategy predicted`` run consumes.
    """
    config = _miner_config(args)
    executor = args.executor
    if _live_requested(args) and args.workers == 1 and executor == "auto":
        # Live mode needs the sharded engine even single-worker; the
        # serial executor is the identical-result in-process path.
        executor = "serial"
    return miners.build(
        args.miner,
        config,
        workers=args.workers,
        executor=executor,
        shard_strategy=args.shard_strategy,
        plan=plan,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset in _GENERATORS:
        db = _GENERATORS[args.dataset](seed=args.seed) if args.seed is not None \
            else _GENERATORS[args.dataset]()
    elif args.dataset in STANDARD_DATASETS:
        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.num_sequences is not None:
            overrides["num_sequences"] = args.num_sequences
        db = standard_dataset(args.dataset, **overrides)
    else:
        known = sorted(STANDARD_DATASETS) + sorted(_GENERATORS)
        print(f"unknown dataset {args.dataset!r}; known: {known}",
              file=sys.stderr)
        return 2
    fmt = _infer_format(args.out, args.format)
    _WRITERS[fmt](db, args.out)
    print(f"wrote {len(db)} sequences ({db.name or args.dataset}) "
          f"to {args.out} [{fmt}]")
    return 0


def _live_requested(args: argparse.Namespace) -> bool:
    """True when ``mine`` should run with the live telemetry bus on."""
    return bool(getattr(args, "live", False) or getattr(args, "live_log", None))


def _cmd_mine(args: argparse.Namespace) -> int:
    fmt = _infer_format(args.input, args.format)
    db = _READERS[fmt](args.input)
    if args.mode == "tp":
        stripped = db.without_point_events()
        if len(stripped) != len(db) or any(
            seq.has_point_events for seq in db
        ):
            print("note: point events stripped for tp mode "
                  "(use --mode htp to keep them)", file=sys.stderr)
            db = stripped
    if args.top_k and args.miner != "ptpminer":
        print("--top-k requires the ptpminer miner", file=sys.stderr)
        return 2
    if args.top_k and (args.workers != 1 or args.executor != "auto"):
        print("--top-k does not support --workers/--executor",
              file=sys.stderr)
        return 2
    if _live_requested(args):
        if args.miner != "ptpminer":
            print("--live/--live-log require the ptpminer miner",
                  file=sys.stderr)
            return 2
        if args.top_k:
            print("--live/--live-log do not support --top-k",
                  file=sys.stderr)
            return 2
    if args.cost_profile and args.miner != "ptpminer":
        print("--cost-profile requires the ptpminer miner", file=sys.stderr)
        return 2
    if args.provenance and args.miner != "ptpminer":
        print("--provenance requires the ptpminer miner", file=sys.stderr)
        return 2
    wants_plan = args.shard_strategy == "predicted" or bool(args.plan_out)
    if wants_plan and args.miner != "ptpminer":
        print("--shard-strategy predicted/--plan-out require the "
              "ptpminer miner", file=sys.stderr)
        return 2
    if wants_plan and args.top_k:
        print("--shard-strategy predicted/--plan-out do not support "
              "--top-k", file=sys.stderr)
        return 2
    plan: dict[str, Any] | None = None
    if wants_plan:
        from repro.obs import planner as obs_planner

        # The ledger (when given) calibrates the forecast from prior
        # matching runs; without history the static fallback applies.
        plan = obs_planner.build_plan(
            db,
            _miner_config(args),
            workers=args.workers,
            ledger_dir=args.ledger_dir,
        )
    if args.plan_out:
        assert plan is not None
        with open(args.plan_out, "w", encoding="utf-8") as handle:
            json.dump(plan, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(
            f"wrote shard plan to {args.plan_out} (render with "
            f"'ptpminer plan')",
            file=sys.stderr,
        )
    try:
        miner = _build_miner(args, plan)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = None
    profiler = None
    cost_collector = None
    prov_collector = None
    # Ledger entries carry a cost digest when the miner can produce one.
    collect_cost = bool(args.cost_profile or args.ledger_dir) and (
        args.miner == "ptpminer"
    )
    collect_provenance = bool(args.provenance)
    profile_base = args.profile_out or ("profile" if args.profile else None)
    with ExitStack() as stack:
        if args.metrics_out or args.ledger_dir:
            # The ledger reads phase timings off the metrics registry,
            # so --ledger-dir installs one even without --metrics-out.
            registry = obs.MetricsRegistry()
            stack.enter_context(obs.metrics.use_registry(registry))
        if collect_cost:
            cost_collector = stack.enter_context(
                obs.costmodel.use_collector()
            )
        if collect_provenance:
            from repro.obs import provenance as obs_provenance

            prov_collector = stack.enter_context(
                obs_provenance.use_collector()
            )
        if args.trace:
            writer = stack.enter_context(obs.JsonlTraceWriter.open(args.trace))
            stack.enter_context(obs.trace.use_tracer(writer))
        if profile_base is not None:
            # Installed after --trace so span events still reach the
            # JSONL writer (the profiler forwards downstream).
            from repro.obs.profile import profile_scope

            profiler = stack.enter_context(profile_scope(memory=True))
        if args.progress:
            stack.enter_context(
                obs.progress.use_reporter(
                    obs.ProgressReporter(stream=sys.stderr)
                )
            )
        if _live_requested(args):
            stack.enter_context(
                obs.live.use_live(
                    obs.LiveConfig(
                        interval_s=args.live_interval,
                        log_path=args.live_log,
                    )
                )
            )
        if args.top_k:
            assert isinstance(miner, PTPMiner)  # guarded above
            result = miner.mine_top_k(db, args.top_k)
        else:
            result = miner.mine(db)
    if args.metrics_out:
        assert registry is not None
        snapshot = result.metrics or registry.snapshot()
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote metrics snapshot to {args.metrics_out}",
              file=sys.stderr)
    if args.trace:
        print(f"wrote span trace to {args.trace}", file=sys.stderr)
    if args.cost_profile:
        assert cost_collector is not None  # guarded above
        with open(args.cost_profile, "w", encoding="utf-8") as handle:
            json.dump(
                cost_collector.snapshot(), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(f"wrote cost profile to {args.cost_profile}", file=sys.stderr)
    if args.provenance:
        assert prov_collector is not None  # guarded above
        with open(args.provenance, "w", encoding="utf-8") as handle:
            json.dump(
                prov_collector.snapshot(), handle, indent=2, sort_keys=True
            )
            handle.write("\n")
        print(
            f"wrote provenance to {args.provenance} (query with "
            f"'ptpminer explain/why-not ... --provenance "
            f"{args.provenance}')",
            file=sys.stderr,
        )
    if args.ledger_dir:
        from repro.obs import ledger as obs_ledger
        from repro.obs import provenance as obs_provenance

        assert registry is not None
        snapshot = result.metrics or registry.snapshot()
        cost_snapshot = (
            cost_collector.snapshot() if cost_collector is not None else None
        )
        plan_summary: dict[str, Any] | None = None
        calibration: dict[str, Any] | None = None
        if plan is not None:
            from repro.obs import planner as obs_planner

            plan_summary = obs_planner.plan_summary(plan)
            if cost_snapshot is not None:
                # Close the loop: predicted vs actual per-root cost, so
                # 'ptpminer history' trends forecast quality over runs.
                calibration = obs_planner.calibration_record(
                    plan, cost_snapshot, strategy=args.shard_strategy
                )
        entry = obs_ledger.build_entry(
            dataset_digest=obs_ledger.dataset_digest(db),
            miner=args.miner,
            min_sup=args.min_sup,
            mode=args.mode,
            workers=args.workers,
            wall_s=result.elapsed,
            patterns=len(result.patterns),
            counters=result.counters.as_dict(),
            phases=obs_ledger.phase_seconds(snapshot),
            cost_snapshot=cost_snapshot,
            patterns_digest=obs_provenance.patterns_digest(result.patterns),
            provenance_path=args.provenance,
            plan=plan_summary,
            calibration=calibration,
        )
        run_ledger = obs_ledger.RunLedger(args.ledger_dir)
        stored = run_ledger.append(entry)
        print(
            f"ledger: appended run {stored['run_id']} to {run_ledger.path}",
            file=sys.stderr,
        )
        if calibration is not None and calibration.get("mape") is not None:
            print(
                f"ledger: plan calibration — share-MAPE "
                f"{calibration['mape']:g}, rank corr "
                f"{calibration.get('rank_corr')}",
                file=sys.stderr,
            )
    if profiler is not None and profile_base is not None:
        from repro.obs.profile import write_profile

        report = profiler.report()
        write_profile(report, f"{profile_base}.json")
        with open(f"{profile_base}.folded", "w", encoding="utf-8") as handle:
            for line in profiler.folded_lines():
                handle.write(line + "\n")
        print(
            f"wrote profile to {profile_base}.json and "
            f"{profile_base}.folded (render: "
            f"python -m repro.obs.profile {profile_base}.json)",
            file=sys.stderr,
        )
    print(
        f"{result.miner}: {len(result.patterns)} patterns "
        f"(threshold {result.threshold:g}/{result.db_size}, "
        f"{result.elapsed:.2f}s)"
    )
    shown = result.patterns[: args.top] if args.top else result.patterns
    for item in shown:
        print(f"{item.support:>8}  {item.pattern}")
    if args.closed:
        closed = filter_closed(result)
        print(f"closed patterns: {len(closed.patterns)}")
    if args.maximal:
        maximal = filter_maximal(result)
        print(f"maximal patterns: {len(maximal.patterns)}")
    if args.rules:
        rules = generate_rules(result, min_confidence=args.rules)
        print(f"temporal rules (confidence >= {args.rules:g}):")
        for rule in rules[: args.top or None]:
            print(f"  {rule}")
    if args.out:
        write_patterns(result.patterns, args.out)
        print(f"wrote {len(result.patterns)} patterns to {args.out}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.obs import planner as obs_planner

    fmt = _infer_format(args.input, args.format)
    db = _READERS[fmt](args.input)
    if args.mode == "tp":
        stripped = db.without_point_events()
        if len(stripped) != len(db) or any(
            seq.has_point_events for seq in db
        ):
            print("note: point events stripped for tp mode "
                  "(use --mode htp to keep them)", file=sys.stderr)
            db = stripped
    config = MinerConfig(min_sup=args.min_sup, mode=args.mode)
    try:
        plan = obs_planner.build_plan(
            db,
            config,
            workers=args.workers,
            ledger_dir=args.ledger_dir,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(plan, indent=2, sort_keys=True) + "\n"
    else:
        text = obs_planner.render_plan_markdown(plan)
    _emit_text(text, args.out, "shard plan")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.perf.cli import main as perf_main

    return perf_main(args.perf_args)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.runreport import build_run_report, render_markdown

    if not (
        args.trace
        or args.metrics
        or args.live_log
        or args.cost
        or args.provenance
        or args.plan
    ):
        print("report needs at least one of --trace/--metrics/--live-log/"
              "--cost/--provenance/--plan",
              file=sys.stderr)
        return 2
    try:
        report = build_run_report(
            trace_path=args.trace,
            metrics_path=args.metrics,
            live_log_path=args.live_log,
            cost_path=args.cost,
            provenance_path=args.provenance,
            plan_path=args.plan,
            straggler_factor=args.straggler_factor,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        text = render_markdown(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote run report to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _tolerance_from_args(args: argparse.Namespace):  # type: ignore[no-untyped-def]
    """A perf Tolerance from optional --time-rtol/--time-abs overrides."""
    from repro.perf.compare import Tolerance

    overrides = {}
    if args.time_rtol is not None:
        overrides["time_rtol"] = args.time_rtol
    if args.time_abs is not None:
        overrides["time_abs_s"] = args.time_abs
    return Tolerance(**overrides)


def _emit_text(text: str, out: str | None, what: str) -> None:
    """Write ``text`` to ``out`` (noting it on stderr) or to stdout."""
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {what} to {out}", file=sys.stderr)
    else:
        print(text, end="")


def _cmd_history(args: argparse.Namespace) -> int:
    from repro.obs import ledger as obs_ledger

    run_ledger = obs_ledger.RunLedger(args.ledger_dir)
    entries = run_ledger.entries()
    report = obs_ledger.history_report(
        entries, tolerance=_tolerance_from_args(args), limit=args.limit
    )
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        text = obs_ledger.render_history_markdown(report)
    _emit_text(text, args.out, "history report")
    regressions = report["regressions"]
    if args.check and regressions:
        print(
            f"history: {len(regressions)} regression(s) in the latest "
            "runs — see the report above",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs import ledger as obs_ledger

    if args.patterns:
        return _cmd_diff_patterns(args)
    if not args.ledger_dir:
        print("error: diff needs --ledger-dir (or --patterns with "
              "provenance snapshot files)", file=sys.stderr)
        return 2
    run_ledger = obs_ledger.RunLedger(args.ledger_dir)
    try:
        entry_a = run_ledger.find(args.run_a)
        entry_b = run_ledger.find(args.run_b)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = obs_ledger.diff_entries(
        entry_a, entry_b, tolerance=_tolerance_from_args(args)
    )
    if args.json:
        text = json.dumps(diff, indent=2, sort_keys=True) + "\n"
    else:
        text = obs_ledger.render_diff_markdown(diff)
    _emit_text(text, args.out, "run diff")
    return 1 if diff["has_regressions"] else 0


_PARSE_HINT = (
    "hint: patterns are parenthesized pointsets of endpoint tokens, e.g. "
    '"(A+ B+) (A- B-)" — A+ opens interval A, A- closes it, A. is a '
    "point event, and A#2+ is the second A occurrence"
)


def _load_provenance(path: str) -> dict[str, Any]:
    """Load and sanity-check a provenance snapshot file."""
    from repro.obs import provenance as obs_provenance

    with open(path, encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if (
        not isinstance(snapshot, dict)
        or snapshot.get("kind") != "repro-provenance"
        or snapshot.get("schema") != obs_provenance.PROVENANCE_SCHEMA_VERSION
    ):
        raise ValueError(
            f"{path} is not a provenance snapshot "
            "(expected 'mine --provenance' output)"
        )
    return snapshot


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import provenance as obs_provenance

    try:
        snapshot = _load_provenance(args.provenance)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = obs_provenance.explain(snapshot, args.pattern)
    except ValueError as exc:
        print(f"error: cannot parse pattern {args.pattern!r}: {exc}",
              file=sys.stderr)
        print(_PARSE_HINT, file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        text = obs_provenance.render_explain_markdown(report)
    _emit_text(text, args.out, "explain report")
    return 0 if report["found"] else 1


def _cmd_why_not(args: argparse.Namespace) -> int:
    from repro.obs import provenance as obs_provenance

    try:
        snapshot = _load_provenance(args.provenance)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = obs_provenance.why_not(snapshot, args.pattern)
    except ValueError as exc:
        print(f"error: cannot parse pattern {args.pattern!r}: {exc}",
              file=sys.stderr)
        print(_PARSE_HINT, file=sys.stderr)
        return 2
    if args.json:
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        text = obs_provenance.render_why_not_markdown(report)
    _emit_text(text, args.out, "why-not report")
    # The pattern IS in the result: signal the caller asked the wrong
    # question (the report suggests 'ptpminer explain').
    return 1 if report["status"] == "emitted" else 0


def _resolve_provenance_ref(
    ref: str, ledger_dir: str | None
) -> dict[str, Any]:
    """Resolve a ``diff --patterns`` argument to a provenance snapshot.

    ``ref`` is tried as a snapshot file path first; otherwise it is
    treated as a ledger run id (or unique prefix) whose entry recorded
    a ``provenance_path`` (``mine --provenance ... --ledger-dir ...``).
    """
    if Path(ref).is_file():
        return _load_provenance(ref)
    if not ledger_dir:
        raise ValueError(
            f"{ref!r} is not a file; resolving it as a ledger run id "
            "needs --ledger-dir"
        )
    from repro.obs import ledger as obs_ledger

    entry = obs_ledger.RunLedger(ledger_dir).find(ref)
    path = entry.get("provenance_path")
    if not path:
        raise ValueError(
            f"ledger run {entry.get('run_id')} recorded no provenance "
            "snapshot (mine with --provenance to capture one)"
        )
    return _load_provenance(str(path))


def _cmd_diff_patterns(args: argparse.Namespace) -> int:
    from repro.obs import provenance as obs_provenance

    try:
        snapshot_a = _resolve_provenance_ref(args.run_a, args.ledger_dir)
        snapshot_b = _resolve_provenance_ref(args.run_b, args.ledger_dir)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = obs_provenance.diff_patterns(snapshot_a, snapshot_b)
    if args.json:
        text = json.dumps(diff, indent=2, sort_keys=True) + "\n"
    else:
        text = obs_provenance.render_patterns_diff_markdown(diff)
    _emit_text(text, args.out, "pattern diff")
    changed = diff["added"] or diff["removed"] or diff["changed_support"]
    return 1 if changed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        from tools.repro_lint import driver as lint_driver
    except ImportError:
        # Installed-package runs don't ship tools/; fall back to the
        # checkout layout (src/repro/cli.py -> repo root).
        root = Path(__file__).resolve().parents[2]
        if not (root / "tools" / "repro_lint").is_dir():
            print("ptpminer lint needs the repo checkout "
                  "(tools/repro_lint is not importable)", file=sys.stderr)
            return 2
        sys.path.insert(0, str(root))
        from tools.repro_lint import driver as lint_driver

    deep = not args.shallow
    try:
        violations = lint_driver.analyze_paths(args.paths, deep=deep)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"ptpminer lint: error: {exc}", file=sys.stderr)
        return 2
    report = lint_driver.render(violations, args.format, deep=deep)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"wrote lint report to {args.out}", file=sys.stderr)
    elif report:
        print(report)
    if violations:
        print(f"ptpminer lint: {len(violations)} finding(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    fmt = _infer_format(args.input, args.format)
    db = _READERS[fmt](args.input)
    row = {"dataset": db.name or args.input}
    row.update(db.stats().as_row())
    print(render_table([row]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ptpminer",
        description="Mine temporal patterns in interval-based data "
                    "(ICDE 2016 reproduction).",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="configure stdlib logging to stderr at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a dataset file")
    gen.add_argument("--dataset", required=True,
                     help="named synthetic config or asl/clinical/library/stock")
    gen.add_argument("--out", required=True, help="output path")
    gen.add_argument("--format", choices=sorted(_WRITERS),
                     help="file format (default: inferred from suffix)")
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--num-sequences", type=int, default=None)
    gen.set_defaults(func=_cmd_generate)

    mine_p = sub.add_parser("mine", help="mine a database file")
    mine_p.add_argument("input", help="database file")
    mine_p.add_argument("--format", choices=sorted(_READERS))
    mine_p.add_argument("--min-sup", type=float, default=0.1)
    mine_p.add_argument("--mode", choices=("tp", "htp"), default="tp")
    mine_p.add_argument(
        "--miner",
        choices=miners.available(),
        default="ptpminer",
    )
    mine_p.add_argument("--workers", type=int, default=1,
                        help="shard the search over N workers "
                             "(ptpminer only; identical result)")
    mine_p.add_argument("--executor",
                        choices=("auto", "serial", "process"),
                        default="auto",
                        help="how shards run with --workers: in-process "
                             "('serial', the debugging surface) or on a "
                             "process pool ('auto' picks by worker count)")
    mine_p.add_argument("--max-size", type=int, default=None,
                        help="cap pattern size in events")
    mine_p.add_argument("--max-span", type=float, default=None,
                        help="time window constraint on embeddings "
                             "(ptpminer only)")
    mine_p.add_argument("--top-k", type=int, default=None,
                        help="mine the K highest-support patterns instead "
                             "of thresholding (ptpminer only)")
    mine_p.add_argument("--rules", type=float, default=None,
                        metavar="MIN_CONF",
                        help="also derive temporal rules at this minimum "
                             "confidence")
    mine_p.add_argument("--top", type=int, default=25,
                        help="print only the top-K patterns (0 = all)")
    mine_p.add_argument("--closed", action="store_true",
                        help="also report the closed-pattern count")
    mine_p.add_argument("--maximal", action="store_true",
                        help="also report the maximal-pattern count")
    mine_p.add_argument("--out", help="write patterns to this file")
    mine_p.add_argument("--no-point-prune", action="store_true")
    mine_p.add_argument("--no-pair-prune", action="store_true")
    mine_p.add_argument("--no-postfix-prune", action="store_true")
    mine_p.add_argument("--trace", metavar="FILE", default=None,
                        help="write a JSONL span trace of the run")
    mine_p.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write the run's metrics snapshot as JSON "
                             "(render with 'python -m repro.obs.report')")
    mine_p.add_argument("--progress", action="store_true",
                        help="print throttled search heartbeats to stderr")
    mine_p.add_argument("--profile", action="store_true",
                        help="profile per phase; writes profile.json + "
                             "profile.folded (see --profile-out)")
    mine_p.add_argument("--profile-out", metavar="BASE", default=None,
                        help="base path for profile outputs "
                             "(implies --profile)")
    mine_p.add_argument("--live", action="store_true",
                        help="stream per-shard progress lanes, ETA, and "
                             "straggler callouts to stderr during the run "
                             "(ptpminer only)")
    mine_p.add_argument("--live-log", metavar="FILE", default=None,
                        help="append every live heartbeat frame as JSONL "
                             "for 'ptpminer report' (implies --live)")
    mine_p.add_argument("--live-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="throttle between live heartbeats/renders "
                             "(default 0.5)")
    mine_p.add_argument("--cost-profile", metavar="FILE", default=None,
                        help="write the per-root/per-level search cost "
                             "profile as JSON (ptpminer only)")
    mine_p.add_argument("--provenance", "--explain-out", dest="provenance",
                        metavar="FILE", default=None,
                        help="record pattern provenance and prune "
                             "decisions as JSON for 'ptpminer explain/"
                             "why-not/diff --patterns' (ptpminer only)")
    mine_p.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="append this run to the persistent JSONL run "
                             "ledger in DIR (see 'ptpminer history/diff')")
    mine_p.add_argument("--shard-strategy",
                        choices=("roundrobin", "predicted"),
                        default="roundrobin",
                        help="how root candidates are dealt to --workers "
                             "shards: blind round-robin (default) or by "
                             "forecast cost (LPT; ledger-calibrated when "
                             "--ledger-dir has matching history). The "
                             "mined result is identical either way "
                             "(ptpminer only)")
    mine_p.add_argument("--plan-out", metavar="FILE", default=None,
                        help="write the shard plan consumed/predicted for "
                             "this run as JSON (ptpminer only; see "
                             "'ptpminer plan' and 'ptpminer report "
                             "--plan')")
    mine_p.set_defaults(func=_cmd_mine)

    plan_p = sub.add_parser(
        "plan",
        help="profile a dataset and forecast the shard plan (predicted "
             "per-root costs, round-robin vs LPT imbalance) without "
             "mining the subtrees",
    )
    plan_p.add_argument("input", help="database file")
    plan_p.add_argument("--format", choices=sorted(_READERS))
    plan_p.add_argument("--min-sup", type=float, default=0.1)
    plan_p.add_argument("--mode", choices=("tp", "htp"), default="tp")
    plan_p.add_argument("--workers", type=int, default=2,
                        help="shard count the plan targets (default 2)")
    plan_p.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="calibrate forecasts from matching runs in "
                             "this ledger (mine --ledger-dir); without "
                             "it the static-feature fallback applies")
    plan_p.add_argument("--json", action="store_true",
                        help="emit the plan as JSON (the form "
                             "'report --plan' and 'mine --plan-out' use) "
                             "instead of markdown")
    plan_p.add_argument("--out", metavar="FILE", default=None,
                        help="write the plan here instead of stdout")
    plan_p.set_defaults(func=_cmd_plan)

    stats_p = sub.add_parser("stats", help="describe a database file")
    stats_p.add_argument("input", help="database file")
    stats_p.add_argument("--format", choices=sorted(_READERS))
    stats_p.set_defaults(func=_cmd_stats)

    perf_p = sub.add_parser(
        "perf",
        help="performance baselines (run/compare/update-baseline)",
    )
    perf_p.add_argument(
        "perf_args",
        nargs=argparse.REMAINDER,
        help="arguments forwarded to 'python -m repro.perf'",
    )
    perf_p.set_defaults(func=_cmd_perf)

    report_p = sub.add_parser(
        "report",
        help="unified run report from a trace, metrics snapshot, "
             "and/or live-frame log",
    )
    report_p.add_argument("--trace", metavar="FILE", default=None,
                          help="JSONL span trace (mine --trace)")
    report_p.add_argument("--metrics", metavar="FILE", default=None,
                          help="metrics snapshot JSON (mine --metrics-out)")
    report_p.add_argument("--live-log", metavar="FILE", default=None,
                          help="live frame log (mine --live-log)")
    report_p.add_argument("--cost", metavar="FILE", default=None,
                          help="cost profile JSON (mine --cost-profile): "
                               "adds the realized heaviest-roots table")
    report_p.add_argument("--provenance", metavar="FILE", default=None,
                          help="provenance snapshot (mine --provenance): "
                               "adds a pattern/prune-record summary")
    report_p.add_argument("--plan", metavar="FILE", default=None,
                          help="shard plan JSON (ptpminer plan --json / "
                               "mine --plan-out): adds predicted imbalance "
                               "and, with --cost, the plan-vs-actual "
                               "calibration section")
    report_p.add_argument("--json", action="store_true",
                          help="emit the report as JSON instead of markdown")
    report_p.add_argument("--out", metavar="FILE", default=None,
                          help="write the report here instead of stdout")
    report_p.add_argument("--straggler-factor", type=float, default=0.5,
                          metavar="K",
                          help="straggler rule: lane throughput < K x "
                               "median (default 0.5)")
    report_p.set_defaults(func=_cmd_report)

    def add_tolerance_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--time-rtol", type=float, default=None,
                         metavar="FRAC",
                         help="wall-time relative tolerance (default: the "
                              "perf layer's)")
        cmd.add_argument("--time-abs", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-time absolute floor (default: the "
                              "perf layer's)")

    history_p = sub.add_parser(
        "history",
        help="per-config trend table over a run ledger, with "
             "noise-aware regression flags",
    )
    history_p.add_argument("--ledger-dir", metavar="DIR", required=True,
                           help="ledger directory (mine --ledger-dir)")
    history_p.add_argument("--json", action="store_true",
                           help="emit the report as JSON instead of "
                                "markdown")
    history_p.add_argument("--out", metavar="FILE", default=None,
                           help="write the report here instead of stdout")
    history_p.add_argument("--check", action="store_true",
                           help="exit 1 when the latest run of any config "
                                "fingerprint regressed (for CI)")
    history_p.add_argument("--limit", type=int, default=None, metavar="N",
                           help="show only the most recent N runs per "
                                "config (flags/--check still consider "
                                "all runs)")
    add_tolerance_args(history_p)
    history_p.set_defaults(func=_cmd_history)

    diff_p = sub.add_parser(
        "diff",
        help="compare two ledger runs: exact counter deltas, phase-wall "
             "deltas, heaviest-root shifts",
    )
    diff_p.add_argument("run_a", help="run id (or unique prefix) of the "
                                      "baseline run; with --patterns, a "
                                      "provenance snapshot file or a run "
                                      "id that recorded one")
    diff_p.add_argument("run_b", help="run id (or unique prefix) of the "
                                      "run to compare (same forms as "
                                      "run_a)")
    diff_p.add_argument("--ledger-dir", metavar="DIR", default=None,
                        help="ledger directory (mine --ledger-dir); "
                             "required unless --patterns compares two "
                             "snapshot files directly")
    diff_p.add_argument("--patterns", action="store_true",
                        help="pattern-level diff of two provenance "
                             "snapshots: added/removed patterns "
                             "attributed to the prune decisions that "
                             "changed; exits 1 when the result sets "
                             "differ")
    diff_p.add_argument("--json", action="store_true",
                        help="emit the diff as JSON instead of markdown")
    diff_p.add_argument("--out", metavar="FILE", default=None,
                        help="write the diff here instead of stdout")
    add_tolerance_args(diff_p)
    diff_p.set_defaults(func=_cmd_diff)

    def add_provenance_query_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("pattern",
                         help='pattern string, e.g. "(A+ B+) (A- B-)"')
        cmd.add_argument("--provenance", metavar="FILE", required=True,
                         help="provenance snapshot (mine --provenance)")
        cmd.add_argument("--json", action="store_true",
                         help="emit the report as JSON instead of "
                              "markdown")
        cmd.add_argument("--out", metavar="FILE", default=None,
                         help="write the report here instead of stdout")

    explain_p = sub.add_parser(
        "explain",
        help="why is this pattern in the result? support set, witness "
             "occurrences, pruned siblings (needs mine --provenance)",
    )
    add_provenance_query_args(explain_p)
    explain_p.set_defaults(func=_cmd_explain)

    why_not_p = sub.add_parser(
        "why-not",
        help="why is this pattern NOT in the result? pruned-with-rule "
             "vs never-generated, from the recorded candidate tree",
    )
    add_provenance_query_args(why_not_p)
    why_not_p.set_defaults(func=_cmd_why_not)

    lint_p = sub.add_parser(
        "lint",
        help="project static analysis (determinism, boundary, purity; "
             "see docs/static-analysis.md)",
    )
    lint_p.add_argument("paths", nargs="*",
                        default=["src", "tools", "tests"],
                        help="files or directories, relative to the "
                             "checkout root (default: src tools tests)")
    lint_p.add_argument("--shallow", action="store_true",
                        help="per-file rules only; skip the "
                             "project-graph passes (R010+)")
    lint_p.add_argument("--format",
                        choices=("text", "sarif", "json"),
                        default="text",
                        help="report format (default: text)")
    lint_p.add_argument("--out", metavar="FILE", default=None,
                        help="write the report here instead of stdout")
    lint_p.set_defaults(func=_cmd_lint)
    return parser


def _configure_logging(level_name: str | None) -> None:
    if level_name is None:
        return
    logging.basicConfig(
        level=getattr(logging, level_name.upper()),
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.log_level)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
