"""Closed and maximal pattern post-filters.

A frequent pattern is **closed** when no frequent super-pattern has the
same support, and **maximal** when no frequent super-pattern exists at
all. Both filters operate on a finished mining result using the
pattern-subsumption order induced by
:meth:`TemporalPattern.contained_in` (a pattern used as the containment
target plays the role of a sequence).

These are post-filters, not dedicated closed-pattern search algorithms —
the paper mines the full frequent set, and compact summaries are a
standard downstream convenience for its "practicability" use cases.
"""

from __future__ import annotations

from repro.core.ptpminer import MiningResult
from repro.model.pattern import PatternWithSupport

__all__ = ["filter_closed", "filter_maximal"]


def _grouped_by_size(
    patterns: list[PatternWithSupport],
) -> dict[int, list[PatternWithSupport]]:
    groups: dict[int, list[PatternWithSupport]] = {}
    for item in patterns:
        groups.setdefault(item.pattern.num_tokens, []).append(item)
    return groups


def filter_closed(result: MiningResult) -> MiningResult:
    """Keep only closed patterns (same-support super-pattern free).

    Only super-patterns with strictly more tokens can subsume a pattern,
    so candidates are compared against larger patterns with equal support
    — supersets never have larger support by anti-monotonicity.
    """
    groups = _grouped_by_size(result.patterns)
    sizes = sorted(groups)
    kept: list[PatternWithSupport] = []
    for size in sizes:
        for item in groups[size]:
            subsumed = any(
                other.support == item.support
                and item.pattern.contained_in(other.pattern)
                for bigger in sizes
                if bigger > size
                for other in groups[bigger]
            )
            if not subsumed:
                kept.append(item)
    kept.sort(key=PatternWithSupport.sort_key)
    return MiningResult(
        patterns=kept,
        threshold=result.threshold,
        db_size=result.db_size,
        elapsed=result.elapsed,
        counters=result.counters,
        miner=f"{result.miner}+closed",
        params=dict(result.params, filter="closed"),
    )


def filter_maximal(result: MiningResult) -> MiningResult:
    """Keep only maximal patterns (no frequent super-pattern at all)."""
    groups = _grouped_by_size(result.patterns)
    sizes = sorted(groups)
    kept: list[PatternWithSupport] = []
    for size in sizes:
        for item in groups[size]:
            subsumed = any(
                item.pattern.contained_in(other.pattern)
                for bigger in sizes
                if bigger > size
                for other in groups[bigger]
            )
            if not subsumed:
                kept.append(item)
    kept.sort(key=PatternWithSupport.sort_key)
    return MiningResult(
        patterns=kept,
        threshold=result.threshold,
        db_size=result.db_size,
        elapsed=result.elapsed,
        counters=result.counters,
        miner=f"{result.miner}+maximal",
        params=dict(result.params, filter="maximal"),
    )
