"""Probabilistic temporal pattern mining (expected support).

``ProbabilisticTPMiner`` mines all patterns whose *expected support* over
an uncertain database (:class:`UncertainESequenceDatabase`, tuple-level
uncertainty) meets a threshold. Because expected support is a weighted
sum over supporting sequences, the miner delegates to the deterministic
P-TPMiner search with the existence probabilities as sequence weights —
same search tree, same prunings, same asymptotics.
"""

from __future__ import annotations

from typing import Optional

from repro.core.pruning import PruningConfig
from repro.core.ptpminer import MiningResult, PTPMiner
from repro.model.uncertain import UncertainESequenceDatabase

__all__ = ["ProbabilisticTPMiner"]


class ProbabilisticTPMiner:
    """Expected-support miner over uncertain interval databases.

    Parameters
    ----------
    min_esup:
        Minimum expected support: a fraction of the database's total
        probability when in ``(0, 1]``, otherwise an absolute value.
    mode, pruning, max_tokens, max_size:
        As for :class:`~repro.core.ptpminer.PTPMiner`.

    Examples
    --------
    >>> from repro.model.event import IntervalEvent
    >>> from repro.model.sequence import ESequence
    >>> udb = UncertainESequenceDatabase(
    ...     [ESequence([IntervalEvent(0, 2, "A")]),
    ...      ESequence([IntervalEvent(1, 4, "A")])],
    ...     [0.9, 0.5],
    ... )
    >>> result = ProbabilisticTPMiner(min_esup=1.2).mine(udb)
    >>> [(str(p.pattern), p.support) for p in result.patterns]
    [('(A+) (A-)', 1.4)]
    """

    def __init__(
        self,
        min_esup: float = 0.1,
        *,
        mode: str = "tp",
        pruning: PruningConfig = PruningConfig.all(),
        max_tokens: Optional[int] = None,
        max_size: Optional[int] = None,
    ) -> None:
        self.min_esup = min_esup
        self._miner = PTPMiner(
            min_sup=1.0,  # unused: mine_weighted takes the threshold directly
            mode=mode,
            pruning=pruning,
            max_tokens=max_tokens,
            max_size=max_size,
        )

    def mine(self, udb: UncertainESequenceDatabase) -> MiningResult:
        """Mine all patterns with expected support >= the threshold."""
        threshold = udb.expected_support_threshold(self.min_esup)
        result = self._miner.mine_weighted(
            udb.db, udb.probabilities, threshold
        )
        result.miner = "P-TPMiner(probabilistic)"
        result.params = dict(result.params, min_esup=self.min_esup)
        return result
