"""Projection-point machinery for P-TPMiner.

P-TPMiner performs PrefixSpan-style *pseudo-projection*: instead of
materializing projected databases, every sequence keeps a small set of
**projection states**, each describing one way the current pattern prefix
embeds into the sequence:

``pos``
    Index of the pointset matched by the pattern's *last* pointset
    (``-1`` for the empty prefix).
``pending``
    The started-but-unfinished interval occurrences as triples
    ``(label_id, pocc, socc)`` — which *sequence* occurrence each open
    *pattern* occurrence is bound to. A pattern finish token can only
    close the bound sequence occurrence, whose finish position is known in
    O(1) from :attr:`EncodedSequence.finish_pos`.
``used``
    All sequence occurrences ``(label_id, socc)`` consumed by the
    embedding so far; enforces the injectivity of the occurrence mapping.
``window_start``
    Timestamp of the first matched pointset; only set under a
    ``max_span`` time constraint.

Unlike classical PrefixSpan, keeping only the earliest match is *not*
complete here: binding a start token to a different duplicate occurrence
changes where the matching finish can appear. Each sequence therefore
keeps all distinct states (:func:`dedupe_states`).

Two structural facts keep the state sets small:

* **No dominance ordering exists to exploit.** Every embedding of the
  same prefix consumes exactly as many occurrences as the prefix
  introduces, so two states' ``used`` sets always have equal cardinality
  — one can never be a strict subset of another. Exact deduplication is
  therefore all the reduction there is.
* **Dead states are prunable.** When an embedding advances past the
  finish position of a pending occurrence (``finish_pos <= pos``), that
  occurrence can never be closed: the state supports no *complete*
  descendant pattern and P-TPMiner's postfix pruning drops it at
  projection time (see :mod:`repro.core.pruning`). Dropping it is sound
  because every embedding of a complete pattern keeps all pending
  finishes ahead of the frontier at every step.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

__all__ = ["State", "EMPTY_STATE", "dedupe_states"]

PendingEntry = tuple[int, int, int]  # (label_id, pocc, socc)
OccKey = tuple[int, int]  # (label_id, socc)


class State(NamedTuple):
    """One embedding frontier of the current prefix in one sequence."""

    pos: int
    pending: frozenset  # frozenset[PendingEntry]
    used: frozenset  # frozenset[OccKey]
    window_start: Optional[float] = None

    def pending_socc(self, label_id: int, pocc: int) -> int | None:
        """Sequence occurrence bound to pattern occurrence (label, pocc)."""
        for lab, p, socc in self.pending:
            if lab == label_id and p == pocc:
                return socc
        return None


#: The root state: nothing matched yet.
EMPTY_STATE = State(-1, frozenset(), frozenset())


def dedupe_states(states: list[State]) -> tuple[State, ...]:
    """Remove exact duplicate states, preserving first-seen order.

    Duplicates arise when several of a state's extensions land on the
    same frontier (e.g. two identical duplicate events). See the module
    docstring for why subset-dominance reduction cannot apply.
    """
    if len(states) <= 1:
        return tuple(states)
    return tuple(dict.fromkeys(states))
