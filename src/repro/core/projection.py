"""Projection-point machinery for P-TPMiner.

P-TPMiner performs PrefixSpan-style *pseudo-projection*: instead of
materializing projected databases, every sequence keeps a small set of
**projection states**, each describing one way the current pattern prefix
embeds into the sequence:

``pos``
    Index of the pointset matched by the pattern's *last* pointset
    (``-1`` for the empty prefix).
``pending``
    The started-but-unfinished interval occurrences as triples
    ``(label_id, pocc, socc)`` — which *sequence* occurrence each open
    *pattern* occurrence is bound to. A pattern finish token can only
    close the bound sequence occurrence, whose finish position is known in
    O(1) from :attr:`EncodedSequence.finish_pos`.
``used``
    All sequence occurrences ``(label_id, socc)`` consumed by the
    embedding so far; enforces the injectivity of the occurrence mapping.
``window_start``
    Timestamp of the first matched pointset; only set under a
    ``max_span`` time constraint.

Unlike classical PrefixSpan, keeping only the earliest match is *not*
complete here: binding a start token to a different duplicate occurrence
changes where the matching finish can appear. Each sequence therefore
keeps all distinct states (:func:`dedupe_states`).

Two structural facts keep the state sets small:

* **No dominance ordering exists to exploit.** Every embedding of the
  same prefix consumes exactly as many occurrences as the prefix
  introduces, so two states' ``used`` sets always have equal cardinality
  — one can never be a strict subset of another. Exact deduplication is
  therefore all the reduction there is.
* **Dead states are prunable.** When an embedding advances past the
  finish position of a pending occurrence (``finish_pos <= pos``), that
  occurrence can never be closed: the state supports no *complete*
  descendant pattern and P-TPMiner's postfix pruning drops it at
  projection time (see :mod:`repro.core.pruning`). Dropping it is sound
  because every embedding of a complete pattern keeps all pending
  finishes ahead of the frontier at every step.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro import contracts
from repro.temporal.endpoint import EncodedSequence

__all__ = ["State", "EMPTY_STATE", "check_state", "dedupe_states"]

PendingEntry = tuple[int, int, int]  # (label_id, pocc, socc)
OccKey = tuple[int, int]  # (label_id, socc)


class State(NamedTuple):
    """One embedding frontier of the current prefix in one sequence."""

    pos: int
    pending: frozenset[PendingEntry]
    used: frozenset[OccKey]
    window_start: Optional[float] = None

    def pending_socc(self, label_id: int, pocc: int) -> int | None:
        """Sequence occurrence bound to pattern occurrence (label, pocc)."""
        for lab, p, socc in self.pending:
            if lab == label_id and p == pocc:
                return socc
        return None


#: The root state: nothing matched yet.
EMPTY_STATE = State(-1, frozenset(), frozenset())


def check_state(state: State, seq: EncodedSequence) -> None:
    """Contract: one projection state is internally consistent.

    Called from the miner's projection step when runtime contracts are
    enabled (:mod:`repro.contracts`); raises
    :class:`~repro.contracts.ContractViolation` on the first violated
    invariant. Checks:

    * the frontier ``pos`` indexes a real pointset (or is ``-1``);
    * every pending (open) occurrence is recorded in ``used`` — an open
      interval was necessarily introduced by a consumed start;
    * pending bindings are injective both ways: one sequence occurrence
      cannot serve two pattern occurrences and vice versa;
    * every pending/used occurrence actually exists in the sequence.
    """
    contracts.check(
        -1 <= state.pos < len(seq.pointsets),
        "projection frontier out of range",
        details=lambda: f"pos={state.pos}, len={len(seq.pointsets)}",
    )
    pattern_side: set[OccKey] = set()
    sequence_side: set[OccKey] = set()
    for lab, pocc, socc in state.pending:
        contracts.check(
            (lab, socc) in state.used,
            "pending occurrence not marked used",
            details=lambda: f"pending=({lab}, {pocc}, {socc})",
        )
        contracts.check(
            (lab, pocc) not in pattern_side,
            "pattern occurrence bound twice in pending set",
            details=lambda: f"({lab}, {pocc})",
        )
        contracts.check(
            (lab, socc) not in sequence_side,
            "sequence occurrence bound twice in pending set",
            details=lambda: f"({lab}, {socc})",
        )
        pattern_side.add((lab, pocc))
        sequence_side.add((lab, socc))
    for lab, socc in state.used:
        contracts.check(
            (lab, socc) in seq.start_pos,
            "used occurrence missing from the sequence",
            details=lambda: f"({lab}, {socc})",
        )


def dedupe_states(
    states: list[State], stats: Optional[dict[str, int]] = None
) -> tuple[State, ...]:
    """Remove exact duplicate states, preserving first-seen order.

    Duplicates arise when several of a state's extensions land on the
    same frontier (e.g. two identical duplicate events). See the module
    docstring for why subset-dominance reduction cannot apply.

    ``stats``, when given, accumulates the number of duplicates removed
    under the ``"states_deduped"`` key — the hook the observability
    layer uses (:mod:`repro.obs.metrics`) without costing the disabled
    path anything.
    """
    if len(states) <= 1:
        return tuple(states)
    deduped = tuple(dict.fromkeys(states))
    if stats is not None and len(deduped) != len(states):
        stats["states_deduped"] = (
            stats.get("states_deduped", 0) + len(states) - len(deduped)
        )
    return deduped
