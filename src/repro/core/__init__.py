"""The paper's contribution: P-TPMiner and its companions."""

from __future__ import annotations

from repro.core.closed import filter_closed, filter_maximal
from repro.core.counting import PairTables, symbol_document_frequency
from repro.core.probabilistic import ProbabilisticTPMiner
from repro.core.pruning import PruneCounters, PruningConfig
from repro.core.ptpminer import MiningResult, PTPMiner, mine
from repro.core.rules import TemporalRule, generate_rules

__all__ = [
    "PTPMiner",
    "mine",
    "MiningResult",
    "ProbabilisticTPMiner",
    "PruningConfig",
    "PruneCounters",
    "PairTables",
    "symbol_document_frequency",
    "filter_closed",
    "filter_maximal",
    "TemporalRule",
    "generate_rules",
]
