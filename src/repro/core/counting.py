"""Support-counting primitives shared by the miners.

Provides the global frequency structures computed in one pass over the
encoded database before the search starts:

* per-symbol **document frequency** (weighted, so the probabilistic miner
  reuses the same code path with sequence weights);
* the **pair tables** behind P-TPMiner's pair pruning — for symbols
  ``a, b``:

  - ``s_pair(a, b)``: weight of sequences where some ``a`` token occurs in
    a strictly earlier pointset than some ``b`` token;
  - ``i_pair(a, b)``: weight of sequences where ``a`` and ``b`` co-occur
    inside one pointset (for ``a == b``: at least two tokens of ``a``).

Both tables are *sym-level upper bounds* on pattern support: any pattern
whose last two tokens are an ``(a, b)`` sequence-extension pair is
contained only in sequences counted by ``s_pair(a, b)`` (occurrence
pairing only removes embeddings, never adds them), so a candidate whose
pair weight is below the threshold can be discarded without projection.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro import contracts
from repro.temporal.endpoint import EncodedDatabase

__all__ = ["symbol_document_frequency", "PairTables"]


def symbol_document_frequency(
    encoded: EncodedDatabase, weights: Sequence[float]
) -> dict[int, float]:
    """Weighted number of sequences in which each symbol occurs."""
    df: dict[int, float] = {}
    for seq in encoded.sequences:
        weight = weights[seq.sid]
        seen: set[int] = set()
        for pointset in seq.pointsets:
            for sym, _occ in pointset:
                seen.add(sym)
        for sym in seen:
            df[sym] = df.get(sym, 0.0) + weight
    return df


class PairTables:
    """The S-pair / I-pair upper-bound tables used by pair pruning."""

    __slots__ = ("_s_pair", "_i_pair")

    def __init__(
        self, encoded: EncodedDatabase, weights: Sequence[float]
    ) -> None:
        s_pair: dict[tuple[int, int], float] = {}
        i_pair: dict[tuple[int, int], float] = {}
        for seq in encoded.sequences:
            weight = weights[seq.sid]
            first: dict[int, int] = {}
            last: dict[int, int] = {}
            co_occur: set[tuple[int, int]] = set()
            for idx, pointset in enumerate(seq.pointsets):
                syms_here = sorted({sym for sym, _ in pointset})
                counts_here: dict[int, int] = {}
                for sym, _ in pointset:
                    counts_here[sym] = counts_here.get(sym, 0) + 1
                for i, a in enumerate(syms_here):
                    if counts_here[a] > 1:
                        co_occur.add((a, a))
                    for b in syms_here[i + 1 :]:
                        co_occur.add((a, b))
                for sym in syms_here:
                    if sym not in first:
                        first[sym] = idx
                    last[sym] = idx
            for a, fa in first.items():
                for b, lb in last.items():
                    if lb > fa:
                        key = (a, b)
                        s_pair[key] = s_pair.get(key, 0.0) + weight
            for key in co_occur:
                i_pair[key] = i_pair.get(key, 0.0) + weight
        self._s_pair = s_pair
        self._i_pair = i_pair
        if contracts.checking:
            contracts.check(
                all(a <= b for a, b in i_pair),
                "i_pair keys must be normalized (a <= b)",
            )
            contracts.check(
                all(w >= 0 for w in s_pair.values())
                and all(w >= 0 for w in i_pair.values()),
                "pair-table weights must be non-negative",
            )

    def s_pair(self, a: int, b: int) -> float:
        """Upper bound on the support of any pattern placing ``b`` in a
        pointset strictly after ``a``."""
        return self._s_pair.get((a, b), 0.0)

    def i_pair(self, a: int, b: int) -> float:
        """Upper bound on the support of any pattern placing ``a`` and
        ``b`` in the same pointset (symmetric; normalized internally)."""
        key = (a, b) if a <= b else (b, a)
        return self._i_pair.get(key, 0.0)

    def stats(self) -> dict[str, int]:
        """Occupied cell counts (``s_pairs`` / ``i_pairs``) per table.

        Density figures for profiling: dividing by the number of
        possible cells (``n*n`` for S-pairs, ``n*(n+1)/2`` for the
        normalized I-pairs) says how constraining pair pruning can be
        on this dataset.
        """
        return {
            "s_pairs": len(self._s_pair),
            "i_pairs": len(self._i_pair),
        }
