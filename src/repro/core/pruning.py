"""Pruning configuration and accounting for P-TPMiner.

The paper's abstract promises "some pruning techniques ... to further
reduce the search space of the mining process". Our reconstruction ships
three, individually switchable for the ablation experiment (bench F5):

``point``
    *Global point pruning.* Labels whose document frequency is below the
    threshold are deleted from the database before the search: by
    anti-monotonicity no pattern that mentions them can be frequent, so
    every scan afterwards is over shorter pointsets.

``pair``
    *Pair pruning.* Using the precomputed
    :class:`~repro.core.counting.PairTables`, a candidate extension token
    is discarded — before any projection work — when its sym-level pair
    bound against the tokens already in the pattern falls below the
    threshold (S-pairs against all pattern symbols for sequence
    extensions; I-pairs against the current pointset plus S-pairs against
    earlier pointsets for itemset extensions).

``postfix``
    *Postfix pruning.* Two parts: (a) an O(1) branch bound — a branch
    whose projected database cannot reach the threshold
    (``len(proj) * max_weight < threshold``) is abandoned before
    scanning; and (b) **dead-state elimination** — a projection state
    whose frontier has moved past the finish position of a pending
    (open) occurrence can never produce a complete pattern, so it is
    dropped at projection time, shrinking every subsequent postfix scan
    (see :mod:`repro.core.projection` for the soundness argument).

:class:`PruneCounters` records how often each rule fired; the ablation
bench reports these next to the runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import contracts
from repro.obs.metrics import MetricsRegistry

__all__ = ["PRUNE_SITES", "PruningConfig", "PruneCounters"]

#: Every site at which the search kills a candidate or a node, as named
#: in provenance records (:mod:`repro.obs.provenance`) and the
#: ``why-not`` CLI. The first three are the paper's pruning techniques;
#: the rest are the configured search limits.
#:
#: ``point``
#:     A (label, flavour) fell below the threshold before the search.
#: ``pair``
#:     The candidate's sym-level pair bound fell below the threshold.
#: ``postfix_branch``
#:     The O(1) branch bound abandoned the node's whole subtree.
#: ``support``
#:     The candidate's projected support fell below the threshold.
#: ``max_size`` / ``max_tokens`` / ``max_span``
#:     A configured limit excluded the candidate (``max_span`` records
#:     only candidates discovered and then window-rejected; extensions
#:     beyond the window's postfix scan are never generated at all).
PRUNE_SITES = (
    "point",
    "pair",
    "postfix_branch",
    "support",
    "max_size",
    "max_tokens",
    "max_span",
)


@dataclass(frozen=True, slots=True)
class PruningConfig:
    """Which of the three pruning techniques are active."""

    point: bool = True
    pair: bool = True
    postfix: bool = True

    @classmethod
    def none(cls) -> "PruningConfig":
        """All prunings disabled (the TPrefixSpan-like search shape)."""
        return cls(point=False, pair=False, postfix=False)

    @classmethod
    def all(cls) -> "PruningConfig":
        """All prunings enabled (the full P-TPMiner)."""
        return cls(point=True, pair=True, postfix=True)

    def describe(self) -> str:
        """Short label like ``"point+pair"`` for benchmark tables."""
        on = [
            name
            for name, flag in (
                ("point", self.point),
                ("pair", self.pair),
                ("postfix", self.postfix),
            )
            if flag
        ]
        return "+".join(on) if on else "none"


@dataclass(slots=True)
class PruneCounters:
    """Search-effort accounting exposed on every mining result."""

    nodes_expanded: int = 0
    candidates_considered: int = 0
    candidates_frequent: int = 0
    pruned_point_labels: int = 0
    pruned_pair: int = 0
    pruned_postfix_branches: int = 0
    pruned_dead_states: int = 0
    states_created: int = 0
    patterns_emitted: int = 0
    extras: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        """Flatten to a plain dict for harness tables."""
        out = {
            "nodes_expanded": self.nodes_expanded,
            "candidates_considered": self.candidates_considered,
            "candidates_frequent": self.candidates_frequent,
            "pruned_point_labels": self.pruned_point_labels,
            "pruned_pair": self.pruned_pair,
            "pruned_postfix_branches": self.pruned_postfix_branches,
            "pruned_dead_states": self.pruned_dead_states,
            "states_created": self.states_created,
            "patterns_emitted": self.patterns_emitted,
        }
        out.update(self.extras)
        return out

    def merge(self, other: "PruneCounters") -> None:
        """Add another search's accounting into this one.

        The shard-merge seam: :mod:`repro.engine` sums the parent's
        root accounting with every worker's subtree accounting, which by
        construction reproduces the serial run's counters exactly.
        """
        self.nodes_expanded += other.nodes_expanded
        self.candidates_considered += other.candidates_considered
        self.candidates_frequent += other.candidates_frequent
        self.pruned_point_labels += other.pruned_point_labels
        self.pruned_pair += other.pruned_pair
        self.pruned_postfix_branches += other.pruned_postfix_branches
        self.pruned_dead_states += other.pruned_dead_states
        self.states_created += other.states_created
        self.patterns_emitted += other.patterns_emitted
        for key, value in other.extras.items():
            self.extras[key] = self.extras.get(key, 0) + value

    def publish(
        self, registry: MetricsRegistry, *, prefix: str = "search."
    ) -> None:
        """Absorb the totals into a metrics registry as ``search.*`` counters.

        The ``counters`` field on :class:`~repro.core.ptpminer.MiningResult`
        stays the source of truth; this mirrors the same totals into the
        observability snapshot so metrics JSON, trace attributes, and
        harness rows all agree with it by construction.
        """
        registry.absorb(
            {name: float(value) for name, value in self.as_dict().items()},
            prefix=prefix,
        )

    def check_consistency(self) -> None:
        """Contract: the counters form a coherent account of one search.

        Intended for the end of a P-TPMiner run (the baselines populate
        only a subset of the counters). No-op unless runtime contracts
        are enabled.
        """
        if not contracts.checking:
            return
        contracts.check(
            all(value >= 0 for value in self.as_dict().values()),
            "search counters must be non-negative",
            details=self.as_dict().__repr__,
        )
        contracts.check(
            self.patterns_emitted <= self.candidates_frequent,
            "every emitted pattern stems from a frequent candidate",
            details=lambda: (
                f"emitted={self.patterns_emitted}, "
                f"frequent={self.candidates_frequent}"
            ),
        )
        contracts.check(
            self.pruned_pair <= self.candidates_considered,
            "pair pruning cannot fire more often than candidates were seen",
            details=lambda: (
                f"pruned_pair={self.pruned_pair}, "
                f"considered={self.candidates_considered}"
            ),
        )
