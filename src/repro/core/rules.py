"""Temporal association rules over mined patterns.

A frequent pattern says *what* co-occurs; a **temporal rule**
``P => Q`` (with ``P`` contained in ``Q``) says *how predictive* the
smaller arrangement is of the larger one:

* ``confidence = sup(Q) / sup(P)`` — of the sequences exhibiting ``P``,
  the fraction that exhibit the full arrangement ``Q``;
* ``lift = confidence / (sup(Q \\ P-ish baseline))`` — here computed as
  ``confidence / (sup(Q) / N)``'s classical analogue using the
  consequent-side pattern's own frequency, flagging rules that beat the
  base rate.

Rules are generated from a finished :class:`MiningResult`: every
(sub-pattern, super-pattern) pair in the result with one more event on
the right-hand side forms a candidate rule, filtered by minimum
confidence. This is the standard post-processing step the
"practicability" use cases of the paper (clinical pathways, behaviour
prediction) need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ptpminer import MiningResult
from repro.model.pattern import TemporalPattern

__all__ = ["TemporalRule", "generate_rules"]


@dataclass(frozen=True, slots=True)
class TemporalRule:
    """One rule ``antecedent => consequent`` with its statistics.

    ``consequent`` is the *full* pattern (it contains the antecedent);
    reading the rule: sequences matching ``antecedent`` go on to exhibit
    the whole ``consequent`` arrangement with probability
    ``confidence``.
    """

    antecedent: TemporalPattern
    consequent: TemporalPattern
    antecedent_support: float
    consequent_support: float
    db_size: int

    @property
    def confidence(self) -> float:
        """``sup(consequent) / sup(antecedent)``."""
        if self.antecedent_support == 0:
            return 0.0
        return self.consequent_support / self.antecedent_support

    @property
    def lift(self) -> float:
        """Confidence relative to the consequent's base rate."""
        base = self.consequent_support / self.db_size if self.db_size else 0
        if base == 0:
            return 0.0
        return self.confidence / base

    def __str__(self) -> str:
        return (
            f"{self.antecedent}  =>  {self.consequent}   "
            f"(conf {self.confidence:.2f}, lift {self.lift:.2f})"
        )


def generate_rules(
    result: MiningResult,
    *,
    min_confidence: float = 0.5,
    max_rules: int | None = None,
) -> list[TemporalRule]:
    """Derive temporal rules from a mining result.

    Considers every pair of frequent patterns where the consequent has
    exactly one more event occurrence than the antecedent and contains
    it — the minimal-step rules; longer implications follow by chaining.
    Returns rules with ``confidence >= min_confidence``, sorted by
    ``(confidence, consequent support)`` descending, deterministically.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ValueError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    by_size: dict[int, list] = {}
    for item in result.patterns:
        by_size.setdefault(item.pattern.size, []).append(item)
    rules: list[TemporalRule] = []
    for size, antecedents in sorted(by_size.items()):
        consequents = by_size.get(size + 1, [])
        if not consequents:
            continue
        for small in antecedents:
            for big in consequents:
                if not small.pattern.contained_in(big.pattern):
                    continue
                rule = TemporalRule(
                    antecedent=small.pattern,
                    consequent=big.pattern,
                    antecedent_support=small.support,
                    consequent_support=big.support,
                    db_size=result.db_size,
                )
                if rule.confidence >= min_confidence:
                    rules.append(rule)
    rules.sort(
        key=lambda r: (
            -r.confidence,
            -r.consequent_support,
            str(r.consequent),
            str(r.antecedent),
        )
    )
    if max_rules is not None:
        rules = rules[:max_rules]
    return rules
