"""P-TPMiner: the paper's algorithm.

P-TPMiner discovers the two pattern types of the paper — temporal patterns
(``mode="tp"``) and hybrid temporal patterns (``mode="htp"``) — by a
depth-first, PrefixSpan-style search over the endpoint representation:

1. every e-sequence is losslessly converted to an endpoint sequence
   (:mod:`repro.temporal.endpoint`), reducing interval arrangements to
   plain sequence/itemset structure;
2. the search grows pattern prefixes token by token, by **S-extension**
   (open a new pointset) and **I-extension** (grow the current pointset in
   canonical token order), so every canonical pattern is generated exactly
   once;
3. validity is enforced *during generation*: a finish token is only ever
   appended when its interval is open in the prefix and the canonical
   duplicate-numbering constraint holds — no post-hoc validation scans
   (this is the structural advantage over TPrefixSpan);
4. support is counted incrementally through projection states
   (:mod:`repro.core.projection`); and
5. three pruning techniques (:mod:`repro.core.pruning`) cut candidates
   and branches before any projection work.

Support is *weighted*: each sequence carries a weight (1.0 by default),
and a pattern's support is the total weight of sequences containing it.
The probabilistic extension (:mod:`repro.core.probabilistic`) reuses the
identical search with existence probabilities as weights, so expected-
support mining is exactly as fast as deterministic mining — the property
bench F7 measures.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import contracts
from repro.core.config import MinerConfig
from repro.core.counting import PairTables
from repro.core.projection import EMPTY_STATE, State, check_state, dedupe_states
from repro.core.pruning import PruneCounters, PruningConfig
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport, TemporalPattern
from repro.model.sequence import ESequence
from repro.obs import clock as obs_clock
from repro.obs import costmodel as obs_costmodel
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import provenance as obs_provenance
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.temporal.endpoint import (
    FINISH,
    POINT,
    START,
    EncodedDatabase,
)

__all__ = ["PTPMiner", "MiningResult", "mine"]

# A candidate extension: (ext_kind, sym, pocc); ext_kind 0 = I, 1 = S.
_Candidate = tuple[int, int, int]

#: One gathered root candidate with its support weight and supporter sids
#: — the unit :mod:`repro.engine` shards the level-1 fan-out by.
RootCandidates = dict[_Candidate, tuple[float, list[int]]]
_I_EXT, _S_EXT = 0, 1
_EPS = 1e-9

#: Histogram bounds for candidates discovered per search node (obs only).
_CANDIDATE_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0)


def _run_snapshot(
    registry: Optional[MetricsRegistry],
    counters: PruneCounters,
    *,
    patterns: int,
    elapsed: float,
    db_size: int,
    threshold: float,
) -> dict[str, Any]:
    """Finalize one run's observability snapshot (``{}`` when obs is off).

    Mirrors the :class:`PruneCounters` totals into ``search.*`` counters
    — so the snapshot's prune accounting equals the ``counters`` field
    by construction — and records run-level gauges next to whatever the
    search already streamed into the registry.
    """
    if registry is None:
        return {}
    counters.publish(registry)
    registry.gauge("run.patterns").set(patterns)
    registry.gauge("run.elapsed_s").set(elapsed)
    registry.gauge("run.db_size").set(db_size)
    registry.gauge("run.threshold").set(threshold)
    return registry.snapshot()


@dataclass(slots=True)
class MiningResult:
    """Outcome of one mining run.

    Attributes
    ----------
    patterns:
        Complete frequent patterns with their supports, in the canonical
        result order (:meth:`PatternWithSupport.sort_key`), so results of
        different miners compare with plain ``==``.
    threshold:
        The absolute support threshold actually applied.
    db_size:
        Number of sequences mined.
    elapsed:
        Wall-clock seconds spent inside the miner.
    counters:
        Search-effort accounting (:class:`PruneCounters`).
    miner / params:
        Provenance for harness tables.
    metrics:
        Observability snapshot of the run
        (:meth:`repro.obs.metrics.MetricsRegistry.snapshot`): phase
        timings, per-depth/per-length search shape, and the ``search.*``
        mirror of ``counters``. Empty (``{}``) unless a metrics registry
        was active during the run — the zero-cost-when-off default.
    """

    patterns: list[PatternWithSupport]
    threshold: float
    db_size: int
    elapsed: float
    counters: PruneCounters
    miner: str = "P-TPMiner"
    params: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.patterns)

    def pattern_set(self) -> frozenset[TemporalPattern]:
        """The bare pattern set (for cross-miner agreement checks)."""
        return frozenset(item.pattern for item in self.patterns)

    def as_dict(self) -> dict[TemporalPattern, float]:
        """Mapping pattern -> support."""
        return {item.pattern: item.support for item in self.patterns}

    def top(self, k: int) -> list[PatternWithSupport]:
        """The ``k`` highest-support patterns."""
        return self.patterns[:k]


class PTPMiner:
    """Mine frequent temporal / hybrid temporal patterns.

    Parameters
    ----------
    min_sup:
        Relative support in ``(0, 1]`` or absolute count ``> 1``.
    mode:
        ``"tp"`` for pure interval patterns (point events are rejected —
        strip them with
        :meth:`~repro.model.database.ESequenceDatabase.without_point_events`
        first), ``"htp"`` to admit point events and mine hybrid patterns.
    pruning:
        Which pruning techniques run (default: all three).
    max_tokens:
        Optional cap on pattern length in endpoint tokens.
    max_size:
        Optional cap on pattern size in event occurrences.
    max_span:
        Optional time constraint: a sequence supports a pattern only if
        it has an embedding whose endpoints all fall within a window of
        ``max_span`` original time units. (Plain mining is
        arrangement-only; ``max_span`` re-introduces duration semantics
        for domains where "A overlaps B a year apart" is meaningless.)

    Examples
    --------
    >>> from repro.model.database import ESequenceDatabase
    >>> db = ESequenceDatabase.from_event_lists(
    ...     [[(0, 4, "A"), (2, 6, "B")], [(0, 3, "A"), (1, 5, "B")]]
    ... )
    >>> result = PTPMiner(min_sup=1.0).mine(db)
    >>> sorted(str(p.pattern) for p in result.patterns)
    ['(A+) (A-)', '(A+) (B+) (A-) (B-)', '(B+) (B-)']
    """

    def __init__(
        self,
        min_sup: float = 0.1,
        *,
        mode: str = "tp",
        pruning: PruningConfig = PruningConfig.all(),
        max_tokens: Optional[int] = None,
        max_size: Optional[int] = None,
        max_span: Optional[float] = None,
    ) -> None:
        # All argument validation lives in MinerConfig.__post_init__.
        self.config = MinerConfig(
            min_sup=min_sup,
            mode=mode,
            pruning=pruning,
            max_tokens=max_tokens,
            max_size=max_size,
            max_span=max_span,
        )

    @classmethod
    def from_config(cls, config: MinerConfig) -> "PTPMiner":
        """Build a miner from a :class:`~repro.core.config.MinerConfig`.

        P-TPMiner supports the full configuration surface, so this never
        rejects a valid config (the baselines' ``from_config`` do).
        """
        miner = cls.__new__(cls)
        miner.config = config
        return miner

    @property
    def min_sup(self) -> float:
        """Support threshold (relative in ``(0, 1]`` or absolute)."""
        return self.config.min_sup

    @property
    def mode(self) -> str:
        """``"tp"`` or ``"htp"``."""
        return self.config.mode

    @property
    def pruning(self) -> PruningConfig:
        """Active pruning techniques."""
        return self.config.pruning

    @property
    def max_tokens(self) -> Optional[int]:
        """Optional cap on pattern length in endpoint tokens."""
        return self.config.max_tokens

    @property
    def max_size(self) -> Optional[int]:
        """Optional cap on pattern size in event occurrences."""
        return self.config.max_size

    @property
    def max_span(self) -> Optional[float]:
        """Optional embedding time-window constraint."""
        return self.config.max_span

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine ``db`` with unit sequence weights."""
        threshold = float(db.absolute_support(self.min_sup))
        return self.mine_weighted(db, [1.0] * len(db), threshold)

    def mine_weighted(
        self,
        db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
    ) -> MiningResult:
        """Mine with per-sequence weights and an absolute weight threshold.

        With unit weights this is ordinary support; with existence
        probabilities it is expected support (see
        :mod:`repro.core.probabilistic`).
        """
        self._validate_weighted(db, weights, threshold)
        started = obs_clock.now()
        counters = PruneCounters()
        with obs_trace.span(
            "mine", miner="P-TPMiner", mode=self.mode, sequences=len(db)
        ):
            _, encoded, pairs = self._prepare(
                db, weights, threshold, counters
            )
            with obs_trace.span("search"):
                patterns = self._search(
                    encoded, weights, [float(threshold)], pairs, counters
                )
            patterns.sort(key=PatternWithSupport.sort_key)
        if contracts.checking:
            counters.check_consistency()
            self._oracle_check(db, weights, float(threshold), patterns)
        elapsed = obs_clock.now() - started
        return MiningResult(
            patterns=patterns,
            threshold=threshold,
            db_size=len(db),
            elapsed=elapsed,
            counters=counters,
            metrics=_run_snapshot(
                obs_metrics.active_registry(),
                counters,
                patterns=len(patterns),
                elapsed=elapsed,
                db_size=len(db),
                threshold=threshold,
            ),
            miner="P-TPMiner",
            params=self.config.describe(),
        )

    @staticmethod
    def _validate_weighted(
        db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
    ) -> None:
        """Shared input validation for weighted mining entry points."""
        if len(weights) != len(db):
            raise ValueError(
                f"got {len(weights)} weights for {len(db)} sequences"
            )
        if any(w < 0 for w in weights):
            raise ValueError("sequence weights must be non-negative")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")

    def _prepare(
        self,
        db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
        counters: PruneCounters,
        *,
        point_prune: bool = True,
    ) -> tuple[ESequenceDatabase, EncodedDatabase, Optional[PairTables]]:
        """Shared pre-search pipeline: point prune, encode, pair tables.

        Returns the (possibly point-pruned) mining database alongside
        its encoding so :meth:`plan_root` can hand the pruned database
        to shard workers, which re-encode it locally with
        ``point_prune=False`` (the parent already pruned, and already
        accounted the pruning in its counters).
        """
        db.require_mode(self.mode)
        mining_db = db
        if point_prune and self.pruning.point:
            with obs_trace.span("prune", technique="point"):
                mining_db = self._point_prune(
                    db, weights, threshold, counters
                )
        with obs_trace.span("encode"):
            encoded = EncodedDatabase(mining_db)
        if self.pruning.pair:
            with obs_trace.span("pair_tables"):
                pairs: Optional[PairTables] = PairTables(encoded, weights)
        else:
            pairs = None
        return mining_db, encoded, pairs

    # ------------------------------------------------------------------
    # sharded execution hooks (used by repro.engine)
    # ------------------------------------------------------------------
    def plan_root(
        self,
        db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
    ) -> tuple[ESequenceDatabase, PruneCounters, RootCandidates]:
        """Run the root of the search once: the parent half of sharding.

        Validates inputs, applies point pruning, and gathers the level-1
        (root) candidate extensions with full root-node accounting. The
        returned pruned database and candidate map are what
        :mod:`repro.engine` partitions into :class:`ShardTask`s; the
        returned counters are the parent's share of the final merged
        :class:`~repro.core.pruning.PruneCounters`.

        The candidate map may be empty — when the root postfix branch
        bound already proves no pattern can be frequent — in which case
        there is nothing to shard.
        """
        self._validate_weighted(db, weights, threshold)
        counters = PruneCounters()
        mining_db, encoded, pairs = self._prepare(
            db, weights, threshold, counters
        )
        plan_out: list[RootCandidates] = []
        with obs_trace.span("plan_root"):
            self._search(
                encoded,
                weights,
                [float(threshold)],
                pairs,
                counters,
                root_plan_out=plan_out,
            )
        return mining_db, counters, plan_out[0] if plan_out else {}

    def search_shard(
        self,
        mining_db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
        candidates: RootCandidates,
        *,
        on_root: Optional[
            Callable[[int, int, int, dict[str, int]], None]
        ] = None,
    ) -> tuple[list[PatternWithSupport], PruneCounters]:
        """Expand a shard of root candidates: the worker half of sharding.

        ``mining_db`` must be the (already point-pruned) database
        returned by :meth:`plan_root` and ``candidates`` a subset of its
        root candidate map. Re-encodes locally (cheap, and avoids
        shipping encoded structures across process boundaries), skips
        point pruning and root-node accounting — both already accounted
        by the parent — and returns this shard's unsorted patterns plus
        its share of the counters.

        ``on_root`` is the live-telemetry hook
        (:mod:`repro.obs.live`): when given, it is invoked after each
        root candidate's subtree completes with ``(roots_done,
        roots_total, patterns_found, cumulative_counter_totals)``. The
        candidates are then expanded one :meth:`_search` call each — in
        the same canonical sorted order the single-call search uses, and
        subtree accounting is independent across root candidates, so
        patterns and counters stay bit-for-bit identical to the
        ``on_root=None`` fast path (which itself is byte-identical to
        the pre-live code: one branch on a ``None``).
        """
        counters = PruneCounters()
        _, encoded, pairs = self._prepare(
            mining_db, weights, threshold, counters, point_prune=False
        )
        with obs_trace.span("search", shard_candidates=len(candidates)):
            if on_root is None:
                patterns = self._search(
                    encoded,
                    weights,
                    [float(threshold)],
                    pairs,
                    counters,
                    root_candidates=candidates,
                )
            else:
                patterns = []
                ordered = sorted(candidates)
                total = len(ordered)
                for done, cand in enumerate(ordered, start=1):
                    patterns.extend(
                        self._search(
                            encoded,
                            weights,
                            [float(threshold)],
                            pairs,
                            counters,
                            root_candidates={cand: candidates[cand]},
                        )
                    )
                    on_root(done, total, len(patterns), counters.as_dict())
        return patterns, counters

    def mine_top_k(
        self,
        db: ESequenceDatabase,
        k: int,
        *,
        min_size: int = 1,
        min_sup: float = 1.0,
    ) -> MiningResult:
        """Mine the ``k`` highest-support complete patterns.

        Uses dynamic threshold raising: once ``k`` qualifying patterns
        (``size >= min_size``) are on the heap, the search threshold
        jumps to the k-th best support, pruning everything that cannot
        enter the top-k. Ties at the k-th support are broken by the
        canonical result order, so the output matches the first ``k``
        rows of an exhaustive mine.

        ``min_sup`` is an absolute floor (defaults to support 1).
        """
        import heapq

        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if min_size < 1:
            raise ValueError(f"min_size must be >= 1, got {min_size}")
        started = obs_clock.now()
        counters = PruneCounters()
        weights = [1.0] * len(db)
        threshold_box = [float(min_sup)]
        heap: list[float] = []

        def on_emit(pattern: TemporalPattern, support: float) -> None:
            if pattern.size < min_size:
                return
            heapq.heappush(heap, support)
            if len(heap) > k:
                heapq.heappop(heap)
            if len(heap) == k:
                threshold_box[0] = max(threshold_box[0], heap[0])

        db.require_mode(self.mode)
        with obs_trace.span(
            "mine", miner="P-TPMiner(top-k)", mode=self.mode, k=k
        ):
            _, encoded, pairs = self._prepare(
                db, weights, threshold_box[0], counters
            )
            with obs_trace.span("search"):
                patterns = self._search(
                    encoded, weights, threshold_box, pairs, counters,
                    on_emit=on_emit,
                )
        qualifying = [
            item
            for item in patterns
            if item.pattern.size >= min_size
            and item.support + _EPS >= threshold_box[0]
        ]
        qualifying.sort(key=PatternWithSupport.sort_key)
        result = qualifying[:k]
        elapsed = obs_clock.now() - started
        return MiningResult(
            patterns=result,
            threshold=threshold_box[0],
            db_size=len(db),
            elapsed=elapsed,
            counters=counters,
            metrics=_run_snapshot(
                obs_metrics.active_registry(),
                counters,
                patterns=len(result),
                elapsed=elapsed,
                db_size=len(db),
                threshold=threshold_box[0],
            ),
            miner="P-TPMiner(top-k)",
            params={
                "k": k,
                "min_size": min_size,
                "mode": self.mode,
                "pruning": self.pruning.describe(),
                "max_span": self.max_span,
            },
        )

    # ------------------------------------------------------------------
    # runtime contracts
    # ------------------------------------------------------------------
    #: Oracle cross-check size caps: the brute-force miner is exponential
    #: in sequence length, so the pruning-soundness contract only fires on
    #: inputs it can enumerate quickly.
    _ORACLE_MAX_SEQUENCES = 16
    _ORACLE_MAX_SEQ_EVENTS = 7
    _ORACLE_MAX_TOTAL_EVENTS = 48

    def _oracle_check(
        self,
        db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
        patterns: list[PatternWithSupport],
    ) -> None:
        """Contract: pruning soundness against the brute-force oracle.

        On small unit-weight inputs, the pruned search must return
        exactly the pattern set (and supports) that exhaustive
        enumeration finds — i.e. no pruning path ever dropped a valid
        frequent pattern, and nothing spurious was emitted. Skipped when
        the input is too large to enumerate or uses features the oracle
        does not model (non-unit weights, ``max_tokens``, ``max_span``).
        """
        if self.max_tokens is not None or self.max_span is not None:
            return
        if threshold != int(threshold):
            return
        if any(weight != 1.0 for weight in weights):
            return
        num_sequences = len(db)
        if not 0 < num_sequences <= self._ORACLE_MAX_SEQUENCES:
            return
        sizes = [len(seq.events) for seq in db]
        if (
            max(sizes, default=0) > self._ORACLE_MAX_SEQ_EVENTS
            or sum(sizes) > self._ORACLE_MAX_TOTAL_EVENTS
        ):
            return
        from repro.baselines.bruteforce import BruteForceMiner

        absolute = int(threshold)
        # BruteForceMiner reads min_sup <= 1 as a relative frequency, so
        # express "absolute 1" as a fraction that ceils back to 1.
        min_sup = float(absolute) if absolute > 1 else 0.5 / num_sequences
        oracle = BruteForceMiner(
            min_sup, mode=self.mode, max_size=self.max_size
        ).mine(db)
        expected = {item.pattern: float(item.support) for item in oracle.patterns}
        actual = {item.pattern: float(item.support) for item in patterns}
        contracts.check(
            actual == expected,
            "pruned search disagrees with the brute-force oracle",
            details=lambda: (
                f"missing={sorted(str(p) for p in set(expected) - set(actual))[:5]}, "
                f"spurious={sorted(str(p) for p in set(actual) - set(expected))[:5]}, "
                "support_mismatches="
                f"{[(str(p), actual[p], expected[p]) for p in sorted(set(actual) & set(expected), key=str) if actual[p] != expected[p]][:5]}"
            ),
        )

    # ------------------------------------------------------------------
    # pruning 1: global point pruning
    # ------------------------------------------------------------------
    @staticmethod
    def _point_prune(
        db: ESequenceDatabase,
        weights: Sequence[float],
        threshold: float,
        counters: PruneCounters,
    ) -> ESequenceDatabase:
        """Delete events whose (label, flavour) cannot be frequent.

        Interval and point flavours of a label are counted separately
        because patterns reference them through different endpoint kinds.
        Sequences are kept (possibly empty) so sids stay aligned with the
        weight vector.
        """
        interval_df: dict[str, float] = {}
        point_df: dict[str, float] = {}
        for seq in db:
            weight = weights[seq.sid]
            ilabels = {ev.label for ev in seq if ev.is_interval}
            plabels = {ev.label for ev in seq if ev.is_point}
            for label in ilabels:
                interval_df[label] = interval_df.get(label, 0.0) + weight
            for label in plabels:
                point_df[label] = point_df.get(label, 0.0) + weight
        keep_interval = {
            label for label, w in interval_df.items() if w + _EPS >= threshold
        }
        keep_point = {
            label for label, w in point_df.items() if w + _EPS >= threshold
        }
        counters.pruned_point_labels = (
            len(interval_df)
            - len(keep_interval)
            + len(point_df)
            - len(keep_point)
        )
        prov = obs_provenance.active_collector()
        if prov is not None:
            # Point pruning runs once, in the parent (shard workers are
            # handed the already-pruned database), so these records are
            # never duplicated across shard snapshots.
            for label in sorted(set(interval_df) - keep_interval):
                prov.record_pruned_label(
                    label, "interval", interval_df[label], threshold
                )
            for label in sorted(set(point_df) - keep_point):
                prov.record_pruned_label(
                    label, "point", point_df[label], threshold
                )
        if counters.pruned_point_labels == 0:
            return db
        filtered = [
            ESequence(
                (
                    ev
                    for ev in seq
                    if (
                        ev.label in keep_interval
                        if ev.is_interval
                        else ev.label in keep_point
                    )
                ),
                sid=seq.sid,
            )
            for seq in db
        ]
        return ESequenceDatabase(filtered, name=db.name)

    # ------------------------------------------------------------------
    # the depth-first search
    # ------------------------------------------------------------------
    def _search(
        self,
        encoded: EncodedDatabase,
        weights: Sequence[float],
        threshold_box: list[float],
        pairs: Optional[PairTables],
        counters: PruneCounters,
        on_emit: Optional[Callable[[TemporalPattern, float], None]] = None,
        *,
        root_candidates: Optional[RootCandidates] = None,
        root_plan_out: Optional[list[RootCandidates]] = None,
    ) -> list[PatternWithSupport]:
        """Run the depth-first search; see the class docstring.

        The two keyword hooks exist for :mod:`repro.engine`'s level-1
        sharding and leave the serial path untouched:

        * ``root_plan_out`` — gather the root candidates (with full
          root-node accounting: node expansion, postfix branch bound,
          candidate counters), append them to the list, and return
          without descending. The parent process runs this once.
        * ``root_candidates`` — skip root gathering *and* root-node
          accounting, and expand exactly the given candidates. A worker
          runs this on its shard of the parent's plan, so summing the
          parent's and all shards' counters reproduces the serial run's
          counters bit for bit.
        """
        sequences = encoded.sequences
        htp = self.mode == "htp"
        postfix_prune = self.pruning.postfix
        max_span = self.max_span
        max_weight = max(weights, default=0.0)
        results: list[PatternWithSupport] = []

        # Observability: one lookup per search; every per-node recording
        # site below is guarded by a single local check, so the disabled
        # path costs one branch (same discipline as repro.contracts).
        registry = obs_metrics.active_registry()
        tracer = obs_trace.active_tracer()
        progress = obs_progress.active_reporter()
        cost = obs_costmodel.active_collector()
        prov = obs_provenance.active_collector()
        # The level-1 root token whose subtree the search is currently
        # inside — the provenance records' attribution key. A one-cell
        # list so the dfs closure can rebind it without ``nonlocal``.
        prov_root = [""]
        obs_on = registry is not None or tracer is not None
        obs_span = obs_trace.span
        states_by_depth: dict[int, int] = {}
        patterns_by_length: dict[int, int] = {}
        candidates_by_ext = [0, 0]
        pruned_by_ext = [0, 0]
        dedupe_stats: Optional[dict[str, int]] = {} if obs_on else None

        # Pattern state, mutated along the DFS and restored on backtrack.
        pointsets: list[list[tuple[int, int]]] = []
        next_occ: dict[int, int] = {}
        open_start_ps: dict[tuple[int, int], int] = {}  # (lab,pocc)->ps idx
        num_tokens = 0
        num_occurrences = 0

        def allowed_finish(lab: int, pocc: int) -> bool:
            """Canonical duplicate rule: close lower same-pointset occs first."""
            my_ps = open_start_ps[(lab, pocc)]
            for (olab, opocc), ops in open_start_ps.items():
                if olab == lab and opocc < pocc and ops == my_ps:
                    return False
            return True

        def make_pair_ok() -> Optional[Callable[[_Candidate], bool]]:
            """Pair pruning: sym-level upper bounds vs pattern symbols.

            The pattern's symbol sets are hoisted out here (once per
            search node) so the per-candidate check is a few dict
            lookups.
            """
            if pairs is None or not pointsets:
                return None
            all_syms = frozenset(s for ps in pointsets for s, _ in ps)
            current_syms = frozenset(s for s, _ in pointsets[-1])
            earlier_syms = frozenset(
                s for ps in pointsets[:-1] for s, _ in ps
            )
            s_pair = pairs.s_pair
            i_pair = pairs.i_pair

            def pair_ok(cand: _Candidate) -> bool:
                threshold = threshold_box[0]
                ext, sym, _pocc = cand
                if ext == _S_EXT:
                    return all(
                        s_pair(a, sym) + _EPS >= threshold for a in all_syms
                    )
                if not all(
                    i_pair(a, sym) + _EPS >= threshold for a in current_syms
                ):
                    return False
                return all(
                    s_pair(a, sym) + _EPS >= threshold for a in earlier_syms
                )

            return pair_ok

        def decode_pattern() -> TemporalPattern:
            return TemporalPattern(
                (
                    (encoded.decode_token((sym, pocc)) for sym, pocc in ps)
                    for ps in pointsets
                ),
                validate=False,
            )

        def decode_extended(cand: _Candidate) -> str:
            """Canonical string of the pattern ``cand`` would extend to.

            Provenance keys killed candidates by the pattern prefix they
            would have reached, so ``why-not`` can look a queried
            pattern's generation prefixes straight up in the snapshot.
            """
            ext, sym, pocc = cand
            extended = [list(ps) for ps in pointsets]
            if ext == _S_EXT or not extended:
                extended.append([(sym, pocc)])
            else:
                extended[-1].append((sym, pocc))
            return str(
                TemporalPattern(
                    (
                        (encoded.decode_token(tok) for tok in ps)
                        for ps in extended
                    ),
                    validate=False,
                )
            )

        def cand_root(cand: _Candidate) -> str:
            """Root attribution for a candidate killed at this node."""
            if pointsets:
                return prov_root[0]
            return str(encoded.decode_token((cand[1], cand[2])))

        def gather_candidates(
            proj: list[tuple[int, tuple[State, ...]]],
            last_token: Optional[tuple[int, int]],
        ) -> dict[_Candidate, tuple[float, list[int]]]:
            """Phase 1: one scan yielding candidate -> (weight, sids)."""
            weight_of: dict[_Candidate, float] = {}
            sids_of: dict[_Candidate, list[int]] = {}
            pair_ok = make_pair_ok()
            # Pair pruning applies per candidate, between discovery and
            # accumulation; the pattern-side symbol sets are hoisted in
            # make_pair_ok() so each check is a handful of dict lookups,
            # cached per candidate for the node.
            pair_cache: dict[_Candidate, bool] = {}
            # Provenance: candidates rejected by the max_span window
            # during the scan. Recorded after the scan, minus any that
            # another state *did* discover (those were generated).
            span_skipped: Optional[set[_Candidate]] = (
                set() if prov is not None and max_span is not None else None
            )
            for sid, states in proj:
                seq = sequences[sid]
                seq_pointsets = seq.pointsets
                found: set[_Candidate] = set()
                for st in states:
                    pending_by_socc = {
                        (lab, socc): pocc for lab, pocc, socc in st.pending
                    }
                    used = st.used
                    pos = st.pos
                    # --- I-extensions in the current pointset -----------
                    if last_token is not None and pos >= 0:
                        for sym, socc in seq_pointsets[pos]:
                            kind = sym % 3
                            lab = sym // 3
                            if kind == FINISH:
                                pocc = pending_by_socc.get((lab, socc))
                                if pocc is None:
                                    continue
                                if (sym, pocc) <= last_token:
                                    continue
                                if not allowed_finish(lab, pocc):
                                    continue
                                found.add((_I_EXT, sym, pocc))
                            elif kind == POINT and not htp:
                                continue
                            else:
                                pocc = next_occ.get(lab, 0) + 1
                                if (sym, pocc) <= last_token:
                                    continue
                                if (lab, socc) in used:
                                    continue
                                if (
                                    max_span is not None
                                    and kind == START
                                    and seq.times[seq.finish_pos[(lab, socc)]]
                                    - st.window_start
                                    > max_span + _EPS
                                ):
                                    if span_skipped is not None:
                                        span_skipped.add((_I_EXT, sym, pocc))
                                    continue
                                found.add((_I_EXT, sym, pocc))
                    # --- S-extensions in the postfix --------------------
                    limit = (
                        st.window_start + max_span
                        if max_span is not None and st.window_start is not None
                        else None
                    )
                    for pos2 in range(pos + 1, len(seq_pointsets)):
                        if limit is not None and seq.times[pos2] > limit + _EPS:
                            break
                        for sym, socc in seq_pointsets[pos2]:
                            kind = sym % 3
                            lab = sym // 3
                            if kind == FINISH:
                                pocc = pending_by_socc.get((lab, socc))
                                if pocc is None:
                                    continue
                                if not allowed_finish(lab, pocc):
                                    continue
                                found.add((_S_EXT, sym, pocc))
                            elif kind == POINT and not htp:
                                continue
                            else:
                                if (lab, socc) in used:
                                    continue
                                if max_span is not None and kind == START:
                                    wstart = (
                                        st.window_start
                                        if st.window_start is not None
                                        else seq.times[pos2]
                                    )
                                    finish_time = seq.times[
                                        seq.finish_pos[(lab, socc)]
                                    ]
                                    if finish_time - wstart > max_span + _EPS:
                                        if span_skipped is not None:
                                            span_skipped.add(
                                                (
                                                    _S_EXT,
                                                    sym,
                                                    next_occ.get(lab, 0) + 1,
                                                )
                                            )
                                        continue
                                pocc = next_occ.get(lab, 0) + 1
                                found.add((_S_EXT, sym, pocc))
                weight = weights[sid]
                for cand in found:
                    keep = pair_cache.get(cand)
                    if keep is None:
                        counters.candidates_considered += 1
                        keep = pair_ok(cand) if pair_ok is not None else True
                        pair_cache[cand] = keep
                        if not keep:
                            counters.pruned_pair += 1
                            if obs_on:
                                pruned_by_ext[cand[0]] += 1
                            if prov is not None:
                                prov.record_pruned(
                                    decode_extended(cand),
                                    site="pair",
                                    level=num_tokens + 1,
                                    root=cand_root(cand),
                                    threshold=threshold_box[0],
                                )
                    if not keep:
                        continue
                    weight_of[cand] = weight_of.get(cand, 0.0) + weight
                    sids_of.setdefault(cand, []).append(sid)
            if prov is not None and span_skipped:
                # Candidates no state discovered at all: window-rejected
                # everywhere, so the search never generated them.
                for cand in sorted(span_skipped):
                    if cand not in pair_cache:
                        prov.record_pruned(
                            decode_extended(cand),
                            site="max_span",
                            level=num_tokens + 1,
                            root=cand_root(cand),
                        )
            return {
                cand: (weight_of[cand], sids_of[cand]) for cand in weight_of
            }

        def project(
            proj_map: dict[int, tuple[State, ...]],
            cand: _Candidate,
            sids: list[int],
        ) -> list[tuple[int, tuple[State, ...]]]:
            """Phase 2: build the projected states for one candidate."""
            ext, sym, pocc = cand
            kind = sym % 3
            lab = sym // 3
            new_proj: list[tuple[int, tuple[State, ...]]] = []
            for sid in sids:
                seq = sequences[sid]
                seq_pointsets = seq.pointsets
                new_states: list[State] = []
                for st in proj_map[sid]:
                    pending_by_socc = {
                        (l, socc): p for l, p, socc in st.pending
                    }
                    if ext == _I_EXT:
                        positions = (st.pos,) if st.pos >= 0 else ()
                        limit = None
                    else:
                        positions = range(st.pos + 1, len(seq_pointsets))
                        limit = (
                            st.window_start + max_span
                            if max_span is not None
                            and st.window_start is not None
                            else None
                        )
                    finish_of = seq.finish_pos
                    for pos2 in positions:
                        if (
                            limit is not None
                            and seq.times[pos2] > limit + _EPS
                        ):
                            break
                        if max_span is not None:
                            wstart = (
                                st.window_start
                                if st.window_start is not None
                                else seq.times[pos2]
                            )
                        else:
                            wstart = None
                        for s2, socc in seq_pointsets[pos2]:
                            if s2 != sym:
                                continue
                            if kind == FINISH:
                                if pending_by_socc.get((lab, socc)) != pocc:
                                    continue
                                pending = st.pending - {(lab, pocc, socc)}
                                used = st.used
                            else:
                                if (lab, socc) in st.used:
                                    continue
                                if (
                                    max_span is not None
                                    and kind == START
                                    and seq.times[finish_of[(lab, socc)]]
                                    - wstart
                                    > max_span + _EPS
                                ):
                                    continue
                                pending = (
                                    st.pending | {(lab, pocc, socc)}
                                    if kind == START
                                    else st.pending
                                )
                                used = st.used | {(lab, socc)}
                            # Postfix pruning (dead-state elimination):
                            # an embedding that moved strictly past a
                            # pending finish can never yield a complete
                            # pattern (a finish AT pos2 is still
                            # reachable by I-extension).
                            if (
                                postfix_prune
                                and ext == _S_EXT
                                and pending
                                and any(
                                    finish_of[(plab, psocc)] < pos2
                                    for plab, _p, psocc in pending
                                )
                            ):
                                counters.pruned_dead_states += 1
                                continue
                            new_states.append(
                                State(pos2, pending, used, wstart)
                            )
                deduped = dedupe_states(new_states, dedupe_stats)
                if contracts.checking:
                    for checked in deduped:
                        check_state(checked, seq)
                counters.states_created += len(deduped)
                if deduped:
                    new_proj.append((sid, deduped))
            return new_proj

        def dfs(
            proj: list[tuple[int, tuple[State, ...]]],
            last_token: Optional[tuple[int, int]],
        ) -> None:
            nonlocal num_tokens, num_occurrences
            # Sharded roots skip gathering AND root-node accounting: the
            # parent process already did both during plan_root().
            at_root = last_token is None
            if at_root and root_candidates is not None:
                candidates = root_candidates
            else:
                counters.nodes_expanded += 1
                if progress is not None:
                    progress.tick(
                        depth=num_tokens,
                        patterns=counters.patterns_emitted,
                        candidates=counters.candidates_considered,
                        pruned=counters.pruned_pair,
                    )
                if postfix_prune:
                    # O(1) branch bound: at most len(proj) sequences of at
                    # most max_weight each can support any descendant.
                    if len(proj) * max_weight + _EPS < threshold_box[0]:
                        counters.pruned_postfix_branches += 1
                        if prov is not None and num_tokens > 0:
                            prov.record_pruned(
                                str(decode_pattern()),
                                site="postfix_branch",
                                level=num_tokens,
                                root=prov_root[0],
                                support=len(proj) * max_weight,
                                threshold=threshold_box[0],
                            )
                        return
                if (
                    self.max_tokens is not None
                    and num_tokens >= self.max_tokens
                ):
                    if prov is not None and num_tokens > 0:
                        prov.record_pruned(
                            str(decode_pattern()),
                            site="max_tokens",
                            level=num_tokens,
                            root=prov_root[0],
                        )
                    return
                if obs_on:
                    with obs_span("extend", depth=num_tokens):
                        candidates = gather_candidates(proj, last_token)
                    for obs_cand in candidates:
                        candidates_by_ext[obs_cand[0]] += 1
                    if registry is not None:
                        registry.histogram(
                            "search.candidates_per_node",
                            buckets=_CANDIDATE_BUCKETS,
                        ).observe(len(candidates))
                else:
                    candidates = gather_candidates(proj, last_token)
                if cost is not None:
                    # Funnel rows are keyed by *candidate* level (= the
                    # pattern length an extension would reach), so a
                    # node at depth d feeds row d+1 — the same row its
                    # frequent survivors and emitted patterns land in.
                    cost.record_node(num_tokens + 1, len(candidates))
            if at_root and root_plan_out is not None:
                root_plan_out.append(candidates)
                return
            proj_map = dict(proj)
            for cand in sorted(candidates):
                weight, sids = candidates[cand]
                if weight + _EPS < threshold_box[0]:
                    if prov is not None:
                        prov.record_pruned(
                            decode_extended(cand),
                            site="support",
                            level=num_tokens + 1,
                            root=cand_root(cand),
                            support=_tidy(weight),
                            threshold=threshold_box[0],
                        )
                    continue
                ext, sym, pocc = cand
                kind = sym % 3
                lab = sym // 3
                if (
                    self.max_size is not None
                    and kind != FINISH
                    and num_occurrences >= self.max_size
                ):
                    if prov is not None:
                        prov.record_pruned(
                            decode_extended(cand),
                            site="max_size",
                            level=num_tokens + 1,
                            root=cand_root(cand),
                        )
                    continue
                if prov is not None and at_root:
                    prov_root[0] = str(encoded.decode_token((sym, pocc)))
                if cost is not None:
                    if at_root:
                        # Root attribution brackets the whole subtree:
                        # counter deltas and wall time from here to the
                        # end of the backtrack. Each root is expanded
                        # exactly once (in one shard, or serially), so
                        # merged profiles are unions, never sums.
                        root_wall_t0 = obs_clock.now()
                        root_counters_t0 = counters.as_dict()
                    cost.record_frequent(num_tokens + 1)
                counters.candidates_frequent += 1
                if obs_on:
                    with obs_span(
                        "project",
                        ext="I" if ext == _I_EXT else "S",
                        depth=num_tokens + 1,
                    ):
                        new_proj = project(proj_map, cand, sids)
                    depth = num_tokens + 1
                    states_by_depth[depth] = states_by_depth.get(
                        depth, 0
                    ) + sum(len(states) for _sid, states in new_proj)
                else:
                    new_proj = project(proj_map, cand, sids)
                # --- apply the extension to the pattern state ----------
                if ext == _S_EXT:
                    pointsets.append([(sym, pocc)])
                else:
                    pointsets[-1].append((sym, pocc))
                num_tokens += 1
                if kind == START:
                    next_occ[lab] = pocc
                    open_start_ps[(lab, pocc)] = len(pointsets) - 1
                    num_occurrences += 1
                elif kind == POINT:
                    next_occ[lab] = pocc
                    num_occurrences += 1
                else:
                    del open_start_ps[(lab, pocc)]
                if not open_start_ps:
                    counters.patterns_emitted += 1
                    if cost is not None:
                        cost.record_pattern(num_tokens)
                    if obs_on:
                        patterns_by_length[num_tokens] = (
                            patterns_by_length.get(num_tokens, 0) + 1
                        )
                    pattern = decode_pattern()
                    if contracts.checking:
                        _check_emitted_pattern(pattern, num_tokens)
                    results.append(
                        PatternWithSupport(pattern, _tidy(weight))
                    )
                    if prov is not None:
                        # Every supporter survives projection of a
                        # complete pattern (no pending occurrence, so
                        # dead-state elimination never fires), hence
                        # new_proj carries the full support set; the
                        # first state's used-set is one concrete
                        # embedding — the witness.
                        supp_sids = [s for s, _sts in new_proj]
                        if contracts.checking:
                            contracts.check(
                                abs(
                                    sum(weights[s] for s in supp_sids)
                                    - weight
                                )
                                <= 1e-6,
                                "recorded support set disagrees with the "
                                "reported support",
                                details=lambda: (
                                    f"{pattern}: sids={supp_sids}, "
                                    f"support={weight}"
                                ),
                            )
                        prov.record_emitted(
                            str(pattern),
                            _tidy(weight),
                            supp_sids,
                            {
                                s: [
                                    (encoded.labels[wlab], wsocc)
                                    for wlab, wsocc in sts[0].used
                                ]
                                for s, sts in new_proj
                            },
                            root=prov_root[0],
                            level=num_tokens,
                        )
                    if on_emit is not None:
                        on_emit(pattern, weight)
                dfs(new_proj, (sym, pocc))
                # --- backtrack ------------------------------------------
                if kind == START:
                    del open_start_ps[(lab, pocc)]
                    if pocc > 1:
                        next_occ[lab] = pocc - 1
                    else:
                        del next_occ[lab]
                    num_occurrences -= 1
                elif kind == POINT:
                    if pocc > 1:
                        next_occ[lab] = pocc - 1
                    else:
                        del next_occ[lab]
                    num_occurrences -= 1
                else:
                    # Re-open the interval: its start token is still in the
                    # pattern (only the finish token is being retracted).
                    open_start_ps[(lab, pocc)] = _find_start_ps(
                        pointsets, lab * 3 + START, pocc
                    )
                num_tokens -= 1
                if ext == _S_EXT:
                    pointsets.pop()
                else:
                    pointsets[-1].pop()
                if cost is not None and at_root:
                    cost.record_root(
                        str(encoded.decode_token((sym, pocc))),
                        obs_clock.now() - root_wall_t0,
                        root_counters_t0,
                        counters.as_dict(),
                    )

        root = [
            (seq.sid, (EMPTY_STATE,))
            for seq in sequences
            if seq.pointsets and weights[seq.sid] > 0
        ]
        dfs(root, None)
        if progress is not None:
            progress.finish(
                depth=0,
                patterns=counters.patterns_emitted,
                candidates=counters.candidates_considered,
                pruned=counters.pruned_pair,
            )
        if registry is not None:
            for depth, touched in sorted(states_by_depth.items()):
                registry.counter(
                    "search.states_by_depth", depth=depth
                ).inc(touched)
            for length, count in sorted(patterns_by_length.items()):
                registry.counter(
                    "search.patterns_by_length", tokens=length
                ).inc(count)
            for ext_kind, ext_name in ((_I_EXT, "I"), (_S_EXT, "S")):
                registry.counter("search.candidates", ext=ext_name).inc(
                    candidates_by_ext[ext_kind]
                )
                registry.counter("search.pruned_pair", ext=ext_name).inc(
                    pruned_by_ext[ext_kind]
                )
            if dedupe_stats:
                registry.counter("search.states_deduped").inc(
                    dedupe_stats.get("states_deduped", 0)
                )
        return results


def _check_emitted_pattern(pattern: TemporalPattern, num_tokens: int) -> None:
    """Contract: an emitted pattern is well-formed, complete, canonical.

    Validity-during-generation means the search should never need a
    post-hoc validation scan — this check proves it keeps that promise
    whenever runtime contracts are enabled.
    """
    try:
        TemporalPattern(pattern.pointsets, validate=True)
    except ValueError as exc:
        raise contracts.ContractViolation(
            f"emitted malformed pattern {pattern}: {exc}"
        ) from exc
    contracts.check(
        pattern.is_complete,
        "emitted pattern has unfinished intervals",
        details=lambda: str(pattern),
    )
    contracts.check(
        pattern.num_tokens == num_tokens,
        "pattern token bookkeeping out of sync with the search",
        details=lambda: f"{pattern} vs num_tokens={num_tokens}",
    )
    contracts.check(
        pattern.is_canonical,
        "emitted pattern is not in canonical form",
        details=lambda: str(pattern),
    )


def _find_start_ps(
    pointsets: list[list[tuple[int, int]]], start_sym: int, pocc: int
) -> int:
    """Locate the pattern pointset holding start token (start_sym, pocc)."""
    for idx, ps in enumerate(pointsets):
        if (start_sym, pocc) in ps:
            return idx
    raise AssertionError("start token missing from pattern state")


def _tidy(weight: float) -> float:
    """Render integer-valued supports as ints for readable results."""
    rounded = round(weight)
    return rounded if abs(weight - rounded) < 1e-9 else weight


def mine(
    db: ESequenceDatabase,
    min_sup: Optional[float] = None,
    *,
    config: Optional[MinerConfig] = None,
    workers: int = 1,
    **kwargs: Any,
) -> MiningResult:
    """Convenience one-call API: ``mine(db, 0.05)``.

    Accepts either a ready-made :class:`~repro.core.config.MinerConfig`
    (``mine(db, config=cfg)``) or keyword options that build one
    (``mine(db, 0.05, mode="htp")``); unknown keywords fail eagerly with
    a ``TypeError`` naming the valid options. ``workers > 1`` dispatches
    to the sharded engine (:func:`repro.engine.mine_sharded`), which
    returns the exact serial pattern set and counters.
    """
    if config is not None:
        if min_sup is not None or kwargs:
            raise TypeError(
                "pass either config= or individual miner options, not both"
            )
    else:
        if min_sup is not None:
            kwargs["min_sup"] = min_sup
        config = MinerConfig.from_kwargs(**kwargs)
    if workers == 1:
        return PTPMiner.from_config(config).mine(db)
    from repro.engine import mine_sharded

    return mine_sharded(db, config, workers=workers)
