"""Unified, serializable miner configuration.

Every miner in this repository — :class:`~repro.core.ptpminer.PTPMiner`
and the four baselines — historically exposed an ad-hoc constructor
signature and re-implemented the same argument validation. This module
hoists all of that into one **frozen, picklable** value object:

* :class:`MinerConfig` carries the complete mining-semantics surface
  (``min_sup``, ``mode``, ``pruning``, ``max_tokens``, ``max_size``,
  ``max_span``) and validates every field eagerly in
  ``__post_init__`` — a bad configuration fails at construction time,
  not halfway into a mining run;
* being frozen and built only from immutable parts, a config can be
  hashed, compared, and shipped across process boundaries unchanged —
  the property :mod:`repro.engine` relies on to describe shard work;
* miners that support only a subset of the surface (the baselines)
  reject unsupported non-default fields via
  :meth:`MinerConfig.require_only`, so the error message names the
  miner and the offending knob instead of silently ignoring it.

``min_sup`` follows the repo-wide convention: a value in ``(0, 1]`` is a
relative frequency, a value ``> 1`` an absolute (integral) count. The
conversion against a concrete database still happens in
:meth:`repro.model.database.ESequenceDatabase.absolute_support`; this
class only enforces the domain eagerly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Optional

from repro.core.pruning import PruningConfig

__all__ = ["MinerConfig", "SHARD_STRATEGIES"]

_MODES = ("tp", "htp")

#: How :func:`repro.engine.mine_sharded` deals root candidates to shards.
#: ``"roundrobin"`` is the historical blind deal; ``"predicted"`` places
#: roots by forecast cost (longest-processing-time-first, consuming a
#: :mod:`repro.obs.planner` plan when one is supplied). A strategy is an
#: *execution* knob like ``workers`` — it changes the partition, never
#: the mining semantics, so it lives outside :class:`MinerConfig` and
#: the merged result is bit-for-bit identical either way.
SHARD_STRATEGIES = ("roundrobin", "predicted")


@dataclass(frozen=True, slots=True)
class MinerConfig:
    """Frozen, picklable mining configuration shared by every miner.

    Attributes
    ----------
    min_sup:
        Relative support in ``(0, 1]`` or absolute integral count ``> 1``.
    mode:
        ``"tp"`` (interval-only patterns) or ``"htp"`` (hybrid patterns
        admitting point events).
    pruning:
        Which of P-TPMiner's pruning techniques run; ignored by miners
        that have no pruning switches unless explicitly rejected via
        :meth:`require_only`.
    max_tokens:
        Optional cap on pattern length in endpoint tokens.
    max_size:
        Optional cap on pattern size in event occurrences.
    max_span:
        Optional time-window constraint on embeddings.
    """

    min_sup: float = 0.1
    mode: str = "tp"
    pruning: PruningConfig = field(default_factory=PruningConfig.all)
    max_tokens: Optional[int] = None
    max_size: Optional[int] = None
    max_span: Optional[float] = None

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.min_sup <= 0:
            raise ValueError(
                f"min_sup must be positive, got {self.min_sup}"
            )
        if self.min_sup > 1 and self.min_sup != int(self.min_sup):
            raise ValueError(
                f"absolute min_sup must be an integer, got {self.min_sup}"
            )
        if not isinstance(self.pruning, PruningConfig):
            raise TypeError(
                f"pruning must be a PruningConfig, got {self.pruning!r}"
            )
        if self.max_tokens is not None and self.max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        if self.max_size is not None and self.max_size < 1:
            raise ValueError("max_size must be >= 1")
        if self.max_span is not None and self.max_span < 0:
            raise ValueError("max_span must be >= 0")

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The configuration surface, for eager kwarg validation."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_kwargs(cls, **kwargs: Any) -> "MinerConfig":
        """Build a config, rejecting unknown keywords with a clear error.

        This is the validation seam behind the convenience
        :func:`repro.core.ptpminer.mine` API: unknown keywords raise
        ``TypeError`` naming the valid fields instead of surfacing as an
        opaque constructor failure deep in a miner.
        """
        known = cls.field_names()
        unknown = sorted(set(kwargs) - set(known))
        if unknown:
            raise TypeError(
                f"unknown miner option(s) {', '.join(map(repr, unknown))}; "
                f"valid options: {', '.join(known)}"
            )
        return cls(**kwargs)

    def replace(self, **changes: Any) -> "MinerConfig":
        """A copy with ``changes`` applied (re-validated eagerly)."""
        return replace(self, **changes)

    def require_only(self, miner: str, *supported: str) -> None:
        """Reject non-default fields outside ``supported`` for ``miner``.

        Lets a miner that implements a subset of the configuration
        surface fail eagerly — ``IEMiner`` has no ``htp`` mode, the
        verification baselines have no pruning switches — with an error
        that names the miner and the unsupported option.
        """
        default = MinerConfig(min_sup=self.min_sup)
        for name in self.field_names():
            if name == "min_sup" or name in supported:
                continue
            if getattr(self, name) != getattr(default, name):
                raise ValueError(
                    f"{miner} does not support the {name!r} option "
                    f"(got {getattr(self, name)!r})"
                )

    def describe(self) -> dict[str, Any]:
        """Provenance dict for :class:`~repro.core.ptpminer.MiningResult`."""
        return {
            "min_sup": self.min_sup,
            "mode": self.mode,
            "pruning": self.pruning.describe(),
            "max_tokens": self.max_tokens,
            "max_size": self.max_size,
            "max_span": self.max_span,
        }
