"""The unified Miner API: protocol, registry, and builder.

Historically the CLI, the experiment harness, and the perf workloads
each hard-coded the five miner classes and their five ad-hoc
constructor signatures. This module replaces that with one seam:

* :class:`Miner` — the structural protocol every miner satisfies: it
  carries a frozen :class:`~repro.core.config.MinerConfig` and exposes
  ``mine(db) -> MiningResult``;
* a **registry** mapping stable names (``"ptpminer"``,
  ``"tprefixspan"``, ``"hdfs"``, ``"ieminer"``, ``"bruteforce"``) to
  factories of signature ``MinerConfig -> Miner``
  (:func:`get` / :func:`register` / :func:`available`);
* :func:`build` — the one-stop constructor used by the CLI, harness,
  and perf layers, which also routes ``workers > 1`` to the sharded
  engine (:class:`repro.engine.ShardedMiner`) for P-TPMiner.

Extending the registry (e.g. from an experiment script)::

    from repro import miners

    miners.register("myminer", MyMiner.from_config)
    miners.build("myminer", min_sup=0.2).mine(db)
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.baselines.bruteforce import BruteForceMiner
from repro.baselines.hdfs import HDFSMiner
from repro.baselines.ieminer import IEMiner
from repro.baselines.tprefixspan import TPrefixSpanMiner
from repro.core.config import MinerConfig
from repro.core.ptpminer import MiningResult, PTPMiner
from repro.model.database import ESequenceDatabase

__all__ = [
    "Miner",
    "MinerFactory",
    "available",
    "build",
    "get",
    "register",
]


@runtime_checkable
class Miner(Protocol):
    """What every miner looks like, structurally.

    ``config`` is the complete, frozen mining-semantics surface;
    ``mine`` produces the canonical result object. The five built-in
    miners (and :class:`repro.engine.ShardedMiner`) all satisfy this
    without inheriting anything.
    """

    config: MinerConfig

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine ``db`` and return the full result."""
        ...


#: A registered miner constructor: config in, ready miner out.
MinerFactory = Callable[[MinerConfig], Miner]

_REGISTRY: dict[str, MinerFactory] = {}


def register(
    name: str, factory: MinerFactory, *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Refuses to overwrite an existing name unless ``replace=True``, so
    a typo cannot silently shadow a built-in miner.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(f"miner {name!r} is already registered")
    _REGISTRY[name] = factory


def get(name: str) -> MinerFactory:
    """The factory registered under ``name``.

    Raises ``ValueError`` naming the known miners — the error surface
    the CLI and perf layers expose for ``--miner`` typos.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown miner {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def available() -> tuple[str, ...]:
    """All registered miner names, sorted."""
    return tuple(sorted(_REGISTRY))


def build(
    name: str,
    config: Optional[MinerConfig] = None,
    *,
    workers: int = 1,
    executor: str = "auto",
    shard_strategy: str = "roundrobin",
    plan: Optional[dict[str, Any]] = None,
    **kwargs: Any,
) -> Miner:
    """Build a ready-to-run miner by registry name.

    Pass either a :class:`MinerConfig` or keyword options that build
    one (unknown keywords fail eagerly). ``workers > 1`` — or an
    explicit ``executor``, or a non-default ``shard_strategy`` —
    routes P-TPMiner through the sharded engine; the baselines have
    no parallel path and reject it. ``shard_strategy``/``plan`` are
    execution knobs (like ``workers``), not mining semantics: any
    combination yields bit-for-bit identical results.
    """
    if config is None:
        config = MinerConfig.from_kwargs(**kwargs)
    elif kwargs:
        raise TypeError(
            "pass either config= or individual miner options, not both"
        )
    factory = get(name)
    if workers != 1 or executor != "auto" or shard_strategy != "roundrobin":
        if name != "ptpminer":
            raise ValueError(
                "parallel mining (workers/executor/shard-strategy) is "
                f"only supported by 'ptpminer', got {name!r}"
            )
        from repro.engine import ShardedMiner

        return ShardedMiner.from_config(
            config,
            workers=workers,
            executor=executor,
            shard_strategy=shard_strategy,
            plan=plan,
        )
    return factory(config)


register("ptpminer", PTPMiner.from_config)
register("tprefixspan", TPrefixSpanMiner.from_config)
register("hdfs", HDFSMiner.from_config)
register("ieminer", IEMiner.from_config)
register("bruteforce", BruteForceMiner.from_config)
