"""Runtime contracts: machine-checked invariants for the mining core.

The paper's correctness argument rests on invariants the code enforces
only implicitly — canonical endpoint ordering, validity-during-
generation, projection-state consistency, and pruning soundness. A
silent violation corrupts mined results without crashing, which is the
worst failure mode for a reproduction. This module provides a
contract layer that is **off by default and free in production**, and
turns those invariants into hard ``ContractViolation`` errors when
enabled (the whole test suite runs with it on; see
``tests/conftest.py``).

Enabling
--------
* environment: ``REPRO_CONTRACTS=1`` (read at import time), or
* runtime: :func:`enable` / :func:`disable` / :func:`enabled_scope`.

API
---
:func:`check`
    Inline assertion: ``check(cond, "message")`` raises
    :class:`ContractViolation` when contracts are enabled and ``cond``
    is false; a no-op otherwise. Hot loops hoist the flag once per call
    (``if contracts.checking: contracts.check(...)``) so the disabled
    cost is a single local branch — measured within benchmark noise.
:func:`contract`
    Decorator attaching ``pre``/``post`` predicates to a function. When
    disabled the wrapper falls through to the function immediately.
:func:`is_enabled` / ``contracts.checking``
    The live flag. Read it as an attribute (``contracts.checking``) —
    importing the name snapshots a stale boolean.

What is wired where
-------------------
* ``repro.core.ptpminer`` — canonical token order at every emit, open-
  interval bookkeeping across backtracking, and (for small inputs) the
  pruning-soundness oracle: the pruned search must return exactly the
  pattern set the brute-force miner finds.
* ``repro.core.projection`` — :func:`repro.core.projection.check_state`
  validates each projection state (pending bound within ``used``,
  frontier consistency).
* ``repro.core.counting`` — pair tables are well-formed upper-bound
  tables (normalized keys, positive weights).
* ``repro.core.pruning`` — counter consistency at the end of a run.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from functools import wraps
from typing import Any, TypeVar

__all__ = [
    "ContractViolation",
    "check",
    "checking",
    "contract",
    "disable",
    "enable",
    "enabled_scope",
    "is_enabled",
]


class ContractViolation(AssertionError):
    """A runtime contract failed: an internal invariant was violated.

    Subclasses :class:`AssertionError` so test frameworks and callers
    that treat assertion failures specially keep working.
    """


#: The live on/off flag. Always read as ``contracts.checking`` (module
#: attribute); ``from repro.contracts import checking`` would freeze it.
checking: bool = os.environ.get("REPRO_CONTRACTS", "") not in ("", "0")


def is_enabled() -> bool:
    """``True`` when contract checking is currently active."""
    return checking


def enable() -> None:
    """Turn contract checking on for the whole process."""
    global checking
    checking = True


def disable() -> None:
    """Turn contract checking off."""
    global checking
    checking = False


@contextmanager
def enabled_scope(value: bool = True) -> Iterator[None]:
    """Temporarily set the contract flag (restores the prior value)."""
    global checking
    previous = checking
    checking = value
    try:
        yield
    finally:
        checking = previous


def check(
    condition: bool,
    message: str,
    *,
    details: Callable[[], str] | None = None,
) -> None:
    """Raise :class:`ContractViolation` if enabled and ``condition`` false.

    ``details`` is a lazy supplier of expensive diagnostic context; it is
    only invoked on failure.
    """
    if checking and not condition:
        if details is not None:
            message = f"{message} [{details()}]"
        raise ContractViolation(message)


_F = TypeVar("_F", bound=Callable[..., Any])


def contract(
    *,
    pre: Callable[..., bool] | None = None,
    post: Callable[..., bool] | None = None,
) -> Callable[[_F], _F]:
    """Attach pre/post-condition predicates to a function.

    ``pre`` receives the call's ``(*args, **kwargs)``; ``post`` receives
    ``(result, *args, **kwargs)``. Each returns ``True`` when the
    contract holds (raising :class:`ContractViolation` directly from the
    predicate is also allowed, for richer messages). When contracts are
    disabled the wrapper forwards the call with no checking.
    """

    def decorate(func: _F) -> _F:
        @wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not checking:
                return func(*args, **kwargs)
            if pre is not None and not pre(*args, **kwargs):
                raise ContractViolation(
                    f"precondition of {func.__qualname__} violated"
                )
            result = func(*args, **kwargs)
            if post is not None and not post(result, *args, **kwargs):
                raise ContractViolation(
                    f"postcondition of {func.__qualname__} violated"
                )
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
