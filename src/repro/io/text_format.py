"""Native text format for e-sequence databases and pattern lists.

Database format — one e-sequence per line, events separated by ``;``,
each event ``label,start,finish`` (a point event has ``start == finish``):

.. code-block:: text

    # name: my-dataset
    fever,3,9;cough,5,5;rash,7,12
    fever,0,4

Lines starting with ``#`` are comments; ``# name:`` in the header names
the database. Labels may not contain ``,``, ``;`` or newlines (enforced
at write time). Timestamps are written as integers when integral.

Pattern-list format — one pattern per line, ``support<TAB>pattern`` using
the :meth:`TemporalPattern.__str__` syntax:

.. code-block:: text

    412	(A+ B+) (A-) (B-)
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.pattern import PatternWithSupport, TemporalPattern
from repro.model.sequence import ESequence

__all__ = [
    "write_database",
    "read_database",
    "write_patterns",
    "read_patterns",
]

_FORBIDDEN = (",", ";", "\n", "\r")


def _format_time(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


def write_database(db: ESequenceDatabase, path: str | os.PathLike) -> None:
    """Write ``db`` to ``path`` in the native text format."""
    with open(path, "w", encoding="utf-8") as handle:
        if db.name:
            handle.write(f"# name: {db.name}\n")
        for seq in db:
            parts = []
            for ev in seq:
                if any(ch in ev.label for ch in _FORBIDDEN):
                    raise ValueError(
                        f"label {ev.label!r} contains a reserved character"
                    )
                parts.append(
                    f"{ev.label},{_format_time(ev.start)},"
                    f"{_format_time(ev.finish)}"
                )
            handle.write(";".join(parts) + "\n")


def _parse_time(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


def read_database(path: str | os.PathLike) -> ESequenceDatabase:
    """Read a database written by :func:`write_database`."""
    name = ""
    sequences: list[ESequence] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                sequences.append(ESequence([]))
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("name:"):
                    name = body[len("name:"):].strip()
                continue
            events = []
            for chunk in line.split(";"):
                fields = chunk.split(",")
                if len(fields) != 3:
                    raise ValueError(
                        f"{path}:{line_no}: malformed event {chunk!r}"
                    )
                label, start_text, finish_text = fields
                events.append(
                    IntervalEvent(
                        _parse_time(start_text),
                        _parse_time(finish_text),
                        label,
                    )
                )
            sequences.append(ESequence(events))
    return ESequenceDatabase(sequences, name=name)


def write_patterns(
    patterns: Iterable[PatternWithSupport], path: str | os.PathLike
) -> None:
    """Write a pattern list as ``support<TAB>pattern`` lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for item in patterns:
            handle.write(f"{item.support}\t{item.pattern}\n")


def read_patterns(path: str | os.PathLike) -> list[PatternWithSupport]:
    """Read a pattern list written by :func:`write_patterns`."""
    out: list[PatternWithSupport] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            support_text, _, pattern_text = line.partition("\t")
            if not pattern_text:
                raise ValueError(
                    f"{path}:{line_no}: expected 'support<TAB>pattern'"
                )
            support = float(support_text)
            support = int(support) if support.is_integer() else support
            out.append(
                PatternWithSupport(
                    TemporalPattern.parse(pattern_text), support
                )
            )
    return out
