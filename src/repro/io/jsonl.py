"""JSON-lines format for e-sequence databases.

One JSON object per line. An optional first line carries metadata:

.. code-block:: text

    {"_meta": {"name": "asl-sim", "format": "repro-esequences-v1"}}
    {"events": [[3, 9, "fever"], [5, 5, "cough"]]}
    {"events": []}

Events are ``[start, finish, label]`` triples. This is the interchange
format for feeding databases to/from other tooling (pandas, jq, etc.).
"""

from __future__ import annotations

import json
import os

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["write_jsonl", "read_jsonl", "FORMAT_TAG"]

FORMAT_TAG = "repro-esequences-v1"


def write_jsonl(db: ESequenceDatabase, path: str | os.PathLike) -> None:
    """Write ``db`` to ``path`` as JSON lines."""
    with open(path, "w", encoding="utf-8") as handle:
        meta = {"_meta": {"name": db.name, "format": FORMAT_TAG}}
        handle.write(json.dumps(meta) + "\n")
        for seq in db:
            record = {
                "events": [[ev.start, ev.finish, ev.label] for ev in seq]
            }
            handle.write(json.dumps(record) + "\n")


def read_jsonl(path: str | os.PathLike) -> ESequenceDatabase:
    """Read a database written by :func:`write_jsonl`."""
    name = ""
    sequences: list[ESequence] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            record = json.loads(line)
            if "_meta" in record:
                meta = record["_meta"]
                if meta.get("format") not in (None, FORMAT_TAG):
                    raise ValueError(
                        f"{path}:{line_no}: unsupported format tag "
                        f"{meta.get('format')!r}"
                    )
                name = meta.get("name", "")
                continue
            if "events" not in record:
                raise ValueError(
                    f"{path}:{line_no}: record lacks an 'events' field"
                )
            sequences.append(
                ESequence(
                    IntervalEvent(start, finish, label)
                    for start, finish, label in record["events"]
                )
            )
    return ESequenceDatabase(sequences, name=name)
