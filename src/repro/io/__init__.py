"""Serialization: native text, SPMF, JSON-lines and CSV formats."""

from __future__ import annotations

from repro.io.csv_format import read_csv, write_csv
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.spmf import read_spmf, write_spmf
from repro.io.text_format import (
    read_database,
    read_patterns,
    write_database,
    write_patterns,
)

__all__ = [
    "read_database",
    "write_database",
    "read_patterns",
    "write_patterns",
    "read_spmf",
    "write_spmf",
    "read_jsonl",
    "write_jsonl",
    "read_csv",
    "write_csv",
]
