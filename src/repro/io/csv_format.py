"""Long-format CSV for e-sequence databases.

One row per event with a header — the layout relational exports and
spreadsheet users expect:

.. code-block:: text

    sid,label,start,finish
    0,fever,3,9
    0,cough,5,5
    1,fever,0,4

Sequence ids must be non-negative integers; gaps are allowed on read
(sequences absent from the file come back empty up to the max sid, which
preserves alignment with external per-sid metadata).
"""

from __future__ import annotations

import csv
import os

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["write_csv", "read_csv"]

_HEADER = ("sid", "label", "start", "finish")


def write_csv(db: ESequenceDatabase, path: str | os.PathLike) -> None:
    """Write ``db`` to ``path`` as long-format CSV."""
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for seq in db:
            for ev in seq:
                writer.writerow([seq.sid, ev.label, ev.start, ev.finish])


def _parse_number(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


def read_csv(path: str | os.PathLike, name: str = "") -> ESequenceDatabase:
    """Read a database written by :func:`write_csv` (or any file with the
    same ``sid,label,start,finish`` header)."""
    rows: dict[int, list[IntervalEvent]] = {}
    max_sid = -1
    with open(path, "r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(h.strip() for h in header) != _HEADER:
            raise ValueError(
                f"{path}: expected header {','.join(_HEADER)!r}, "
                f"got {header!r}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise ValueError(f"{path}:{line_no}: expected 4 columns")
            sid = int(row[0])
            if sid < 0:
                raise ValueError(f"{path}:{line_no}: negative sid {sid}")
            max_sid = max(max_sid, sid)
            rows.setdefault(sid, []).append(
                IntervalEvent(
                    _parse_number(row[2]), _parse_number(row[3]), row[1]
                )
            )
    sequences = [
        ESequence(rows.get(sid, [])) for sid in range(max_sid + 1)
    ]
    return ESequenceDatabase(sequences, name=name)
