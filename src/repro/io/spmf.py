"""SPMF-compatible interval-sequence format.

SPMF (the reference open-source pattern-mining library) encodes sequences
as whitespace-separated integers with ``-1`` ending each itemset and
``-2`` ending the sequence. Its time-interval algorithms use event
triples; we follow that convention:

.. code-block:: text

    @CONVERTED_FROM_INTERVALS
    @ITEM=0=fever
    @ITEM=1=cough
    0 3 9 -1 1 5 5 -1 -2

Each itemset is one event: ``<label-id> <start> <finish> -1``; ``-2``
terminates the sequence line. ``@ITEM`` header lines map integer ids back
to labels (SPMF's standard label-mapping convention), so the format
round-trips label names exactly.
"""

from __future__ import annotations

import os

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["write_spmf", "read_spmf"]


def write_spmf(db: ESequenceDatabase, path: str | os.PathLike) -> None:
    """Write ``db`` in the SPMF interval format."""
    labels = sorted(db.alphabet)
    ids = {label: i for i, label in enumerate(labels)}
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("@CONVERTED_FROM_INTERVALS\n")
        if db.name:
            handle.write(f"@NAME={db.name}\n")
        for label, idx in sorted(ids.items(), key=lambda kv: kv[1]):
            handle.write(f"@ITEM={idx}={label}\n")
        for seq in db:
            parts: list[str] = []
            for ev in seq:
                parts.append(
                    f"{ids[ev.label]} {ev.start:g} {ev.finish:g} -1"
                )
            parts.append("-2")
            handle.write(" ".join(parts) + "\n")


def _parse_number(text: str) -> float:
    value = float(text)
    return int(value) if value.is_integer() else value


def read_spmf(path: str | os.PathLike) -> ESequenceDatabase:
    """Read a database written by :func:`write_spmf`."""
    labels: dict[int, str] = {}
    name = ""
    sequences: list[ESequence] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("@"):
                if line.startswith("@ITEM="):
                    _, idx_text, label = line.split("=", 2)
                    labels[int(idx_text)] = label
                elif line.startswith("@NAME="):
                    name = line[len("@NAME="):]
                continue
            tokens = line.split()
            if tokens[-1] != "-2":
                raise ValueError(
                    f"{path}:{line_no}: sequence line must end with -2"
                )
            events = []
            fields: list[str] = []
            for token in tokens[:-1]:
                if token == "-1":
                    if len(fields) != 3:
                        raise ValueError(
                            f"{path}:{line_no}: expected "
                            f"'<id> <start> <finish> -1', got {fields}"
                        )
                    label_id = int(fields[0])
                    if label_id not in labels:
                        raise ValueError(
                            f"{path}:{line_no}: unknown item id {label_id}"
                        )
                    events.append(
                        IntervalEvent(
                            _parse_number(fields[1]),
                            _parse_number(fields[2]),
                            labels[label_id],
                        )
                    )
                    fields = []
                else:
                    fields.append(token)
            if fields:
                raise ValueError(
                    f"{path}:{line_no}: trailing tokens {fields} before -2"
                )
            sequences.append(ESequence(events))
    return ESequenceDatabase(sequences, name=name)
