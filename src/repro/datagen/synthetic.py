"""QUEST-style synthetic workload generator for interval sequences.

The interval-mining literature evaluates on synthetic databases generated
in the IBM QUEST tradition, parameterized as ``D<x>C<y>N<z>``:

* ``D`` — number of e-sequences,
* ``C`` — average events per sequence,
* ``N`` — number of event labels,

extended here (as in the papers) with ``P`` seed patterns of average
length ``L`` that get planted into sequences, so the databases contain
genuinely frequent non-trivial arrangements, plus knobs for duplicate
labels, point-event mixing (for HTP workloads), and label skew.

Everything is deterministic under ``seed``. The module also registers the
named datasets the benchmark suite uses (:func:`standard_dataset`), so
every experiment's workload is reproducible from its name alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["SyntheticConfig", "SyntheticGenerator", "standard_dataset",
           "STANDARD_DATASETS"]


@dataclass(frozen=True, slots=True)
class SyntheticConfig:
    """All knobs of the generator (see module docstring)."""

    num_sequences: int = 1000
    avg_events: float = 8.0
    num_labels: int = 100
    num_patterns: int = 10
    avg_pattern_events: float = 4.0
    pattern_probability: float = 0.6
    point_fraction: float = 0.0
    label_skew: float = 1.1
    time_horizon: int = 100
    avg_duration: float = 10.0
    seed: int = 42
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_sequences < 1:
            raise ValueError("num_sequences must be >= 1")
        if self.num_labels < 1:
            raise ValueError("num_labels must be >= 1")
        if not 0.0 <= self.pattern_probability <= 1.0:
            raise ValueError("pattern_probability must be in [0, 1]")
        if not 0.0 <= self.point_fraction <= 1.0:
            raise ValueError("point_fraction must be in [0, 1]")
        if self.avg_events < 1.0:
            raise ValueError("avg_events must be >= 1")

    def dataset_name(self) -> str:
        """Canonical ``D..C..N..`` tag (or the explicit name if set)."""
        if self.name:
            return self.name
        tag = (
            f"D{self.num_sequences}"
            f"C{self.avg_events:g}"
            f"N{self.num_labels}"
        )
        if self.point_fraction > 0:
            tag += f"P{self.point_fraction:g}"
        return tag


class SyntheticGenerator:
    """Deterministic generator of :class:`ESequenceDatabase` instances."""

    def __init__(self, config: SyntheticConfig) -> None:
        self.config = config

    def generate(self) -> ESequenceDatabase:
        """Build the database described by the configuration."""
        cfg = self.config
        rng = random.Random(cfg.seed)
        labels = [f"e{i}" for i in range(cfg.num_labels)]
        weights = [1.0 / (i + 1) ** cfg.label_skew
                   for i in range(cfg.num_labels)]
        templates = [
            self._make_template(rng, labels, weights)
            for _ in range(cfg.num_patterns)
        ]
        template_weights = [1.0 / (i + 1) for i in range(len(templates))]
        sequences = [
            self._make_sequence(rng, labels, weights, templates,
                                template_weights)
            for _ in range(cfg.num_sequences)
        ]
        return ESequenceDatabase(sequences, name=cfg.dataset_name())

    # ------------------------------------------------------------------
    def _random_event(
        self,
        rng: random.Random,
        labels: list[str],
        weights: list[float],
        lo: int,
        hi: int,
    ) -> IntervalEvent:
        cfg = self.config
        label = rng.choices(labels, weights)[0]
        start = rng.randint(lo, max(lo, hi - 1))
        if rng.random() < cfg.point_fraction:
            return IntervalEvent(start, start, label)
        duration = max(1, round(rng.expovariate(1.0 / cfg.avg_duration)))
        return IntervalEvent(start, start + duration, label)

    def _make_template(
        self, rng: random.Random, labels: list[str], weights: list[float]
    ) -> list[IntervalEvent]:
        """A seed pattern: a small cluster of overlapping events."""
        cfg = self.config
        count = max(2, round(rng.gauss(cfg.avg_pattern_events, 1.0)))
        span = max(4, int(cfg.avg_duration * 2))
        return [
            self._random_event(rng, labels, weights, 0, span)
            for _ in range(count)
        ]

    def _make_sequence(
        self,
        rng: random.Random,
        labels: list[str],
        weights: list[float],
        templates: list[list[IntervalEvent]],
        template_weights: list[float],
    ) -> ESequence:
        cfg = self.config
        events: list[IntervalEvent] = []
        if templates and rng.random() < cfg.pattern_probability:
            template = rng.choices(templates, template_weights)[0]
            offset = rng.randint(0, cfg.time_horizon // 2)
            events.extend(ev.shifted(offset) for ev in template)
        target = max(1, round(rng.gauss(cfg.avg_events, cfg.avg_events / 4)))
        while len(events) < target:
            events.append(
                self._random_event(
                    rng, labels, weights, 0, cfg.time_horizon
                )
            )
        return ESequence(events)


# ---------------------------------------------------------------------------
# Named datasets used by the benchmark suite (experiment table T1)
# ---------------------------------------------------------------------------

#: The registry of named synthetic datasets; benches refer to these names.
STANDARD_DATASETS: dict[str, SyntheticConfig] = {
    # F1: sparse workload — many labels, low supports dominate.
    "sparse": SyntheticConfig(
        num_sequences=2000, avg_events=8, num_labels=100,
        num_patterns=12, pattern_probability=0.5, seed=11, name="sparse",
    ),
    # F2: dense workload — few labels, long sequences, heavy overlap.
    "dense": SyntheticConfig(
        num_sequences=1000, avg_events=16, num_labels=50,
        num_patterns=8, pattern_probability=0.7, avg_duration=20,
        seed=13, name="dense",
    ),
    # F3 base unit for replication-based scalability.
    "scale-unit": SyntheticConfig(
        num_sequences=1000, avg_events=8, num_labels=100,
        num_patterns=10, pattern_probability=0.5, seed=17,
        name="scale-unit",
    ),
    # F6: hybrid workload with 30% point events.
    "hybrid": SyntheticConfig(
        num_sequences=1000, avg_events=10, num_labels=60,
        num_patterns=10, pattern_probability=0.6, point_fraction=0.3,
        seed=19, name="hybrid",
    ),
    # Small workload for the miner-agreement experiment (T3).
    "tiny": SyntheticConfig(
        num_sequences=60, avg_events=5, num_labels=12,
        num_patterns=4, pattern_probability=0.6, time_horizon=30,
        seed=23, name="tiny",
    ),
}


def standard_dataset(
    name: str, **overrides: float | int | str
) -> ESequenceDatabase:
    """Generate one of the registered benchmark datasets by name.

    ``overrides`` replace configuration fields (e.g.
    ``standard_dataset("sparse", num_sequences=500)``).
    """
    try:
        config = STANDARD_DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {sorted(STANDARD_DATASETS)}"
        ) from None
    if overrides:
        config = replace(config, **overrides)
    return SyntheticGenerator(config).generate()
