"""Workload generators: synthetic (QUEST-style) and real-data simulators."""

from __future__ import annotations

from repro.datagen.asl import generate_asl
from repro.datagen.clinical import generate_clinical
from repro.datagen.library import generate_library
from repro.datagen.stock import generate_stock
from repro.datagen.synthetic import (
    STANDARD_DATASETS,
    SyntheticConfig,
    SyntheticGenerator,
    standard_dataset,
)

__all__ = [
    "SyntheticConfig",
    "SyntheticGenerator",
    "standard_dataset",
    "STANDARD_DATASETS",
    "generate_asl",
    "generate_clinical",
    "generate_library",
    "generate_stock",
]
