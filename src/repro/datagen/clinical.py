"""Clinical-pathway simulator (symptom / treatment intervals).

Healthcare records are the canonical motivation for interval mining:
symptoms persist, medications are administered over courses, and care
quality questions are *arrangement* questions ("was the antibiotic
course contained in the fever episode or did it lag it?"). Real EHR data
is obviously not redistributable, so this simulator generates admissions
with the pathway structure such datasets exhibit:

* **infection pathway** — FEVER contains RASH; an ANTIBIOTIC course
  starts during the fever and typically finishes after it
  (overlapped-by); defervescence is MET-BY a RECOVERY observation;
* **cardiac pathway** — CHEST-PAIN before ECG-ABNORMAL (short), then a
  long ANTICOAGULANT course containing repeated MONITORING intervals;
* **medication events** — BOLUS doses are point events inside infusion
  intervals (an HTP-mode motif);
* comorbidity noise across all admissions.

One e-sequence per admission; time unit = hours.
"""

from __future__ import annotations

import random

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["generate_clinical"]

_NOISE = ["headache", "nausea", "hypertension", "insomnia", "cough"]


def generate_clinical(
    num_admissions: int = 1000, *, seed: int = 59, point_boluses: bool = False
) -> ESequenceDatabase:
    """Generate ``num_admissions`` admission e-sequences.

    With ``point_boluses=True``, bolus doses are included as point
    events, making the database an HTP-mode workload.
    """
    rng = random.Random(seed)
    sequences = [
        _admission(rng, point_boluses) for _ in range(num_admissions)
    ]
    return ESequenceDatabase(sequences, name="clinical-sim")


def _admission(rng: random.Random, point_boluses: bool) -> ESequence:
    pathway = rng.choices(
        ["infection", "cardiac", "observation"], weights=[4, 3, 3]
    )[0]
    events: list[IntervalEvent] = []

    if pathway == "infection":
        fever_start = rng.randint(0, 12)
        fever_len = rng.randint(24, 72)
        fever_end = fever_start + fever_len
        events.append(IntervalEvent(fever_start, fever_end, "fever"))
        if rng.random() < 0.7:
            rash_start = fever_start + rng.randint(4, max(5, fever_len // 3))
            events.append(
                IntervalEvent(rash_start,
                              min(fever_end - 2, rash_start + rng.randint(8, 24)),
                              "rash")
            )
        if rng.random() < 0.85:
            abx_start = fever_start + rng.randint(2, 12)
            abx_end = fever_end + rng.randint(12, 48)  # course outlasts fever
            events.append(IntervalEvent(abx_start, abx_end, "antibiotic"))
            if point_boluses:
                for _ in range(rng.randint(1, 3)):
                    t = rng.randint(abx_start, abx_end)
                    events.append(IntervalEvent(t, t, "bolus"))
        if rng.random() < 0.6:
            events.append(
                IntervalEvent(fever_end, fever_end + rng.randint(12, 36),
                              "recovery-obs")
            )
    elif pathway == "cardiac":
        pain_start = rng.randint(0, 6)
        pain_end = pain_start + rng.randint(1, 4)
        events.append(IntervalEvent(pain_start, pain_end, "chest-pain"))
        ecg_start = pain_end + rng.randint(0, 3)
        events.append(
            IntervalEvent(ecg_start, ecg_start + 1, "ecg-abnormal")
        )
        coag_start = ecg_start + rng.randint(1, 4)
        coag_end = coag_start + rng.randint(48, 120)
        events.append(
            IntervalEvent(coag_start, coag_end, "anticoagulant")
        )
        cursor = coag_start + rng.randint(2, 8)
        while cursor + 4 < coag_end and rng.random() < 0.8:
            events.append(
                IntervalEvent(cursor, cursor + rng.randint(1, 3),
                              "monitoring")
            )
            cursor += rng.randint(8, 20)
    else:
        for _ in range(rng.randint(1, 3)):
            start = rng.randint(0, 48)
            events.append(
                IntervalEvent(start, start + rng.randint(4, 24),
                              rng.choice(_NOISE))
            )

    for _ in range(rng.randint(0, 2)):
        start = rng.randint(0, 72)
        events.append(
            IntervalEvent(start, start + rng.randint(2, 12),
                          rng.choice(_NOISE))
        )
    return ESequence(events)
