"""Stock-movement epoch simulator.

The other standard "real" workload of the interval-mining literature:
daily price series are discretized into labelled epochs — maximal runs of
``<ticker>-up`` / ``<ticker>-down`` / ``<ticker>-flat`` — and each trading
window becomes one e-sequence over the epochs of a basket of tickers.
Actual market data is not shipped, so this simulator generates a basket
with the co-movement structure mining should rediscover:

* a market **factor**: when the factor rallies, the index ETF and most
  tech tickers produce overlapping ``-up`` epochs (EQUAL / OVERLAPS
  arrangements);
* a **lead-lag** pair: the leader's epoch OVERLAPS or is BEFORE the
  follower's matching epoch by a small lag;
* an **inverse** asset (e.g. a volatility product) whose ``-up`` epochs
  coincide with the factor's ``-down`` epochs;
* idiosyncratic noise epochs on every ticker.

Sequences are per-window so supports are meaningful across windows.
"""

from __future__ import annotations

import random

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["generate_stock"]

_TECH = ["TECH1", "TECH2", "TECH3"]
_LEADER, _FOLLOWER = "LEAD", "FOLLOW"
_INDEX, _INVERSE = "INDEX", "VOLX"


def generate_stock(
    num_windows: int = 900, *, window_days: int = 20, seed: int = 47
) -> ESequenceDatabase:
    """Generate ``num_windows`` trading-window e-sequences."""
    rng = random.Random(seed)
    sequences = [_window(rng, window_days) for _ in range(num_windows)]
    return ESequenceDatabase(sequences, name="stock-sim")


def _epoch(ticker: str, direction: str, start: int, end: int) -> IntervalEvent:
    return IntervalEvent(start, end, f"{ticker}-{direction}")


def _window(rng: random.Random, days: int) -> ESequence:
    events: list[IntervalEvent] = []
    regime = rng.choices(["rally", "selloff", "chop"], weights=[3, 2, 3])[0]

    if regime in ("rally", "selloff"):
        direction = "up" if regime == "rally" else "down"
        opposite = "down" if regime == "rally" else "up"
        f_start = rng.randint(0, days // 3)
        f_end = f_start + rng.randint(days // 3, (2 * days) // 3)
        events.append(_epoch(_INDEX, direction, f_start, f_end))
        for ticker in _TECH:
            if rng.random() < 0.8:
                # Exact co-movement half the time (an EQUAL arrangement
                # with the index); otherwise small jitter produces the
                # overlaps/contains variants.
                if rng.random() < 0.5:
                    jitter_s = jitter_e = 0
                else:
                    jitter_s = rng.randint(-1, 1)
                    jitter_e = rng.randint(-1, 2)
                events.append(
                    _epoch(ticker, direction,
                           max(0, f_start + jitter_s), f_end + jitter_e)
                )
        if rng.random() < 0.75:
            events.append(_epoch(_INVERSE, opposite, f_start, f_end + 1))
        # Lead-lag: leader's epoch precedes/overlaps the follower's.
        if rng.random() < 0.7:
            lead_end = f_start + rng.randint(2, 4)
            events.append(_epoch(_LEADER, direction, f_start, lead_end))
            lag = rng.randint(1, 3)
            events.append(
                _epoch(_FOLLOWER, direction, f_start + lag,
                       lead_end + lag + 1)
            )
    else:
        # Choppy window: short uncorrelated epochs.
        for ticker in (_INDEX, *_TECH):
            cursor = rng.randint(0, 3)
            while cursor < days - 3 and rng.random() < 0.7:
                span = rng.randint(2, 5)
                events.append(
                    _epoch(ticker, rng.choice(["up", "down", "flat"]),
                           cursor, cursor + span)
                )
                cursor += span + rng.randint(1, 3)

    # Idiosyncratic noise epochs.
    for _ in range(rng.randint(0, 3)):
        ticker = rng.choice([*_TECH, _LEADER, _FOLLOWER])
        start = rng.randint(0, days - 3)
        events.append(
            _epoch(ticker, rng.choice(["up", "down", "flat"]),
                   start, start + rng.randint(1, 4))
        )
    return ESequence(events)
