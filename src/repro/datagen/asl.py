"""American Sign Language (ASL) utterance simulator.

The interval-mining papers (this line of work included) evaluate
"practicability" on annotated ASL corpora: each utterance is an
e-sequence whose events are *grammatical-field intervals* (wh-question,
negation, topic, conditional — long, spanning several signs) and
*sign-gloss intervals* (the individual signs — short, mostly sequential),
plus *non-manual markers* (head shake, raised eyebrows) that co-occur
with the fields that license them.

The corpora are not redistributable, so this module generates a
statistically faithful stand-in with the same structural signature:

* one long field interval CONTAINS the signs it scopes over;
* negation fields OVERLAP a co-articulated head-shake marker;
* wh-questions FINISH with a wh-sign (``WHO``/``WHAT``/...);
* raised eyebrows STARTS-align with topic fields.

Mining this database therefore surfaces exactly the kinds of
linguistically interpretable arrangements the paper's real-data tables
report ("negation contains head-shake", "wh-question finished-by WHO").
"""

from __future__ import annotations

import random

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["generate_asl"]

_SIGNS = [
    "IX", "MARY", "JOHN", "BOOK", "GIVE", "READ", "LIKE", "GO",
    "SCHOOL", "HOME", "FINISH", "NOT", "WANT", "SEE", "BUY",
]
_WH_SIGNS = ["WHO", "WHAT", "WHERE", "WHY"]

#: Utterance archetypes with their field structure.
_ARCHETYPES = ("plain", "wh-question", "negation", "topic", "conditional")


def generate_asl(
    num_utterances: int = 800, *, seed: int = 7, point_markers: bool = False
) -> ESequenceDatabase:
    """Generate an ASL-like corpus of ``num_utterances`` e-sequences.

    With ``point_markers=True``, eye-blink markers are added as point
    events (an HTP-mode workload); otherwise all events are intervals.
    """
    rng = random.Random(seed)
    sequences = [
        _utterance(rng, point_markers) for _ in range(num_utterances)
    ]
    return ESequenceDatabase(sequences, name="asl-sim")


def _utterance(rng: random.Random, point_markers: bool) -> ESequence:
    archetype = rng.choices(
        _ARCHETYPES, weights=[4, 2, 2, 1.5, 0.5]
    )[0]
    events: list[IntervalEvent] = []
    num_signs = rng.randint(3, 7)
    cursor = 0
    sign_spans: list[tuple[int, int]] = []
    for _ in range(num_signs):
        length = rng.randint(2, 5)
        events.append(
            IntervalEvent(cursor, cursor + length, rng.choice(_SIGNS))
        )
        sign_spans.append((cursor, cursor + length))
        cursor += length + rng.randint(0, 2)

    if archetype == "wh-question":
        # The wh-field spans the utterance tail and is finished by a
        # wh-sign articulated right at the field's end.
        field_start = sign_spans[max(0, len(sign_spans) - 3)][0]
        field_end = cursor + 3
        events.append(IntervalEvent(field_start, field_end, "wh-question"))
        events.append(
            IntervalEvent(field_end - 3, field_end, rng.choice(_WH_SIGNS))
        )
    elif archetype == "negation":
        # Negation field contains NOT and overlaps a head shake.
        mid = sign_spans[len(sign_spans) // 2]
        field_start, field_end = mid[0] - 1, mid[1] + 4
        events.append(IntervalEvent(field_start, field_end, "negation"))
        events.append(IntervalEvent(field_start + 1, field_end - 1, "NOT"))
        if rng.random() < 0.9:
            events.append(
                IntervalEvent(field_start + 1, field_end + 1, "head-shake")
            )
    elif archetype == "topic":
        # Topic field starts together with raised eyebrows.
        first = sign_spans[0]
        field_end = first[1] + 1
        events.append(IntervalEvent(first[0], field_end, "topic"))
        if rng.random() < 0.85:
            events.append(
                IntervalEvent(first[0], field_end + rng.randint(0, 2),
                              "raised-brows")
            )
    elif archetype == "conditional":
        first, last = sign_spans[0], sign_spans[-1]
        events.append(
            IntervalEvent(first[0], last[1] // 2 + 1, "conditional")
        )

    if point_markers:
        for _ in range(rng.randint(0, 2)):
            t = rng.randint(0, max(1, cursor))
            events.append(IntervalEvent(t, t, "blink"))
    return ESequence(events)
