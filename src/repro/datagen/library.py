"""Library-loan history simulator.

A classic application of interval mining: each patron's borrowing history
is an e-sequence whose events are *loan intervals* labelled with the
item's category. Real circulation data is not redistributable, so this
simulator reproduces the structural regularities such datasets exhibit:

* **course workflows** — a student borrows a TEXTBOOK for a long period
  and, DURING it, a sequence of shorter REFERENCE loans (the pattern
  "textbook contains reference" the practicability tables surface);
* **exam bursts** — EXAM-PREP loans cluster before a deadline and are
  MET-BY a RELAXATION loan (novels after exams);
* **serial readers** — consecutive NOVEL loans that MEET (return one
  volume, take the next);
* background noise loans across all categories.

Patron types (student / researcher / casual) mix these behaviours with
different propensities, giving support gradients across patterns.
"""

from __future__ import annotations

import random

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["generate_library"]

_CATEGORIES = [
    "textbook", "reference", "novel", "exam-prep", "magazine",
    "biography", "travel", "cookbook",
]


def generate_library(
    num_patrons: int = 1000, *, seed: int = 31
) -> ESequenceDatabase:
    """Generate ``num_patrons`` borrowing histories (one year horizon)."""
    rng = random.Random(seed)
    sequences = [_patron(rng) for _ in range(num_patrons)]
    return ESequenceDatabase(sequences, name="library-sim")


def _patron(rng: random.Random) -> ESequence:
    kind = rng.choices(
        ["student", "researcher", "casual"], weights=[5, 2, 3]
    )[0]
    events: list[IntervalEvent] = []

    if kind == "student":
        term_start = rng.randint(0, 30)
        semester = rng.randint(90, 120)
        events.append(
            IntervalEvent(term_start, term_start + semester, "textbook")
        )
        # Reference loans nested inside the textbook loan.
        for _ in range(rng.randint(1, 3)):
            ref_start = term_start + rng.randint(5, semester - 20)
            events.append(
                IntervalEvent(ref_start, ref_start + rng.randint(7, 14),
                              "reference")
            )
        if rng.random() < 0.7:
            exam_end = term_start + semester
            prep_start = exam_end - rng.randint(14, 21)
            events.append(IntervalEvent(prep_start, exam_end, "exam-prep"))
            if rng.random() < 0.8:
                events.append(
                    IntervalEvent(exam_end, exam_end + rng.randint(10, 20),
                                  "novel")
                )
    elif kind == "researcher":
        cursor = rng.randint(0, 20)
        for _ in range(rng.randint(2, 4)):
            span = rng.randint(30, 60)
            events.append(IntervalEvent(cursor, cursor + span, "reference"))
            if rng.random() < 0.5:
                events.append(
                    IntervalEvent(cursor + 5, cursor + span + 10,
                                  "biography")
                )
            cursor += rng.randint(20, 50)
    else:  # casual: serial novel reading with meets-chains.
        cursor = rng.randint(0, 60)
        for _ in range(rng.randint(2, 5)):
            span = rng.randint(10, 25)
            events.append(IntervalEvent(cursor, cursor + span, "novel"))
            cursor += span  # return and immediately borrow the next
        if rng.random() < 0.4:
            t = rng.randint(0, 300)
            events.append(IntervalEvent(t, t + rng.randint(5, 10),
                                        "magazine"))

    # Background noise for everyone.
    for _ in range(rng.randint(0, 2)):
        t = rng.randint(0, 330)
        events.append(
            IntervalEvent(t, t + rng.randint(5, 20),
                          rng.choice(_CATEGORIES))
        )
    return ESequence(events)
