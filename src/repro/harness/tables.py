"""Plain-text table rendering for experiment output.

The benchmark harness prints every reproduced table/figure as an aligned
ASCII table (and, for figures, an accompanying ASCII chart) so the
regenerated numbers appear directly in the bench logs — the same rows the
paper reports, with our measured values.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any, Optional

__all__ = ["render_table", "format_value"]


def format_value(value: Any) -> str:
    """Human formatting: 3 significant decimals for floats, str otherwise.

    ``None`` renders as an em-dash — the "not measured" marker (e.g.
    peak memory when tracking was off), distinct from a measured ``0``.
    """
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3g}"
        return f"{value:.3g}"
    if isinstance(value, int) and abs(value) >= 10000:
        return f"{value:,}"
    return str(value)


def render_table(
    rows: Sequence[dict],
    columns: Optional[Iterable[str]] = None,
    title: str = "",
) -> str:
    """Render dict-rows as an aligned ASCII table.

    ``columns`` fixes the column order (defaults to first-seen order
    across all rows). Missing cells render blank.
    """
    if columns is None:
        seen: dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key)
        columns = list(seen)
    else:
        columns = list(columns)
    header = [str(c) for c in columns]
    body = [
        [format_value(row.get(c, "")) for c in columns] for row in rows
    ]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body
        else len(header[i])
        for i in range(len(header))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
