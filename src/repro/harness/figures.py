"""ASCII line charts for the reproduced figures.

Each figure of the paper is regenerated as a data table plus an ASCII
chart printed in the bench log: one mark per series, shared y-scale,
x positions from the sweep values. Crude, but it makes the *shape*
claims ("who wins, where curves cross") visible without a plotting
stack — exactly the property the reproduction is graded on.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["ascii_chart"]

_MARKS = "ox*#@%&+"

#: Cell mark where two or more series land on the same grid cell.
#: Earlier versions silently let the later series overwrite the
#: earlier one, which made crossing curves look like one series
#: disappeared exactly where the crossing happened.
_COLLISION_MARK = "?"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render ``{name: [(x, y), ...]}`` as a multi-series ASCII chart.

    With ``log_y`` the vertical axis is log10-scaled (runtime figures in
    this literature are usually log-scale). Cells where points from two
    *different* series collide render as ``?`` (noted in the legend when
    it happens) rather than letting the later series mask the earlier —
    a common state near curve crossings at this resolution.
    """
    import math

    points = [
        (x, y) for pts in series.values() for x, y in pts
    ]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1.0
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
        ys_t = [transform(y) for y in ys]
    else:
        transform = lambda y: y  # noqa: E731
        ys_t = ys
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys_t), max(ys_t)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    collisions = 0
    for idx, (name, pts) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((transform(y) - y_lo) / y_span * (height - 1))
            current = grid[height - 1 - row][col]
            if current in (" ", mark):
                grid[height - 1 - row][col] = mark
            elif current != _COLLISION_MARK:
                grid[height - 1 - row][col] = _COLLISION_MARK
                collisions += 1

    lines = []
    if title:
        lines.append(title)
    axis_note = f" ({y_label}, log scale)" if log_y else f" ({y_label})"
    lines.append(f"y: {min(ys):.4g} .. {max(ys):.4g}{axis_note}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_lo:.4g} .. {x_hi:.4g} ({x_label})")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}"
        for i, name in enumerate(series)
    )
    if collisions:
        legend += f"  {_COLLISION_MARK}=overlap"
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
