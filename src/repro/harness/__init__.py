"""Experiment harness: measurement, sweeps, table and figure rendering."""

from __future__ import annotations

from repro.harness.figures import ascii_chart
from repro.harness.metrics import RunMetrics, measure
from repro.harness.runner import (
    ExperimentRunner,
    MinerSpec,
    SweepResult,
    write_rows_csv,
)
from repro.harness.tables import render_table
from repro.harness.timeline import render_pattern, render_sequence

__all__ = [
    "measure",
    "RunMetrics",
    "ExperimentRunner",
    "MinerSpec",
    "SweepResult",
    "render_table",
    "ascii_chart",
    "render_sequence",
    "render_pattern",
    "write_rows_csv",
]
