"""Measurement utilities for the experiment harness.

Wraps a mining call with wall-clock timing and Python-heap peak-memory
tracking (``tracemalloc``), returning a flat :class:`RunMetrics` record
the table/figure renderers consume. Peak memory is the *additional* bytes
allocated during the call — the quantity the paper's memory figure plots
(the candidate sets / projected databases), not the interpreter baseline.
Timing flows through the injectable :mod:`repro.obs.clock`, and
``collect_obs=True`` installs a fresh metrics registry for the call so
sweeps can attach per-run observability snapshots to their rows.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.obs import clock as _obs_clock
from repro.obs import costmodel as _obs_costmodel
from repro.obs import live as _obs_live
from repro.obs import metrics as _obs_metrics
from repro.obs import provenance as _obs_provenance

__all__ = ["RunMetrics", "measure"]


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """One measured run of a callable.

    ``peak_mem_bytes`` is ``None`` when memory tracking was off — the
    renderers show "—" rather than a misleading ``0``. ``obs`` holds the
    run's metrics snapshot when ``collect_obs=True``, else ``None``.
    ``profile`` holds the serialised per-phase profile
    (``ProfileReport.as_dict()``) when ``collect_profile=True``.
    ``workers`` is measurement provenance: how many engine workers the
    measured callable was configured with (1 for sequential runs) —
    sweeps surface it as a column so parallel and serial rows are never
    conflated. ``live_summary`` holds the live telemetry bus's final
    :meth:`~repro.obs.live.LiveAggregator.summary` (per-shard lanes,
    shard imbalance, stragglers) when ``collect_live=True`` and the
    measured callable actually ran the sharded engine, else ``None``.
    ``cost_profile`` holds the per-root / per-level search cost snapshot
    (:meth:`~repro.obs.costmodel.CostCollector.snapshot`) when
    ``collect_cost=True``; callables that never run the instrumented
    search leave its ``roots``/``levels`` empty. ``config_fingerprint``
    is provenance stamped by the caller (see
    :func:`repro.obs.ledger.config_fingerprint`) so measured rows can
    be joined against ledger entries; ``measure`` never computes it.
    ``provenance`` holds the pattern provenance / prune-decision snapshot
    (:meth:`~repro.obs.provenance.ProvenanceCollector.snapshot`) when
    ``collect_provenance=True``; callables that never run the
    instrumented search leave its ``patterns``/``pruned`` maps empty.
    ``plan`` is provenance like ``config_fingerprint``: the shard-plan
    summary (:func:`repro.obs.planner.plan_summary`) the measured
    callable mined under, when the caller built one — sweeps surface
    its predicted imbalance next to the realized one.
    """

    result: Any
    elapsed_s: float
    peak_mem_bytes: Optional[int]
    obs: Optional[dict[str, Any]] = None
    profile: Optional[dict[str, Any]] = None
    workers: int = 1
    live_summary: Optional[dict[str, Any]] = None
    cost_profile: Optional[dict[str, Any]] = None
    config_fingerprint: Optional[str] = None
    provenance: Optional[dict[str, Any]] = None
    plan: Optional[dict[str, Any]] = None

    @property
    def peak_mem_mb(self) -> Optional[float]:
        """Peak additional heap in MiB (``None`` when untracked)."""
        if self.peak_mem_bytes is None:
            return None
        return self.peak_mem_bytes / (1024 * 1024)


def measure(
    fn: Callable[[], Any],
    *,
    track_memory: bool = True,
    collect_obs: bool = False,
    collect_profile: bool = False,
    collect_live: bool = False,
    collect_cost: bool = False,
    collect_provenance: bool = False,
    workers: int = 1,
    fingerprint: Optional[str] = None,
    plan: Optional[dict[str, Any]] = None,
) -> RunMetrics:
    """Run ``fn`` once, measuring wall time and peak heap growth.

    ``track_memory=False`` skips tracemalloc (which itself slows
    allocation-heavy code noticeably) for pure-runtime experiments;
    ``peak_mem_bytes`` is then ``None``, not ``0``. ``collect_obs=True``
    scopes a fresh :class:`~repro.obs.metrics.MetricsRegistry` around the
    call and returns its snapshot in :attr:`RunMetrics.obs`.
    ``collect_profile=True`` additionally scopes a per-phase
    :class:`~repro.obs.profile.PhaseProfiler` (memory attribution on iff
    ``track_memory``) and returns its serialised report in
    :attr:`RunMetrics.profile`. ``collect_live=True`` scopes a silent
    (``render=False``) live telemetry collector around the call — if the
    callable runs :func:`repro.engine.mine_sharded`, the engine streams
    shard heartbeats into it and :attr:`RunMetrics.live_summary` carries
    the final lane summary (shard imbalance, stragglers); callables that
    never hit the engine leave it ``None``. ``collect_cost=True`` scopes
    a fresh :class:`~repro.obs.costmodel.CostCollector` around the call
    and returns its snapshot in :attr:`RunMetrics.cost_profile` —
    sharded callables merge worker snapshots into it through the engine,
    so the profile is identical to a serial run's.
    ``collect_provenance=True`` scopes a fresh
    :class:`~repro.obs.provenance.ProvenanceCollector` the same way and
    returns its snapshot in :attr:`RunMetrics.provenance` — the engine
    merges worker snapshots order-independently, so sharded provenance
    is bit-for-bit equal to a serial run's.

    Measurement hygiene — how the flags interact:

    * ``collect_obs=True`` with ``track_memory=True`` installs the
      registry *outside* the tracemalloc window, so the registry's own
      allocations (counter/histogram dicts) **do** count toward
      ``peak_mem_bytes`` while instrumented code runs. The effect is a
      few KiB — negligible next to candidate sets, but not zero; a
      memory *baseline* must therefore come from a plain
      ``track_memory=True`` run with both collection flags off, which is
      exactly what :mod:`repro.perf` enforces by timing and
      memory-measuring in separate, un-instrumented runs.
    * ``collect_profile=True`` inflates ``elapsed_s`` (cProfile hooks
      every call; tracemalloc every allocation) — profile numbers
      attribute cost, they are not benchmark timings.
    * ``collect_cost=True`` adds per-candidate recording inside the
      search (a dict update per frequent candidate); the cost is small
      but real, so benchmark timings keep it off, same as the registry.
    * ``collect_provenance=True`` records every emitted pattern's
      support set and every prune decision — the heaviest of the
      collectors by memory (one entry per candidate), so benchmark
      timings keep it off too.
    * If tracemalloc is *already tracing* when ``measure`` is called
      (nested ``measure``, or an enclosing
      :func:`~repro.obs.profile.profile_scope`), the inner call reuses
      the outer trace: it resets the peak, measures growth relative to
      the current heap, and leaves tracemalloc running on exit.

    ``workers`` is pure provenance: it does not change how ``fn`` runs
    (the callable itself decides that, e.g. via
    :func:`repro.engine.mine_sharded`), it only stamps the returned
    :attr:`RunMetrics.workers` so downstream rows carry the setting.
    ``fingerprint`` is provenance the same way — it is stamped onto
    :attr:`RunMetrics.config_fingerprint` unchanged. Note that with
    ``workers > 1`` and a process executor, ``peak_mem_bytes`` only
    tracks the parent process's heap — worker allocations are invisible
    to tracemalloc.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if collect_profile:
        from repro.obs.profile import profile_scope

        with profile_scope(memory=track_memory) as profiler:
            inner = measure(
                fn,
                track_memory=track_memory,
                collect_obs=collect_obs,
                collect_live=collect_live,
                collect_cost=collect_cost,
                collect_provenance=collect_provenance,
                fingerprint=fingerprint,
                plan=plan,
            )
        return RunMetrics(
            inner.result,
            inner.elapsed_s,
            inner.peak_mem_bytes,
            inner.obs,
            profiler.report().as_dict(),
            workers,
            inner.live_summary,
            cost_profile=inner.cost_profile,
            config_fingerprint=fingerprint,
            provenance=inner.provenance,
            plan=plan,
        )
    if collect_obs:
        with _obs_metrics.use_registry() as registry:
            inner = measure(
                fn,
                track_memory=track_memory,
                collect_live=collect_live,
                collect_cost=collect_cost,
                collect_provenance=collect_provenance,
                fingerprint=fingerprint,
                plan=plan,
            )
        return RunMetrics(
            inner.result,
            inner.elapsed_s,
            inner.peak_mem_bytes,
            registry.snapshot(),
            workers=workers,
            live_summary=inner.live_summary,
            cost_profile=inner.cost_profile,
            config_fingerprint=fingerprint,
            provenance=inner.provenance,
            plan=plan,
        )
    if collect_cost:
        with _obs_costmodel.use_collector() as cost_collector:
            inner = measure(
                fn,
                track_memory=track_memory,
                collect_live=collect_live,
                collect_provenance=collect_provenance,
                fingerprint=fingerprint,
                plan=plan,
            )
        return RunMetrics(
            inner.result,
            inner.elapsed_s,
            inner.peak_mem_bytes,
            workers=workers,
            live_summary=inner.live_summary,
            cost_profile=cost_collector.snapshot(),
            config_fingerprint=fingerprint,
            provenance=inner.provenance,
            plan=plan,
        )
    if collect_provenance:
        with _obs_provenance.use_collector() as prov_collector:
            inner = measure(
                fn,
                track_memory=track_memory,
                collect_live=collect_live,
                fingerprint=fingerprint,
                plan=plan,
            )
        return RunMetrics(
            inner.result,
            inner.elapsed_s,
            inner.peak_mem_bytes,
            workers=workers,
            live_summary=inner.live_summary,
            config_fingerprint=fingerprint,
            provenance=prov_collector.snapshot(),
            plan=plan,
        )
    if collect_live:
        live_config = _obs_live.LiveConfig(render=False)
        with _obs_live.use_live(live_config) as live_collector:
            inner = measure(fn, track_memory=track_memory)
        return RunMetrics(
            inner.result,
            inner.elapsed_s,
            inner.peak_mem_bytes,
            workers=workers,
            live_summary=live_collector.summary,
            config_fingerprint=fingerprint,
            plan=plan,
        )
    if not track_memory:
        started = _obs_clock.now()
        result = fn()
        return RunMetrics(
            result,
            _obs_clock.now() - started,
            None,
            workers=workers,
            config_fingerprint=fingerprint,
            plan=plan,
        )
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    base, _ = tracemalloc.get_traced_memory()
    started = _obs_clock.now()
    try:
        result = fn()
        elapsed = _obs_clock.now() - started
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return RunMetrics(
        result,
        elapsed,
        max(0, peak - base),
        workers=workers,
        config_fingerprint=fingerprint,
        plan=plan,
    )
