"""Measurement utilities for the experiment harness.

Wraps a mining call with wall-clock timing and Python-heap peak-memory
tracking (``tracemalloc``), returning a flat :class:`RunMetrics` record
the table/figure renderers consume. Peak memory is the *additional* bytes
allocated during the call — the quantity the paper's memory figure plots
(the candidate sets / projected databases), not the interpreter baseline.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["RunMetrics", "measure"]


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """One measured run of a callable."""

    result: Any
    elapsed_s: float
    peak_mem_bytes: int

    @property
    def peak_mem_mb(self) -> float:
        """Peak additional heap in MiB."""
        return self.peak_mem_bytes / (1024 * 1024)


def measure(fn: Callable[[], Any], *, track_memory: bool = True) -> RunMetrics:
    """Run ``fn`` once, measuring wall time and peak heap growth.

    ``track_memory=False`` skips tracemalloc (which itself slows
    allocation-heavy code noticeably) for pure-runtime experiments.
    """
    if not track_memory:
        started = time.perf_counter()
        result = fn()
        return RunMetrics(result, time.perf_counter() - started, 0)
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    base, _ = tracemalloc.get_traced_memory()
    started = time.perf_counter()
    try:
        result = fn()
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return RunMetrics(result, elapsed, max(0, peak - base))
