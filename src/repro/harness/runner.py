"""Sweep runner: execute miners over parameter grids, collect rows.

The benchmark files are thin: they declare which dataset, which miners,
and which sweep axis an experiment uses, and delegate the mechanics
(measurement, row assembly, table + figure rendering) to
:class:`ExperimentRunner`. Every experiment's output is also persisted as
rows so `EXPERIMENTS.md` can quote them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.harness.figures import ascii_chart
from repro.harness.metrics import measure
from repro.harness.tables import render_table
from repro.model.database import ESequenceDatabase

__all__ = ["MinerSpec", "ExperimentRunner", "SweepResult", "write_rows_csv"]


@dataclass(frozen=True, slots=True)
class MinerSpec:
    """A named miner factory: ``build(param)`` returns an object with
    ``.mine(db)``; ``param`` is the current sweep value (e.g. min_sup)."""

    name: str
    build: Callable[[float], object]


@dataclass(slots=True)
class SweepResult:
    """All rows of one experiment sweep."""

    experiment: str
    x_name: str
    rows: list[dict] = field(default_factory=list)

    def series(self, y_name: str) -> dict[str, list[tuple[float, float]]]:
        """Extract ``{miner: [(x, y), ...]}`` for charting."""
        out: dict[str, list[tuple[float, float]]] = {}
        for row in self.rows:
            out.setdefault(row["miner"], []).append(
                (row[self.x_name], row[y_name])
            )
        return out

    def table(self, columns: Sequence[str] | None = None) -> str:
        """Render the rows as an ASCII table.

        Nested dict columns (the ``"obs"`` snapshots attached by
        ``collect_obs``) are skipped unless requested explicitly.
        """
        if columns is None:
            seen: dict[str, None] = {}
            for row in self.rows:
                for key, value in row.items():
                    if not isinstance(value, dict):
                        seen.setdefault(key)
            columns = list(seen)
        return render_table(self.rows, columns, title=self.experiment)

    def chart(self, y_name: str, *, log_y: bool = True, **kwargs: Any) -> str:
        """Render one metric as an ASCII figure."""
        return ascii_chart(
            self.series(y_name),
            title=f"{self.experiment}: {y_name} vs {self.x_name}",
            x_label=self.x_name,
            y_label=y_name,
            log_y=log_y,
            **kwargs,
        )


class ExperimentRunner:
    """Run miners across a sweep of one parameter on given databases."""

    def __init__(self, experiment: str, x_name: str = "min_sup") -> None:
        self.experiment = experiment
        self.x_name = x_name
        self.result = SweepResult(experiment, x_name)

    def run_point(
        self,
        db: ESequenceDatabase,
        x_value: float,
        miners: Iterable[MinerSpec],
        *,
        track_memory: bool = False,
        collect_obs: bool = False,
        collect_profile: bool = False,
        collect_live: bool = False,
        collect_cost: bool = False,
        collect_provenance: bool = False,
        workers: int = 1,
        shard_strategy: str = "roundrobin",
        ledger_dir: str | Path | None = None,
        extra: dict | None = None,
    ) -> list[dict]:
        """Run every miner at one sweep point, appending result rows.

        ``collect_obs=True`` scopes a metrics registry around each run,
        flattens its per-phase timings into ``phase_<name>_s`` columns,
        and attaches the full snapshot under the row's ``"obs"`` key
        (excluded from tables, JSON-encoded in CSV exports).
        ``collect_profile=True`` attaches each run's per-phase profile
        under ``"profile"`` plus its hottest self-time function as the
        ``"profile_top"`` column — note profiling inflates ``runtime_s``
        (see :func:`repro.harness.metrics.measure`).
        ``workers`` routes each built miner through the sharded engine
        when > 1 (the spec's miner must be a
        :class:`~repro.core.ptpminer.PTPMiner`) and is emitted as a
        ``workers`` row column either way, so speedup sweeps can plot
        runtime against worker count without conflating rows.
        ``collect_live=True`` scopes a silent live telemetry collector
        around each run; sharded-engine runs then emit a
        ``shard_imbalance`` column (max/mean lane busy time, 1.0 =
        perfectly balanced, ``None`` below two reporting shards) and
        attach the lane summary under the row's ``"live"`` key.
        ``collect_cost=True`` scopes a search cost collector around
        each run and attaches its snapshot under the row's ``"cost"``
        key (JSON-encoded in CSV exports).
        ``collect_provenance=True`` scopes a pattern provenance
        collector around each run and attaches its snapshot under the
        row's ``"provenance"`` key, same encoding rules as ``"cost"``.
        ``shard_strategy="predicted"`` (with ``workers > 1``) builds a
        shard plan via :func:`repro.obs.planner.build_plan` —
        ledger-calibrated when ``ledger_dir`` names a run ledger with
        matching history, static-features otherwise — deals roots by
        LPT over the forecasts, and emits ``shard_strategy`` and
        ``predicted_imbalance`` row columns (the latter ``None`` for
        round-robin rows). Results are bit-for-bit identical either
        way; only load balance changes.

        Every row also carries a ``config_fingerprint`` column — the
        :func:`repro.obs.ledger.config_fingerprint` over the database's
        content digest, the spec name, its built config, and the worker
        count — so sweep rows are directly joinable against run-ledger
        entries for the same configuration.
        """
        from repro.core.config import SHARD_STRATEGIES
        from repro.obs.ledger import config_fingerprint, dataset_digest

        if shard_strategy not in SHARD_STRATEGIES:
            raise ValueError(
                f"unknown shard_strategy {shard_strategy!r}; "
                f"known: {list(SHARD_STRATEGIES)}"
            )
        db_digest = dataset_digest(db)
        new_rows = []
        for spec in miners:
            miner = spec.build(x_value)
            plan = None
            plan_brief = None
            if workers != 1 or shard_strategy != "roundrobin":
                from repro.core.ptpminer import PTPMiner
                from repro.engine import ShardedMiner

                if not isinstance(miner, PTPMiner):
                    raise ValueError(
                        "workers > 1 (or shard_strategy) requires a "
                        f"PTPMiner spec; {spec.name!r} built "
                        f"{type(miner).__name__}"
                    )
                if shard_strategy == "predicted":
                    from repro.obs import planner as _planner

                    plan = _planner.build_plan(
                        db,
                        miner.config,
                        workers=workers,
                        ledger_dir=ledger_dir,
                    )
                    plan_brief = _planner.plan_summary(plan)
                miner = ShardedMiner.from_config(
                    miner.config,
                    workers=workers,
                    shard_strategy=shard_strategy,
                    plan=plan,
                )
            built_config = getattr(miner, "config", None)
            fingerprint = config_fingerprint(
                dataset_digest=db_digest,
                miner=spec.name,
                min_sup=getattr(built_config, "min_sup", x_value),
                mode=getattr(built_config, "mode", None),
                workers=workers,
            )
            metrics = measure(
                lambda m=miner: m.mine(db),
                track_memory=track_memory,
                collect_obs=collect_obs,
                collect_profile=collect_profile,
                collect_live=collect_live,
                collect_cost=collect_cost,
                collect_provenance=collect_provenance,
                workers=workers,
                fingerprint=fingerprint,
                plan=plan_brief,
            )
            mining = metrics.result
            row = {
                "miner": spec.name,
                self.x_name: x_value,
                "dataset": db.name,
                "workers": metrics.workers,
                "shard_strategy": shard_strategy,
                "config_fingerprint": metrics.config_fingerprint,
                "runtime_s": round(metrics.elapsed_s, 4),
                "patterns": len(mining.patterns),
                "predicted_imbalance": (
                    None if plan_brief is None
                    else plan_brief["predicted_imbalance"].get(
                        shard_strategy
                    )
                ),
            }
            if track_memory:
                peak = metrics.peak_mem_mb
                row["peak_mem_mb"] = (
                    None if peak is None else round(peak, 3)
                )
            row.update(mining.counters.as_dict())
            if metrics.obs is not None:
                for key, seconds in metrics.obs["counters"].items():
                    if key.startswith("phase_seconds[phase="):
                        phase = key[len("phase_seconds[phase="):-1]
                        row[f"phase_{phase}_s"] = round(seconds, 4)
                row["obs"] = metrics.obs
            if metrics.profile is not None:
                from repro.obs.profile import hottest_function

                row["profile_top"] = hottest_function(metrics.profile)
                row["profile"] = metrics.profile
            if collect_cost and metrics.cost_profile is not None:
                row["cost"] = metrics.cost_profile
            if collect_provenance and metrics.provenance is not None:
                row["provenance"] = metrics.provenance
            if collect_live:
                summary = metrics.live_summary
                row["shard_imbalance"] = (
                    None if summary is None
                    else summary["shard_imbalance"]
                )
                if summary is not None:
                    row["live"] = summary
            if extra:
                row.update(extra)
            self.result.rows.append(row)
            new_rows.append(row)
        return new_rows

    def sweep(
        self,
        db: ESequenceDatabase,
        x_values: Sequence[float],
        miners: Sequence[MinerSpec],
        **kwargs: Any,
    ) -> SweepResult:
        """Run the full grid ``x_values x miners`` on one database."""
        for x_value in x_values:
            self.run_point(db, x_value, miners, **kwargs)
        return self.result


def write_rows_csv(result: SweepResult, path: str | Path) -> None:
    """Export a sweep's rows as CSV (for external plotting tools).

    Columns are the union of all row keys in first-seen order; missing
    cells are left empty. Nested dict values (attached ``"obs"``
    snapshots) are JSON-encoded into their cell.
    """
    import csv
    import json

    columns: dict[str, None] = {}
    for row in result.rows:
        for key in row:
            columns.setdefault(key)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns))
        writer.writeheader()
        for row in result.rows:
            writer.writerow(
                {
                    key: json.dumps(value, sort_keys=True)
                    if isinstance(value, dict)
                    else value
                    for key, value in row.items()
                }
            )
