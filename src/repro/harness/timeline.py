"""ASCII timeline rendering of e-sequences and patterns.

Interval data is hard to debug from triples; a timeline makes the
arrangement obvious at a glance:

.. code-block:: text

    fever    |=========|
    rash       |===|
    headache              |==|
             0    5    10    15

:func:`render_sequence` draws a concrete e-sequence against its real
timestamps; :func:`render_pattern` realizes a (complete) pattern on its
canonical dense timeline. Both are used by the examples and by humans
reading test failures.
"""

from __future__ import annotations

from repro.model.pattern import TemporalPattern
from repro.model.sequence import ESequence

__all__ = ["render_sequence", "render_pattern"]


def render_sequence(
    seq: ESequence, *, width: int = 60, label_width: int = 12
) -> str:
    """Draw every event of ``seq`` as a bar on a shared time axis.

    Point events render as a single ``*``. Events are listed in canonical
    order; duplicate labels get their occurrence suffix.
    """
    if len(seq) == 0:
        return "(empty e-sequence)"
    lo, hi = seq.span
    span = (hi - lo) or 1

    def column(t: float) -> int:
        return round((t - lo) / span * (width - 1))

    lines = []
    for event, occ in seq.occurrence_indexed():
        name = event.label if occ == 1 else f"{event.label}#{occ}"
        name = name[:label_width].ljust(label_width)
        row = [" "] * width
        c_start, c_finish = column(event.start), column(event.finish)
        if event.is_point:
            row[c_start] = "*"
        else:
            row[c_start] = "|"
            row[c_finish] = "|"
            for col in range(c_start + 1, c_finish):
                row[col] = "="
        lines.append(name + "".join(row))
    axis = " " * label_width + f"{lo:<g}".ljust(width - len(f"{hi:g}")) + f"{hi:g}"
    lines.append(axis)
    return "\n".join(lines)


def render_pattern(
    pattern: TemporalPattern, *, width: int = 60, label_width: int = 12
) -> str:
    """Draw a complete pattern on its canonical dense timeline.

    Raises :class:`ValueError` for incomplete patterns (they have no
    realization to draw).
    """
    return render_sequence(
        pattern.to_esequence(), width=width, label_width=label_width
    )
