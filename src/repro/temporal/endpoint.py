"""The endpoint representation of interval sequences.

This is the representation at the heart of P-TPMiner. Every interval event
``(e, s, f)`` is decomposed into a **start endpoint** ``e+`` at time ``s``
and a **finish endpoint** ``e-`` at time ``f``; a point event contributes a
single **point endpoint** ``e.``. Endpoints that occur at the same instant
are grouped into a **pointset**, and the time-ordered list of pointsets is
the **endpoint sequence**.

The transform is *lossless with respect to arrangement*: the pairwise Allen
relation of any two intervals can be read back off the relative order of
their four endpoints, so mining over endpoint sequences finds exactly the
frequent arrangements — while reducing the "complex relation between two
intervals" (13 cases) to plain sequence/itemset structure.

Duplicate event types are disambiguated with **occurrence indices**: the
k-th event carrying label ``e`` (in the canonical ``(start, finish, label)``
order of the e-sequence) is occurrence ``k``, and its endpoints are
``(e, k, +)`` / ``(e, k, -)``. Matching the finish of occurrence ``k``
therefore always refers to the same interval as its start.

Two layers live here:

* a public, string-labelled layer (:class:`Endpoint`,
  :class:`EndpointSequence`) used by pattern objects, I/O and tests;
* an integer-interned layer (:class:`EncodedDatabase`,
  :class:`EncodedSequence`) used by the miners' hot loops, where a token is
  the pair ``(sym, occ)`` with ``sym = label_id * 3 + kind``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import NamedTuple, Optional

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = [
    "START",
    "FINISH",
    "POINT",
    "KIND_CHARS",
    "token_name",
    "Endpoint",
    "EndpointSequence",
    "EncodedSequence",
    "EncodedDatabase",
    "endpoint_sequence_of",
]

#: Endpoint kind codes. The numeric order (point < start < finish) is the
#: canonical intra-pointset ordering used everywhere. Points sort *before*
#: starts so that generation order agrees with the canonical occurrence
#: numbering: a point occurrence ``(ps, ps)`` precedes an interval
#: occurrence ``(ps, later)`` under the ``(start_ps, finish_ps)`` rule.
POINT, START, FINISH = 0, 1, 2

#: Display characters per kind code.
KIND_CHARS = {START: "+", FINISH: "-", POINT: "."}
_CHAR_KINDS = {char: kind for kind, char in KIND_CHARS.items()}


def token_name(label: str, occ: int, kind: int) -> str:
    """The display string of an endpoint token, e.g. ``"A+"``, ``"B#2-"``.

    The single source of the display grammar (occurrence suffix omitted
    when 1). :meth:`Endpoint.__str__` and every place that needs a root
    or token name without holding an :class:`Endpoint` instance — e.g.
    :mod:`repro.engine` mapping shard-plan cost forecasts onto root
    candidates, where constructing endpoints outside the encoder is
    forbidden — delegate here so names always agree.
    """
    suffix = f"#{occ}" if occ != 1 else ""
    return f"{label}{suffix}{KIND_CHARS[kind]}"


class Endpoint(NamedTuple):
    """One endpoint token: ``(label, occ, kind)``.

    ``occ`` is the occurrence index (1-based) of the interval this endpoint
    belongs to among same-label intervals; ``kind`` is one of
    :data:`START`, :data:`FINISH`, :data:`POINT`.
    """

    label: str
    occ: int
    kind: int

    @property
    def sort_key(self) -> tuple[str, int, int]:
        """Canonical ordering key: label, then kind, then occurrence."""
        return (self.label, self.kind, self.occ)

    def __str__(self) -> str:
        return token_name(self.label, self.occ, self.kind)

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Parse the :meth:`__str__` form, e.g. ``"A#2+"`` or ``"B-"``."""
        text = text.strip()
        if not text or text[-1] not in _CHAR_KINDS:
            raise ValueError(f"cannot parse endpoint token {text!r}")
        kind = _CHAR_KINDS[text[-1]]
        body = text[:-1]
        occ = 1
        if "#" in body:
            body, _, occ_text = body.rpartition("#")
            occ = int(occ_text)
        if not body:
            raise ValueError(f"endpoint token {text!r} has an empty label")
        return cls(body, occ, kind)


Pointset = tuple[Endpoint, ...]


def _sorted_pointset(endpoints: Iterable[Endpoint]) -> Pointset:
    return tuple(sorted(endpoints, key=lambda e: e.sort_key))


class EndpointSequence:
    """A canonical endpoint sequence: a tuple of sorted pointsets.

    Built from an e-sequence via :meth:`from_esequence`; the inverse
    transform :meth:`to_esequence` reconstructs an e-sequence with integer
    timestamps ``0..m-1`` that has the identical arrangement (and thus an
    identical endpoint sequence) — the losslessness property the paper's
    representation relies on.
    """

    __slots__ = ("_pointsets",)

    def __init__(self, pointsets: Iterable[Iterable[Endpoint]]) -> None:
        sets = tuple(_sorted_pointset(ps) for ps in pointsets)
        if any(not ps for ps in sets):
            raise ValueError("endpoint sequences cannot contain empty pointsets")
        self._pointsets = sets

    @property
    def pointsets(self) -> tuple[Pointset, ...]:
        """The pointsets in temporal order, canonically sorted internally."""
        return self._pointsets

    def __len__(self) -> int:
        return len(self._pointsets)

    def __iter__(self) -> "Iterator[Pointset]":
        return iter(self._pointsets)

    def __getitem__(self, index: int) -> Pointset:
        return self._pointsets[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EndpointSequence):
            return NotImplemented
        return self._pointsets == other._pointsets

    def __hash__(self) -> int:
        return hash(self._pointsets)

    def __str__(self) -> str:
        return " ".join(
            "(" + " ".join(str(e) for e in ps) + ")" for ps in self._pointsets
        )

    def __repr__(self) -> str:
        return f"EndpointSequence<{self}>"

    @property
    def num_tokens(self) -> int:
        """Total number of endpoint tokens across pointsets."""
        return sum(len(ps) for ps in self._pointsets)

    @classmethod
    def from_esequence(cls, seq: ESequence) -> "EndpointSequence":
        """Decompose an e-sequence into its endpoint sequence."""
        by_time: dict[float, list[Endpoint]] = {}
        for event, occ in seq.occurrence_indexed():
            if event.is_point:
                by_time.setdefault(event.start, []).append(
                    Endpoint(event.label, occ, POINT)
                )
            else:
                by_time.setdefault(event.start, []).append(
                    Endpoint(event.label, occ, START)
                )
                by_time.setdefault(event.finish, []).append(
                    Endpoint(event.label, occ, FINISH)
                )
        return cls(by_time[t] for t in sorted(by_time))

    def to_esequence(self, sid: Optional[int] = None) -> ESequence:
        """Reconstruct an e-sequence with integer times ``0..m-1``.

        The reconstruction realizes the same arrangement: round-tripping
        through :meth:`from_esequence` yields an equal endpoint sequence.
        Raises :class:`ValueError` when the endpoint sequence is not
        well-formed (a finish without its start, or an unfinished start).
        """
        open_at: dict[tuple[str, int], int] = {}
        events: list[IntervalEvent] = []
        for time, pointset in enumerate(self._pointsets):
            for ep in pointset:
                key = (ep.label, ep.occ)
                if ep.kind == POINT:
                    events.append(IntervalEvent(time, time, ep.label))
                elif ep.kind == START:
                    if key in open_at:
                        raise ValueError(f"start {ep} appears twice")
                    open_at[key] = time
                else:
                    if key not in open_at:
                        raise ValueError(f"finish {ep} has no matching start")
                    start_time = open_at.pop(key)
                    if start_time == time:
                        raise ValueError(
                            f"interval {ep.label}#{ep.occ} starts and finishes "
                            "in the same pointset; encode it as a point event"
                        )
                    events.append(IntervalEvent(start_time, time, ep.label))
        if open_at:
            dangling = ", ".join(f"{l}#{o}" for l, o in sorted(open_at))
            raise ValueError(f"unfinished starts: {dangling}")
        return ESequence(events, sid=sid)


def endpoint_sequence_of(seq: ESequence) -> EndpointSequence:
    """Shorthand for :meth:`EndpointSequence.from_esequence`."""
    return EndpointSequence.from_esequence(seq)


# ---------------------------------------------------------------------------
# Integer-interned layer for the miners
# ---------------------------------------------------------------------------

#: An encoded token is ``(sym, occ)`` with ``sym = label_id * 3 + kind``.
Token = tuple[int, int]


class EncodedSequence:
    """One sequence in interned form, with precomputed position indices.

    Attributes
    ----------
    pointsets:
        ``tuple`` of pointsets; each pointset is a sorted ``tuple`` of
        ``(sym, occ)`` tokens.
    start_pos / finish_pos:
        For every interval occurrence ``(label_id, occ)``, the pointset
        index of its start/finish endpoint (for points, both equal the
        point's position). The miner uses ``finish_pos`` to locate — in
        O(1) — the unique pointset where a pending interval can close.
    times:
        The original timestamp of each pointset (same length as
        ``pointsets``); used by the time-constrained (``max_span``)
        mining mode, which bounds embeddings to a time window.
    """

    __slots__ = ("sid", "pointsets", "start_pos", "finish_pos", "times")

    def __init__(
        self,
        sid: int,
        pointsets: Sequence[Sequence[Token]],
        start_pos: dict[tuple[int, int], int],
        finish_pos: dict[tuple[int, int], int],
        times: Sequence[float] = (),
    ) -> None:
        self.sid = sid
        self.pointsets = tuple(tuple(sorted(ps)) for ps in pointsets)
        self.start_pos = start_pos
        self.finish_pos = finish_pos
        self.times = tuple(times)

    def __len__(self) -> int:
        return len(self.pointsets)


class EncodedDatabase:
    """A whole database interned for mining.

    Labels are interned in **sorted lexicographic order**, so the integer
    token order coincides with the public canonical endpoint order — the
    miners and the string-level pattern objects therefore agree on pattern
    canonical form without any re-sorting.
    """

    __slots__ = ("labels", "label_ids", "sequences", "size")

    def __init__(self, db: ESequenceDatabase) -> None:
        self.labels: tuple[str, ...] = tuple(sorted(db.alphabet))
        self.label_ids: dict[str, int] = {
            label: i for i, label in enumerate(self.labels)
        }
        self.size = len(db)
        self.sequences: list[EncodedSequence] = [
            self._encode_sequence(seq) for seq in db
        ]

    def _encode_sequence(self, seq: ESequence) -> EncodedSequence:
        by_time: dict[float, list[Token]] = {}
        spans: list[tuple[int, int, float, float, bool]] = []
        for event, occ in seq.occurrence_indexed():
            label_id = self.label_ids[event.label]
            if event.is_point:
                by_time.setdefault(event.start, []).append(
                    (label_id * 3 + POINT, occ)
                )
                spans.append((label_id, occ, event.start, event.start, True))
            else:
                by_time.setdefault(event.start, []).append(
                    (label_id * 3 + START, occ)
                )
                by_time.setdefault(event.finish, []).append(
                    (label_id * 3 + FINISH, occ)
                )
                spans.append((label_id, occ, event.start, event.finish, False))
        times = sorted(by_time)
        time_index = {t: i for i, t in enumerate(times)}
        start_pos: dict[tuple[int, int], int] = {}
        finish_pos: dict[tuple[int, int], int] = {}
        for label_id, occ, s, f, _is_point in spans:
            start_pos[(label_id, occ)] = time_index[s]
            finish_pos[(label_id, occ)] = time_index[f]
        assert seq.sid is not None
        return EncodedSequence(
            seq.sid, [by_time[t] for t in times], start_pos, finish_pos,
            times,
        )

    # -- sym helpers -------------------------------------------------------
    def sym(self, label: str, kind: int) -> int:
        """Interned symbol of ``(label, kind)``."""
        return self.label_ids[label] * 3 + kind

    def label_of(self, sym: int) -> str:
        """Label of an interned symbol."""
        return self.labels[sym // 3]

    @staticmethod
    def kind_of(sym: int) -> int:
        """Kind code of an interned symbol."""
        return sym % 3

    def decode_token(self, token: Token) -> Endpoint:
        """Convert an interned ``(sym, occ)`` token back to an Endpoint."""
        sym, occ = token
        return Endpoint(self.labels[sym // 3], occ, sym % 3)
