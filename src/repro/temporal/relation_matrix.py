"""Relation-matrix view of interval arrangements.

Before the endpoint representation, interval pattern miners (IEMiner and
relatives) described a k-interval pattern as an ordered list of labels
plus the upper-triangular matrix of pairwise Allen relations. This module
provides that view and the conversions in both directions:

* :meth:`ArrangementPattern.from_temporal_pattern` reads the matrix off a
  complete endpoint pattern (always succeeds — the endpoint representation
  is lossless);
* :meth:`ArrangementPattern.to_temporal_pattern` *realizes* a matrix as an
  endpoint pattern by solving the induced endpoint-order constraints
  (union-find for equalities, longest-path layering for strict orders),
  raising :class:`InconsistentArrangementError` when the matrix is not
  realizable — the consistency problem endpoint-based mining sidesteps.

The round-trip property (pattern -> matrix -> pattern is the identity) is
the formal statement of the paper's losslessness claim and is exercised by
property tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.model.event import IntervalEvent
from repro.model.pattern import TemporalPattern
from repro.temporal.allen import AllenRelation, relate

__all__ = ["ArrangementPattern", "InconsistentArrangementError"]


class InconsistentArrangementError(ValueError):
    """Raised when a relation matrix admits no realization."""


# Constraint templates: for relation R between intervals (sa, fa, sb, sb),
# the equalities and strict orders among endpoints. Endpoint codes:
# 0 = sa, 1 = fa, 2 = sb, 3 = fb. The intrinsic sa < fa, sb < fb orders are
# added separately.
_EQ_LT: dict[AllenRelation, tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]] = {
    AllenRelation.BEFORE: ((), ((1, 2),)),
    AllenRelation.MEETS: (((1, 2),), ()),
    AllenRelation.OVERLAPS: ((), ((0, 2), (2, 1), (1, 3))),
    AllenRelation.STARTS: (((0, 2),), ((1, 3),)),
    AllenRelation.DURING: ((), ((2, 0), (1, 3))),
    AllenRelation.FINISHES: (((1, 3),), ((2, 0),)),
    AllenRelation.EQUAL: (((0, 2), (1, 3)), ()),
}


def _constraints(
    rel: AllenRelation,
) -> tuple[tuple[tuple[int, int], ...], tuple[tuple[int, int], ...]]:
    """(equalities, strict orders) as endpoint-code pairs for a relation."""
    if rel in _EQ_LT:
        return _EQ_LT[rel]
    eqs, lts = _EQ_LT[rel.inverse]
    swap = {0: 2, 1: 3, 2: 0, 3: 1}
    return (
        tuple((swap[a], swap[b]) for a, b in eqs),
        tuple((swap[a], swap[b]) for a, b in lts),
    )


@dataclass(frozen=True)
class ArrangementPattern:
    """A k-interval arrangement as labels + pairwise Allen relations.

    ``relations[(i, j)]`` (``i < j``) is the relation of interval ``i`` to
    interval ``j`` in the canonical interval order.
    """

    labels: tuple[str, ...]
    relations: tuple[tuple[int, int, AllenRelation], ...]

    def __post_init__(self) -> None:
        k = len(self.labels)
        expected = {(i, j) for i in range(k) for j in range(i + 1, k)}
        got = {(i, j) for i, j, _ in self.relations}
        if got != expected:
            raise ValueError(
                f"relations must cover every pair i<j of {k} intervals; "
                f"missing {sorted(expected - got)}, extra {sorted(got - expected)}"
            )

    @property
    def size(self) -> int:
        """Number of intervals."""
        return len(self.labels)

    def relation(self, i: int, j: int) -> AllenRelation:
        """Relation of interval ``i`` to interval ``j`` (any order)."""
        if i == j:
            return AllenRelation.EQUAL
        for a, b, rel in self.relations:
            if (a, b) == (i, j):
                return rel
            if (a, b) == (j, i):
                return rel.inverse
        raise KeyError((i, j))

    def __str__(self) -> str:
        parts = [
            f"{self.labels[i]}[{i}] {rel.describe()} {self.labels[j]}[{j}]"
            for i, j, rel in sorted(self.relations)
        ]
        if not parts:
            return f"{self.labels[0]}[0]" if self.labels else "(empty)"
        return "; ".join(parts)

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_events(
        cls, events: list[IntervalEvent]
    ) -> "ArrangementPattern":
        """Read the matrix off concrete intervals (canonical event order)."""
        ordered = sorted(events)
        for ev in ordered:
            if ev.is_point:
                raise ValueError(
                    "relation matrices are defined over proper intervals; "
                    f"{ev} is a point event"
                )
        labels = tuple(ev.label for ev in ordered)
        relations = tuple(
            (i, j, relate(ordered[i], ordered[j]))
            for i, j in itertools.combinations(range(len(ordered)), 2)
        )
        return cls(labels, relations)

    @classmethod
    def from_temporal_pattern(
        cls, pattern: TemporalPattern
    ) -> "ArrangementPattern":
        """Convert a complete, interval-only endpoint pattern."""
        if not pattern.is_complete:
            raise ValueError("only complete patterns have a relation matrix")
        if pattern.is_hybrid:
            raise ValueError(
                "relation matrices are defined over proper intervals; "
                "the pattern contains point tokens"
            )
        return cls.from_events(list(pattern.to_esequence().events))

    def to_temporal_pattern(self) -> TemporalPattern:
        """Realize the matrix as the equivalent endpoint pattern.

        Raises :class:`InconsistentArrangementError` when the relations
        contradict each other (directly or transitively).
        """
        k = len(self.labels)
        if k == 0:
            raise ValueError("cannot realize an empty arrangement")
        n = 2 * k  # endpoint variables: 2i = start_i, 2i + 1 = finish_i

        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            parent[find(x)] = find(y)

        lt_edges: list[tuple[int, int]] = [
            (2 * i, 2 * i + 1) for i in range(k)
        ]
        for i, j, rel in self.relations:
            mapping = {0: 2 * i, 1: 2 * i + 1, 2: 2 * j, 3: 2 * j + 1}
            eqs, lts = _constraints(rel)
            for a, b in eqs:
                union(mapping[a], mapping[b])
            for a, b in lts:
                lt_edges.append((mapping[a], mapping[b]))

        # Longest-path layering over the strict-order DAG of representatives.
        adjacency: dict[int, set[int]] = {}
        indegree: dict[int, int] = {find(x): 0 for x in range(n)}
        for a, b in lt_edges:
            ra, rb = find(a), find(b)
            if ra == rb:
                raise InconsistentArrangementError(
                    f"arrangement {self} forces an endpoint before itself"
                )
            if rb not in adjacency.setdefault(ra, set()):
                adjacency[ra].add(rb)
                indegree[rb] += 1
        layer = {node: 0 for node in indegree}
        queue = [node for node, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for succ in adjacency.get(node, ()):
                layer[succ] = max(layer[succ], layer[node] + 1)
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if seen != len(indegree):
            raise InconsistentArrangementError(
                f"arrangement {self} contains a relation cycle"
            )
        events = [
            IntervalEvent(layer[find(2 * i)], layer[find(2 * i + 1)], label)
            for i, label in enumerate(self.labels)
        ]
        return TemporalPattern.from_arrangement(events)

    def is_consistent(self) -> bool:
        """``True`` when the matrix is realizable."""
        try:
            self.to_temporal_pattern()
        except InconsistentArrangementError:
            return False
        return True
