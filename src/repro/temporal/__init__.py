"""Temporal algebra: Allen relations, endpoint and matrix representations."""

from __future__ import annotations

from repro.temporal.allen import (
    ALL_RELATIONS,
    BASE_RELATIONS,
    AllenRelation,
    compose,
    relate,
    relate_general,
)
from repro.temporal.endpoint import (
    FINISH,
    POINT,
    START,
    EncodedDatabase,
    Endpoint,
    EndpointSequence,
    endpoint_sequence_of,
)
from repro.temporal.relation_matrix import (
    ArrangementPattern,
    InconsistentArrangementError,
)

__all__ = [
    "AllenRelation",
    "relate",
    "relate_general",
    "compose",
    "ALL_RELATIONS",
    "BASE_RELATIONS",
    "Endpoint",
    "EndpointSequence",
    "EncodedDatabase",
    "endpoint_sequence_of",
    "START",
    "FINISH",
    "POINT",
    "ArrangementPattern",
    "InconsistentArrangementError",
]
