"""Allen's interval algebra.

Allen (1983) classifies the relative position of two proper intervals
``A = [a.s, a.f]`` and ``B = [b.s, b.f]`` (with ``s < f``) into exactly one
of **13 relations**: six base relations, their six inverses, and ``EQUAL``.
This module provides:

* :class:`AllenRelation` — the 13-relation enumeration with inverses;
* :func:`relate` — classify a pair of :class:`IntervalEvent` objects;
* :func:`compose` — the composition table ``R1 ; R2`` (which relations are
  possible between ``A`` and ``C`` given ``rel(A,B)=R1`` and
  ``rel(B,C)=R2``), derived *computationally* from the endpoint-order
  semantics rather than hand-transcribed, so it is correct by construction
  and verified by property tests;
* point-event aware classification via :func:`relate_general`, which the
  hybrid (HTP) pattern type needs.

The mining algorithms themselves never enumerate Allen relations — that is
the point of the endpoint representation — but the relation-matrix baseline
(IEMiner) and the pattern-interpretation utilities are built on this module.
"""

from __future__ import annotations

import enum
import itertools
from functools import lru_cache

from repro.model.event import IntervalEvent

__all__ = [
    "AllenRelation",
    "relate",
    "relate_general",
    "compose",
    "BASE_RELATIONS",
    "ALL_RELATIONS",
]


class AllenRelation(enum.Enum):
    """The 13 Allen relations. Values are stable short codes."""

    BEFORE = "b"
    MEETS = "m"
    OVERLAPS = "o"
    STARTS = "s"
    DURING = "d"
    FINISHES = "f"
    EQUAL = "e"
    AFTER = "bi"
    MET_BY = "mi"
    OVERLAPPED_BY = "oi"
    STARTED_BY = "si"
    CONTAINS = "di"
    FINISHED_BY = "fi"

    @property
    def inverse(self) -> "AllenRelation":
        """The relation of ``(B, A)`` given this relation for ``(A, B)``."""
        return _INVERSES[self]

    @property
    def is_base(self) -> bool:
        """``True`` for the six base relations and ``EQUAL``."""
        return self in BASE_RELATIONS or self is AllenRelation.EQUAL

    def describe(self) -> str:
        """Human-readable lowercase name, e.g. ``"overlapped-by"``."""
        return self.name.lower().replace("_", "-")


_INVERSES = {
    AllenRelation.BEFORE: AllenRelation.AFTER,
    AllenRelation.AFTER: AllenRelation.BEFORE,
    AllenRelation.MEETS: AllenRelation.MET_BY,
    AllenRelation.MET_BY: AllenRelation.MEETS,
    AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
    AllenRelation.OVERLAPPED_BY: AllenRelation.OVERLAPS,
    AllenRelation.STARTS: AllenRelation.STARTED_BY,
    AllenRelation.STARTED_BY: AllenRelation.STARTS,
    AllenRelation.DURING: AllenRelation.CONTAINS,
    AllenRelation.CONTAINS: AllenRelation.DURING,
    AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
    AllenRelation.FINISHED_BY: AllenRelation.FINISHES,
    AllenRelation.EQUAL: AllenRelation.EQUAL,
}

#: The six base relations (the "forward" half of the algebra).
BASE_RELATIONS: tuple[AllenRelation, ...] = (
    AllenRelation.BEFORE,
    AllenRelation.MEETS,
    AllenRelation.OVERLAPS,
    AllenRelation.STARTS,
    AllenRelation.DURING,
    AllenRelation.FINISHES,
)

#: All thirteen relations in a stable order.
ALL_RELATIONS: tuple[AllenRelation, ...] = tuple(AllenRelation)


def _relate_endpoints(
    a_s: float, a_f: float, b_s: float, b_f: float
) -> AllenRelation:
    """Classify two proper intervals given raw endpoints."""
    if a_f < b_s:
        return AllenRelation.BEFORE
    if b_f < a_s:
        return AllenRelation.AFTER
    if a_f == b_s:
        return AllenRelation.MEETS
    if b_f == a_s:
        return AllenRelation.MET_BY
    if a_s == b_s:
        if a_f == b_f:
            return AllenRelation.EQUAL
        return AllenRelation.STARTS if a_f < b_f else AllenRelation.STARTED_BY
    if a_f == b_f:
        return AllenRelation.FINISHES if a_s > b_s else AllenRelation.FINISHED_BY
    if a_s < b_s:
        if a_f > b_f:
            return AllenRelation.CONTAINS
        return AllenRelation.OVERLAPS
    # a_s > b_s from here on
    if a_f < b_f:
        return AllenRelation.DURING
    return AllenRelation.OVERLAPPED_BY


def relate(a: IntervalEvent, b: IntervalEvent) -> AllenRelation:
    """Return the Allen relation of proper intervals ``a`` and ``b``.

    Raises :class:`ValueError` if either event is a point event — the
    classical algebra is defined on proper intervals only; use
    :func:`relate_general` when point events may occur.
    """
    if a.is_point or b.is_point:
        raise ValueError(
            "Allen relations are defined on proper intervals; "
            "use relate_general() for point events"
        )
    return _relate_endpoints(a.start, a.finish, b.start, b.finish)


def relate_general(a: IntervalEvent, b: IntervalEvent) -> AllenRelation:
    """Allen-style classification extended to point events.

    A point event at ``t`` is treated as the degenerate interval
    ``[t, t]``; the conventions follow the endpoint representation (where
    a point contributes one token that may share a pointset with interval
    endpoints): a point at an interval's start is ``STARTS``, a point at
    an interval's finish is ``FINISHES``, a point strictly inside is
    ``DURING``, and two coincident points are ``EQUAL``.
    """
    if a.is_point and b.is_point:
        if a.start == b.start:
            return AllenRelation.EQUAL
        return (
            AllenRelation.BEFORE if a.start < b.start else AllenRelation.AFTER
        )
    if a.is_point:
        return _relate_point_to_interval(a.start, b.start, b.finish)
    if b.is_point:
        return _relate_point_to_interval(b.start, a.start, a.finish).inverse
    return _relate_endpoints(a.start, a.finish, b.start, b.finish)


def _relate_point_to_interval(
    t: float, b_s: float, b_f: float
) -> AllenRelation:
    """Relation of point ``t`` to proper interval ``[b_s, b_f]``."""
    if t < b_s:
        return AllenRelation.BEFORE
    if t == b_s:
        return AllenRelation.STARTS
    if t < b_f:
        return AllenRelation.DURING
    if t == b_f:
        return AllenRelation.FINISHES
    return AllenRelation.AFTER


@lru_cache(maxsize=1)
def _composition_table() -> dict[
    tuple[AllenRelation, AllenRelation], frozenset[AllenRelation]
]:
    """Derive the full 13x13 composition table from first principles.

    Allen relations depend only on the order/equality pattern of the four
    endpoints involved, so every realizable configuration of three proper
    intervals is realizable with endpoints drawn from ``{0, ..., 5}`` (six
    values for six endpoints). Enumerating all such triples is therefore a
    *complete* derivation of the table, not a sampling heuristic.
    """
    values = range(6)
    intervals = [
        (s, f) for s, f in itertools.product(values, values) if s < f
    ]
    table: dict[
        tuple[AllenRelation, AllenRelation], set[AllenRelation]
    ] = {}
    for (a_s, a_f), (b_s, b_f), (c_s, c_f) in itertools.product(
        intervals, repeat=3
    ):
        r_ab = _relate_endpoints(a_s, a_f, b_s, b_f)
        r_bc = _relate_endpoints(b_s, b_f, c_s, c_f)
        r_ac = _relate_endpoints(a_s, a_f, c_s, c_f)
        table.setdefault((r_ab, r_bc), set()).add(r_ac)
    return {key: frozenset(vals) for key, vals in table.items()}


def compose(
    r1: AllenRelation, r2: AllenRelation
) -> frozenset[AllenRelation]:
    """Composition ``r1 ; r2`` of the algebra.

    Returns the set of relations possible between ``A`` and ``C`` given
    ``relate(A, B) == r1`` and ``relate(B, C) == r2``. The table is
    computed once and cached. Used by the IEMiner baseline to reject
    inconsistent candidate relation matrices without counting them.
    """
    return _composition_table()[(r1, r2)]
