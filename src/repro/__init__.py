"""repro — P-TPMiner: mining temporal patterns in interval-based data.

A complete, production-quality reproduction of

    Yi-Cheng Chen, Wen-Chih Peng, Suh-Yin Lee.
    "Mining temporal patterns in interval-based data." ICDE 2016.

The library mines frequent **temporal patterns** (arrangements of
interval events, capturing their full pairwise Allen-relation structure)
and **hybrid temporal patterns** (arrangements mixing interval and point
events) from e-sequence databases, via the paper's endpoint
representation and pruning techniques. Baseline miners (TPrefixSpan,
IEMiner, H-DFS, brute force), workload generators, I/O formats, and a
benchmark harness reproducing every evaluation table/figure are included.

Quickstart
----------
>>> import repro
>>> db = repro.ESequenceDatabase.from_event_lists(
...     [[(0, 4, "fever"), (2, 6, "rash")],
...      [(0, 3, "fever"), (1, 5, "rash")]]
... )
>>> result = repro.mine(db, min_sup=1.0)
>>> print(result.patterns[0].pattern)
(fever+) (fever-)

See ``examples/`` for realistic scenarios and ``DESIGN.md`` for the
architecture and experiment map.
"""

from __future__ import annotations

from repro import contracts, obs
from repro.core.closed import filter_closed, filter_maximal
from repro.core.probabilistic import ProbabilisticTPMiner
from repro.core.pruning import PruningConfig
from repro.core.ptpminer import MiningResult, PTPMiner, mine
from repro.core.rules import TemporalRule, generate_rules
from repro.model.database import DatabaseStats, ESequenceDatabase
from repro.model.event import IntervalEvent, point_event
from repro.model.pattern import PatternWithSupport, TemporalPattern
from repro.model.sequence import ESequence
from repro.model.uncertain import UncertainESequenceDatabase
from repro.temporal.allen import AllenRelation, compose, relate, relate_general
from repro.temporal.endpoint import Endpoint, EndpointSequence
from repro.temporal.relation_matrix import ArrangementPattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # runtime contracts & observability
    "contracts",
    "obs",
    # data model
    "IntervalEvent",
    "point_event",
    "ESequence",
    "ESequenceDatabase",
    "DatabaseStats",
    "UncertainESequenceDatabase",
    # temporal algebra & representations
    "AllenRelation",
    "relate",
    "relate_general",
    "compose",
    "Endpoint",
    "EndpointSequence",
    "ArrangementPattern",
    # patterns & mining
    "TemporalPattern",
    "PatternWithSupport",
    "PTPMiner",
    "ProbabilisticTPMiner",
    "PruningConfig",
    "MiningResult",
    "mine",
    "filter_closed",
    "filter_maximal",
    "TemporalRule",
    "generate_rules",
]
