"""Baseline miners the paper compares against, plus the brute-force oracle."""

from __future__ import annotations

from repro.baselines.bruteforce import BruteForceMiner
from repro.baselines.hdfs import HDFSMiner
from repro.baselines.ieminer import IEMiner
from repro.baselines.tprefixspan import TPrefixSpanMiner

__all__ = [
    "TPrefixSpanMiner",
    "IEMiner",
    "HDFSMiner",
    "BruteForceMiner",
]
