"""H-DFS-style baseline (hybrid DFS with id-lists, reconstructed).

The "hybrid" DFS family (Papapetrou et al.'s arrangement mining) explores
patterns depth-first while carrying, per pattern, the **id-list** of
supporting sequences. Extensions are proposed from the *globally*
frequent endpoint vocabulary (no positional projection at all); the
candidate's id-list is first bounded by intersecting the parent's id-list
with the new label's id-list, and only the surviving sequences are
checked with the containment oracle.

Compared to TPrefixSpan this trades the positional postfix information
for cheap set intersections; compared to P-TPMiner it lacks both the
positional states and the pair tables. Output is identical (oracle-exact
counting over a candidate superset); benches F1-F3 report the cost.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines._shared import (
    I_EXT,
    S_EXT,
    PatternBuilder,
    publish_run,
    run_clock,
)
from repro.core.config import MinerConfig
from repro.core.pruning import PruneCounters
from repro.core.ptpminer import MiningResult
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport
from repro.temporal.endpoint import FINISH, POINT, EndpointSequence

__all__ = ["HDFSMiner"]


class HDFSMiner:
    """Depth-first id-list miner.

    Parameters mirror :class:`~repro.core.ptpminer.PTPMiner` (``min_sup``,
    ``mode``, ``max_tokens``).
    """

    def __init__(
        self,
        min_sup: float = 0.1,
        *,
        mode: str = "tp",
        max_tokens: Optional[int] = None,
    ) -> None:
        # All argument validation lives in MinerConfig.__post_init__.
        self.config = MinerConfig(
            min_sup=min_sup, mode=mode, max_tokens=max_tokens
        )

    @classmethod
    def from_config(cls, config: MinerConfig) -> "HDFSMiner":
        """Build from a config, rejecting options this miner lacks."""
        config.require_only("H-DFS", "mode", "max_tokens")
        miner = cls.__new__(cls)
        miner.config = config
        return miner

    @property
    def min_sup(self) -> float:
        """Support threshold (relative in ``(0, 1]`` or absolute)."""
        return self.config.min_sup

    @property
    def mode(self) -> str:
        """``"tp"`` or ``"htp"``."""
        return self.config.mode

    @property
    def max_tokens(self) -> Optional[int]:
        """Optional cap on pattern length in endpoint tokens."""
        return self.config.max_tokens

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine the full frequent pattern set of ``db``."""
        db.require_mode(self.mode)
        started = run_clock()
        threshold = db.absolute_support(self.min_sup)
        counters = PruneCounters()
        endpoint_seqs: dict[int, EndpointSequence] = {
            seq.sid: EndpointSequence.from_esequence(seq)
            for seq in db
            if len(seq) > 0
        }

        # Global id-lists per (label, flavour).
        interval_ids: dict[str, frozenset[int]] = {}
        point_ids: dict[str, frozenset[int]] = {}
        for seq in db:
            for label in {ev.label for ev in seq if ev.is_interval}:
                interval_ids[label] = interval_ids.get(
                    label, frozenset()
                ) | {seq.sid}
            for label in {ev.label for ev in seq if ev.is_point}:
                point_ids[label] = point_ids.get(label, frozenset()) | {
                    seq.sid
                }
        labels_start = {
            label
            for label, ids in interval_ids.items()
            if len(ids) >= threshold
        }
        labels_point = (
            {
                label
                for label, ids in point_ids.items()
                if len(ids) >= threshold
            }
            if self.mode == "htp"
            else set()
        )

        results: list[PatternWithSupport] = []
        builder = PatternBuilder()

        def dfs(id_list: frozenset[int]) -> None:
            counters.nodes_expanded += 1
            if (
                self.max_tokens is not None
                and builder.num_tokens >= self.max_tokens
            ):
                return
            for ext in (I_EXT, S_EXT):
                for token in builder.feasible_tokens(
                    labels_start, labels_point, ext
                ):
                    counters.candidates_considered += 1
                    # id-list intersection bound before any matching work.
                    if token.kind == FINISH:
                        bound = id_list
                    else:
                        table = (
                            point_ids if token.kind == POINT else interval_ids
                        )
                        bound = id_list & table.get(token.label, frozenset())
                    if len(bound) < threshold:
                        continue
                    builder.push(token, ext)
                    candidate = builder.to_pattern()
                    supporters = frozenset(
                        sid
                        for sid in bound
                        if candidate.contained_in(endpoint_seqs[sid])
                    )
                    if len(supporters) >= threshold:
                        counters.candidates_frequent += 1
                        if builder.is_complete:
                            counters.patterns_emitted += 1
                            results.append(
                                PatternWithSupport(
                                    candidate, len(supporters)
                                )
                            )
                        dfs(supporters)
                    builder.pop(token, ext)

        dfs(frozenset(endpoint_seqs))
        results.sort(key=PatternWithSupport.sort_key)
        elapsed = run_clock() - started
        return MiningResult(
            patterns=results,
            threshold=float(threshold),
            db_size=len(db),
            elapsed=elapsed,
            counters=counters,
            metrics=publish_run(
                counters,
                patterns=len(results),
                elapsed=elapsed,
                db_size=len(db),
                threshold=float(threshold),
            ),
            miner="H-DFS",
            params={
                "min_sup": self.min_sup,
                "mode": self.mode,
                "max_tokens": self.max_tokens,
            },
        )
