"""IEMiner-style levelwise baseline (Patel, Hsu & Lee 2008, reconstructed).

IEMiner mines interval patterns breadth-first over the relation-matrix
representation: level ``k`` holds the frequent k-interval arrangements;
level ``k+1`` candidates are produced by adding one interval in every
temporally distinct position relative to the existing ones (equivalently:
every consistent combination of Allen relations against the existing
intervals), pruned by the Apriori condition, then counted.

Reconstruction notes
--------------------
* Candidate placement is enumerated *geometrically*: the k-pattern is
  realized on a stretched timeline and the new interval's endpoints are
  dropped into every pointset / gap combination. This enumerates exactly
  the consistent relation combinations while skipping the inconsistent
  ones a naive 13^k enumeration would generate — the strongest honest
  version of IEMiner's candidate generation.
* Support counting uses the containment oracle over the generating
  parent's supporter list (IEMiner's L2-style pruning corresponds to the
  Apriori subpattern check, which we apply in full).
* The relation-matrix view cannot express point events, so this baseline
  is TP-mode only — precisely the expressiveness gap the paper's second
  pattern type (HTP) highlights.

Its output equals P-TPMiner's on interval-only databases; its levelwise
candidate explosion is what benches F1/F2 measure.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Optional

from repro.baselines._shared import publish_run, run_clock
from repro.core.config import MinerConfig
from repro.core.pruning import PruneCounters
from repro.core.ptpminer import MiningResult
from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.pattern import PatternWithSupport, TemporalPattern
from repro.temporal.endpoint import EndpointSequence

__all__ = ["IEMiner"]


class IEMiner:
    """Levelwise relation-matrix miner (TP mode only).

    Parameters
    ----------
    min_sup:
        Relative support in ``(0, 1]`` or absolute count ``> 1``.
    max_size:
        Optional cap on pattern size in intervals (levels mined).
    """

    def __init__(
        self, min_sup: float = 0.1, *, max_size: Optional[int] = None
    ) -> None:
        # All argument validation lives in MinerConfig.__post_init__.
        self.config = MinerConfig(min_sup=min_sup, max_size=max_size)

    @classmethod
    def from_config(cls, config: MinerConfig) -> "IEMiner":
        """Build from a config, rejecting options this miner lacks.

        IEMiner is TP-only (relation matrices cannot express point
        events), so ``mode="htp"`` is rejected here too.
        """
        config.require_only("IEMiner", "max_size")
        miner = cls.__new__(cls)
        miner.config = config
        return miner

    @property
    def min_sup(self) -> float:
        """Support threshold (relative in ``(0, 1]`` or absolute)."""
        return self.config.min_sup

    @property
    def max_size(self) -> Optional[int]:
        """Optional cap on pattern size in intervals (levels mined)."""
        return self.config.max_size

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine the full frequent (interval-only) pattern set of ``db``."""
        db.require_mode("tp")
        started = run_clock()
        threshold = db.absolute_support(self.min_sup)
        counters = PruneCounters()
        endpoint_seqs: dict[int, EndpointSequence] = {
            seq.sid: EndpointSequence.from_esequence(seq)
            for seq in db
            if len(seq) > 0
        }

        # --- L1: frequent single intervals ------------------------------
        label_supporters: dict[str, list[int]] = {}
        for seq in db:
            for label in {ev.label for ev in seq if ev.is_interval}:
                label_supporters.setdefault(label, []).append(seq.sid)
        frequent_labels = sorted(
            label
            for label, sids in label_supporters.items()
            if len(sids) >= threshold
        )
        level: dict[TemporalPattern, list[int]] = {}
        for label in frequent_labels:
            pattern = TemporalPattern.from_arrangement(
                [IntervalEvent(0, 1, label)]
            )
            level[pattern] = label_supporters[label]
        all_frequent: dict[TemporalPattern, int] = {
            pattern: len(sids) for pattern, sids in level.items()
        }
        counters.candidates_frequent += len(level)

        size = 1
        while level and (self.max_size is None or size < self.max_size):
            size += 1
            candidates: dict[TemporalPattern, list[int]] = {}
            known = set(level)
            for parent, supporters in level.items():
                parent_events = list(parent.to_esequence().events)
                for candidate in self._placements(
                    parent_events, frequent_labels
                ):
                    if candidate in candidates:
                        continue
                    counters.candidates_considered += 1
                    if not self._apriori_ok(candidate, known):
                        counters.extras["pruned_apriori"] = (
                            counters.extras.get("pruned_apriori", 0) + 1
                        )
                        continue
                    candidates[candidate] = supporters
            next_level: dict[TemporalPattern, list[int]] = {}
            for candidate, parent_supporters in candidates.items():
                supporters = [
                    sid
                    for sid in parent_supporters
                    if candidate.contained_in(endpoint_seqs[sid])
                ]
                if len(supporters) >= threshold:
                    next_level[candidate] = supporters
                    all_frequent[candidate] = len(supporters)
                    counters.candidates_frequent += 1
            level = next_level

        patterns = [
            PatternWithSupport(pattern, support)
            for pattern, support in all_frequent.items()
        ]
        patterns.sort(key=PatternWithSupport.sort_key)
        counters.patterns_emitted = len(patterns)
        elapsed = run_clock() - started
        return MiningResult(
            patterns=patterns,
            threshold=float(threshold),
            db_size=len(db),
            elapsed=elapsed,
            counters=counters,
            metrics=publish_run(
                counters,
                patterns=len(patterns),
                elapsed=elapsed,
                db_size=len(db),
                threshold=float(threshold),
            ),
            miner="IEMiner",
            params={"min_sup": self.min_sup, "max_size": self.max_size},
        )

    # ------------------------------------------------------------------
    # candidate generation
    # ------------------------------------------------------------------
    @staticmethod
    def _placements(
        parent_events: Sequence[IntervalEvent], labels: Iterable[str]
    ) -> Iterator[TemporalPattern]:
        """Yield every arrangement extending the parent by one interval.

        The parent is realized at times ``0..m-1`` stretched by 3 so each
        gap offers two distinct slots; the new interval's start/finish
        visit every pointset time and every gap slot. Duplicate
        arrangements collapse through pattern canonicalization.
        """
        times = sorted(
            {t for ev in parent_events for t in (ev.start, ev.finish)}
        )
        remap = {t: 3 * i for i, t in enumerate(times)}
        stretched = [
            IntervalEvent(remap[ev.start], remap[ev.finish], ev.label)
            for ev in parent_events
        ]
        m = len(times)
        slots: list[float] = []
        for g in range(m + 1):
            slots.extend((3 * g - 2, 3 * g - 1))  # two slots inside gap g
        slots.extend(3 * p for p in range(m))  # existing pointsets
        slots.sort()
        seen: set[TemporalPattern] = set()
        for label in labels:
            for i, t_start in enumerate(slots):
                for t_finish in slots[i + 1:]:
                    candidate = TemporalPattern.from_arrangement(
                        stretched
                        + [IntervalEvent(t_start, t_finish, label)]
                    )
                    if candidate not in seen:
                        seen.add(candidate)
                        yield candidate

    @staticmethod
    def _apriori_ok(
        candidate: TemporalPattern, known: set[TemporalPattern]
    ) -> bool:
        """Every one-interval-deleted subpattern must be frequent."""
        events = list(candidate.to_esequence().events)
        for drop in range(len(events)):
            rest = events[:drop] + events[drop + 1:]
            if TemporalPattern.from_arrangement(rest) not in known:
                return False
        return True
