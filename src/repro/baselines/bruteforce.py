"""Brute-force generate-and-test miner — the correctness oracle.

Enumerates every sub-arrangement (subset of event occurrences) of every
sequence, canonicalizes it into a :class:`TemporalPattern`, and counts
exact supports in a dictionary. Exponential in sequence length, so it is
only usable on small inputs — which is exactly its job: the test suite
cross-checks every other miner against it, and the agreement experiment
(bench T3) reports the comparison table.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.baselines._shared import publish_run, run_clock
from repro.core.config import MinerConfig
from repro.core.pruning import PruneCounters
from repro.core.ptpminer import MiningResult
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport, TemporalPattern

__all__ = ["BruteForceMiner"]


class BruteForceMiner:
    """Exact miner by exhaustive sub-arrangement enumeration.

    Parameters
    ----------
    min_sup:
        Relative support in ``(0, 1]`` or absolute count ``> 1``.
    mode:
        ``"tp"`` or ``"htp"`` with the same semantics as
        :class:`~repro.core.ptpminer.PTPMiner`.
    max_size:
        Cap on pattern size in event occurrences; ``None`` enumerates all
        subsets (use only on very small sequences).
    max_span:
        Optional time constraint matching
        :class:`~repro.core.ptpminer.PTPMiner`'s: only sub-arrangements
        whose events fit in a ``max_span`` time window count as
        embeddings.
    """

    def __init__(
        self,
        min_sup: float = 0.1,
        *,
        mode: str = "tp",
        max_size: Optional[int] = None,
        max_span: Optional[float] = None,
    ) -> None:
        # All argument validation lives in MinerConfig.__post_init__.
        self.config = MinerConfig(
            min_sup=min_sup, mode=mode, max_size=max_size, max_span=max_span
        )

    @classmethod
    def from_config(cls, config: MinerConfig) -> "BruteForceMiner":
        """Build from a config, rejecting options this miner lacks."""
        config.require_only("BruteForce", "mode", "max_size", "max_span")
        miner = cls.__new__(cls)
        miner.config = config
        return miner

    @property
    def min_sup(self) -> float:
        """Support threshold (relative in ``(0, 1]`` or absolute)."""
        return self.config.min_sup

    @property
    def mode(self) -> str:
        """``"tp"`` or ``"htp"``."""
        return self.config.mode

    @property
    def max_size(self) -> Optional[int]:
        """Optional cap on pattern size in event occurrences."""
        return self.config.max_size

    @property
    def max_span(self) -> Optional[float]:
        """Optional embedding time-window constraint."""
        return self.config.max_span

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Enumerate, canonicalize, count, filter."""
        db.require_mode(self.mode)
        started = run_clock()
        threshold = db.absolute_support(self.min_sup)
        supporters: dict[TemporalPattern, set[int]] = {}
        counters = PruneCounters()
        for seq in db:
            events = seq.events
            top = len(events) if self.max_size is None else min(
                self.max_size, len(events)
            )
            seen_here: set[TemporalPattern] = set()
            for size in range(1, top + 1):
                for combo in itertools.combinations(events, size):
                    if self.max_span is not None:
                        span = max(ev.finish for ev in combo) - min(
                            ev.start for ev in combo
                        )
                        if span > self.max_span:
                            continue
                    pattern = TemporalPattern.from_arrangement(combo)
                    seen_here.add(pattern)
            counters.candidates_considered += len(seen_here)
            for pattern in seen_here:
                supporters.setdefault(pattern, set()).add(seq.sid)
        patterns = [
            PatternWithSupport(pattern, len(sids))
            for pattern, sids in supporters.items()
            if len(sids) >= threshold
        ]
        patterns.sort(key=PatternWithSupport.sort_key)
        counters.patterns_emitted = len(patterns)
        elapsed = run_clock() - started
        return MiningResult(
            patterns=patterns,
            threshold=float(threshold),
            db_size=len(db),
            elapsed=elapsed,
            counters=counters,
            metrics=publish_run(
                counters,
                patterns=len(patterns),
                elapsed=elapsed,
                db_size=len(db),
                threshold=float(threshold),
            ),
            miner="BruteForce",
            params={"min_sup": self.min_sup, "mode": self.mode,
                    "max_size": self.max_size},
        )
