"""Shared machinery for the verification-based baseline miners.

TPrefixSpan and H-DFS explore the *same* canonical pattern tree as
P-TPMiner (so all miners provably enumerate the same pattern language),
but count support by *verifying* candidate patterns with the containment
oracle instead of maintaining incremental projection states — which is
exactly the structural cost the paper's algorithm removes.

:class:`PatternBuilder` maintains the mutable pattern prefix during their
depth-first searches: the pointsets, occurrence numbering, the open
(unfinished) intervals, and the canonical-generation constraints
(I-extension token ordering and the duplicate finish rule).

This module is also where the baselines meet the observability layer:
:func:`run_clock` routes their boundary timing through the injectable
:mod:`repro.obs.clock`, and :func:`publish_run` mirrors a finished run's
:class:`~repro.core.pruning.PruneCounters` and run gauges into the
active metrics registry (a no-op dict when observability is off), so
harness sweeps and ``--metrics-out`` see baselines and P-TPMiner through
the same snapshot shape.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.pruning import PruneCounters
from repro.core.ptpminer import _run_snapshot
from repro.model.pattern import TemporalPattern
from repro.obs import clock as _obs_clock
from repro.obs import metrics as _obs_metrics
from repro.temporal.endpoint import FINISH, POINT, START, Endpoint

__all__ = ["PatternBuilder", "S_EXT", "I_EXT", "publish_run", "run_clock"]

S_EXT, I_EXT = "S", "I"


def run_clock() -> float:
    """Monotonic seconds from the observability clock (injectable)."""
    return _obs_clock.now()


def publish_run(
    counters: PruneCounters,
    *,
    patterns: int,
    elapsed: float,
    db_size: int,
    threshold: float,
) -> dict[str, Any]:
    """Publish a finished run to the active registry; return its snapshot.

    Returns ``{}`` when no registry is installed — the value baselines
    pass straight to :class:`~repro.core.ptpminer.MiningResult.metrics`.
    """
    return _run_snapshot(
        _obs_metrics.active_registry(),
        counters,
        patterns=patterns,
        elapsed=elapsed,
        db_size=db_size,
        threshold=threshold,
    )


class PatternBuilder:
    """Mutable canonical pattern prefix with push/pop extension."""

    def __init__(self) -> None:
        self.pointsets: list[list[Endpoint]] = []
        self._next_occ: dict[str, int] = {}
        self._open_start_ps: dict[tuple[str, int], int] = {}
        self.num_tokens = 0

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """No tokens yet."""
        return self.num_tokens == 0

    @property
    def is_complete(self) -> bool:
        """All started intervals are finished."""
        return not self._open_start_ps

    @property
    def last_token(self) -> Optional[Endpoint]:
        """The canonically largest token of the current pointset."""
        if not self.pointsets:
            return None
        return self.pointsets[-1][-1]

    def to_pattern(self) -> TemporalPattern:
        """Snapshot the current prefix as an immutable pattern."""
        return TemporalPattern(
            (list(ps) for ps in self.pointsets), validate=False
        )

    def next_occ(self, label: str) -> int:
        """Occurrence index a new start/point of ``label`` would get."""
        return self._next_occ.get(label, 0) + 1

    def allowed_finish(self, label: str, occ: int) -> bool:
        """Canonical duplicate rule (close lower same-pointset occs first)."""
        key = (label, occ)
        if key not in self._open_start_ps:
            return False
        my_ps = self._open_start_ps[key]
        return not any(
            olabel == label and oocc < occ and ops == my_ps
            for (olabel, oocc), ops in self._open_start_ps.items()
        )

    def feasible_tokens(
        self,
        labels_start: set[str],
        labels_point: set[str],
        ext: str,
    ) -> list[Endpoint]:
        """Pattern tokens appendable by the given extension type.

        ``labels_start`` / ``labels_point`` bound which labels may open a
        new interval / point occurrence (callers pass the globally or
        locally frequent labels); finish tokens are derived from the open
        set and the canonical rules.
        """
        if ext == I_EXT and self.is_empty:
            return []
        # PatternBuilder is itself a canonical generator: occurrence
        # numbers come from the builder's own bookkeeping, so the raw
        # token constructions below are sound (hence the R001
        # suppressions on each construction line).
        out: list[Endpoint] = []
        for label in labels_start:
            out.append(Endpoint(label, self.next_occ(label), START))  # repro-lint: ignore[R001]
        for label in labels_point:
            out.append(Endpoint(label, self.next_occ(label), POINT))  # repro-lint: ignore[R001]
        for label, occ in self._open_start_ps:
            if self.allowed_finish(label, occ):
                out.append(Endpoint(label, occ, FINISH))  # repro-lint: ignore[R001]
        if ext == I_EXT:
            last = self.last_token
            assert last is not None
            out = [tok for tok in out if tok.sort_key > last.sort_key]
        out.sort(key=lambda tok: tok.sort_key)
        return out

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def push(self, token: Endpoint, ext: str) -> None:
        """Append ``token`` by S- or I-extension (caller checked feasibility)."""
        if ext == S_EXT:
            self.pointsets.append([token])
        else:
            self.pointsets[-1].append(token)
        self.num_tokens += 1
        key = (token.label, token.occ)
        if token.kind == START:
            self._next_occ[token.label] = token.occ
            self._open_start_ps[key] = len(self.pointsets) - 1
        elif token.kind == POINT:
            self._next_occ[token.label] = token.occ
        else:
            del self._open_start_ps[key]

    def pop(self, token: Endpoint, ext: str) -> None:
        """Undo the matching :meth:`push`."""
        key = (token.label, token.occ)
        if token.kind == START:
            del self._open_start_ps[key]
            self._restore_next_occ(token)
        elif token.kind == POINT:
            self._restore_next_occ(token)
        else:
            start = token._replace(kind=START)
            for idx, ps in enumerate(self.pointsets):
                if start in ps:
                    self._open_start_ps[key] = idx
                    break
            else:  # pragma: no cover - structural invariant
                raise AssertionError("start token missing while re-opening")
        self.num_tokens -= 1
        if ext == S_EXT:
            self.pointsets.pop()
        else:
            self.pointsets[-1].pop()

    def _restore_next_occ(self, token: Endpoint) -> None:
        if token.occ > 1:
            self._next_occ[token.label] = token.occ - 1
        else:
            del self._next_occ[token.label]
