"""TPrefixSpan-style baseline (Wu & Chen 2007, reconstructed).

TPrefixSpan pioneered mining interval patterns over endpoint sequences
with a PrefixSpan-shaped search, but its projection is *positional only*:
it does not carry the pending/occurrence bindings P-TPMiner's states do,
so every candidate extension must be **validated** by re-matching the
whole candidate pattern against the supporting sequences.

This reconstruction keeps that structure faithfully:

* per supporting sequence it tracks the earliest pointset where a
  *relaxed* embedding of the prefix can end (counts of ``(label, kind)``
  tokens per pointset, no occurrence pairing) — a sound lower bound on
  every true embedding's end;
* candidate endpoints are read from the relaxed postfixes (a superset of
  the truly extendable endpoints);
* each candidate pattern's support is then counted exactly with the
  containment oracle over the parent's supporter list.

The output is therefore identical to P-TPMiner's; the runtime difference
(benches F1-F3) is the cost of oracle validation versus incremental
projection states.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from typing import Optional

from repro.baselines._shared import (
    I_EXT,
    S_EXT,
    PatternBuilder,
    publish_run,
    run_clock,
)
from repro.core.config import MinerConfig
from repro.core.pruning import PruneCounters
from repro.core.ptpminer import MiningResult
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport
from repro.temporal.endpoint import POINT, START, Endpoint, EndpointSequence

__all__ = ["TPrefixSpanMiner"]


def _pointset_profile(
    pointset: Iterable[Endpoint],
) -> Counter[tuple[str, int]]:
    """Multiset of (label, kind) per pointset, for relaxed matching."""
    return Counter((ep.label, ep.kind) for ep in pointset)


class TPrefixSpanMiner:
    """Endpoint-sequence miner with validation-based counting.

    Parameters mirror :class:`~repro.core.ptpminer.PTPMiner` (``min_sup``,
    ``mode``, ``max_tokens``); there are no pruning switches — the absence
    of P-TPMiner's prunings *is* this baseline.
    """

    def __init__(
        self,
        min_sup: float = 0.1,
        *,
        mode: str = "tp",
        max_tokens: Optional[int] = None,
    ) -> None:
        # All argument validation lives in MinerConfig.__post_init__.
        self.config = MinerConfig(
            min_sup=min_sup, mode=mode, max_tokens=max_tokens
        )

    @classmethod
    def from_config(cls, config: MinerConfig) -> "TPrefixSpanMiner":
        """Build from a config, rejecting options this miner lacks."""
        config.require_only("TPrefixSpan", "mode", "max_tokens")
        miner = cls.__new__(cls)
        miner.config = config
        return miner

    @property
    def min_sup(self) -> float:
        """Support threshold (relative in ``(0, 1]`` or absolute)."""
        return self.config.min_sup

    @property
    def mode(self) -> str:
        """``"tp"`` or ``"htp"``."""
        return self.config.mode

    @property
    def max_tokens(self) -> Optional[int]:
        """Optional cap on pattern length in endpoint tokens."""
        return self.config.max_tokens

    def mine(self, db: ESequenceDatabase) -> MiningResult:
        """Mine the full frequent pattern set of ``db``."""
        db.require_mode(self.mode)
        started = run_clock()
        threshold = db.absolute_support(self.min_sup)
        counters = PruneCounters()
        endpoint_seqs: dict[int, EndpointSequence] = {
            seq.sid: EndpointSequence.from_esequence(seq)
            for seq in db
            if len(seq) > 0
        }
        profiles: dict[int, list[Counter]] = {
            sid: [_pointset_profile(ps) for ps in eps]
            for sid, eps in endpoint_seqs.items()
        }
        results: list[PatternWithSupport] = []
        builder = PatternBuilder()

        def relaxed_end(sid: int, pattern_profiles: list[Counter]) -> int:
            """Earliest end pointset of a relaxed embedding, or -2."""
            target = profiles[sid]
            pos = -1
            for need in pattern_profiles:
                pos += 1
                while pos < len(target) and any(
                    target[pos][key] < cnt for key, cnt in need.items()
                ):
                    pos += 1
                if pos >= len(target):
                    return -2
            return pos

        def candidate_labels(
            supporters: list[int], ends: dict[int, int], iext: bool
        ) -> tuple[dict[str, int], dict[str, int]]:
            """Label -> #sequences offering it in the relaxed postfix."""
            start_df: Counter = Counter()
            point_df: Counter = Counter()
            # Scanning from the relaxed end (inclusive) is a sound superset
            # for both extension types; exact counting happens at validation.
            del iext
            for sid in supporters:
                seen: set[tuple[str, int]] = set()
                for ps in endpoint_seqs[sid].pointsets[max(ends[sid], 0):]:
                    for ep in ps:
                        seen.add((ep.label, ep.kind))
                for label, kind in seen:
                    if kind == START:
                        start_df[label] += 1
                    elif kind == POINT:
                        point_df[label] += 1
            return dict(start_df), dict(point_df)

        def dfs(supporters: list[int], ends: dict[int, int]) -> None:
            counters.nodes_expanded += 1
            if (
                self.max_tokens is not None
                and builder.num_tokens >= self.max_tokens
            ):
                return
            for ext in (I_EXT, S_EXT):
                start_df, point_df = candidate_labels(
                    supporters, ends, ext == I_EXT
                )
                labels_start = {
                    label
                    for label, df in start_df.items()
                    if df >= threshold
                }
                labels_point = (
                    {
                        label
                        for label, df in point_df.items()
                        if df >= threshold
                    }
                    if self.mode == "htp"
                    else set()
                )
                for token in builder.feasible_tokens(
                    labels_start, labels_point, ext
                ):
                    counters.candidates_considered += 1
                    builder.push(token, ext)
                    candidate = builder.to_pattern()
                    pattern_profiles = [
                        _pointset_profile(ps) for ps in candidate.pointsets
                    ]
                    new_supporters: list[int] = []
                    new_ends: dict[int, int] = {}
                    for sid in supporters:
                        end = relaxed_end(sid, pattern_profiles)
                        if end == -2:
                            continue
                        # Full validation: the oracle re-match that
                        # P-TPMiner's projection states make unnecessary.
                        if candidate.contained_in(endpoint_seqs[sid]):
                            new_supporters.append(sid)
                            new_ends[sid] = end
                    if len(new_supporters) >= threshold:
                        counters.candidates_frequent += 1
                        if builder.is_complete:
                            counters.patterns_emitted += 1
                            results.append(
                                PatternWithSupport(
                                    candidate, len(new_supporters)
                                )
                            )
                        dfs(new_supporters, new_ends)
                    builder.pop(token, ext)

        root_supporters = sorted(endpoint_seqs)
        root_ends = {sid: -1 for sid in root_supporters}
        dfs(root_supporters, root_ends)
        results.sort(key=PatternWithSupport.sort_key)
        elapsed = run_clock() - started
        return MiningResult(
            patterns=results,
            threshold=float(threshold),
            db_size=len(db),
            elapsed=elapsed,
            counters=counters,
            metrics=publish_run(
                counters,
                patterns=len(results),
                elapsed=elapsed,
                db_size=len(db),
                threshold=float(threshold),
            ),
            miner="TPrefixSpan",
            params={
                "min_sup": self.min_sup,
                "mode": self.mode,
                "max_tokens": self.max_tokens,
            },
        )
