"""E-sequence databases.

A database is the unit of mining: an ordered collection of
:class:`~repro.model.sequence.ESequence` records with dense integer sequence
ids. The class also carries the derived statistics every miner and the
experiment harness need (alphabet, size distributions, duplicate/point-event
prevalence) and support-threshold arithmetic shared by all algorithms.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

__all__ = ["ESequenceDatabase", "DatabaseStats"]


@dataclass(frozen=True, slots=True)
class DatabaseStats:
    """Descriptive statistics of a database (rows of the paper's Table 1)."""

    num_sequences: int
    num_events: int
    alphabet_size: int
    avg_events_per_sequence: float
    max_events_per_sequence: int
    avg_duration: float
    point_event_fraction: float
    duplicate_sequence_fraction: float

    def as_row(self) -> dict[str, object]:
        """Flatten to a plain dict for table rendering."""
        return {
            "sequences": self.num_sequences,
            "events": self.num_events,
            "|Sigma|": self.alphabet_size,
            "avg_len": round(self.avg_events_per_sequence, 2),
            "max_len": self.max_events_per_sequence,
            "avg_dur": round(self.avg_duration, 2),
            "point_frac": round(self.point_event_fraction, 3),
            "dup_frac": round(self.duplicate_sequence_fraction, 3),
        }


class ESequenceDatabase:
    """An immutable collection of e-sequences with dense sids.

    Parameters
    ----------
    sequences:
        Iterable of :class:`ESequence`. Each stored sequence is re-tagged
        with its position as ``sid`` so sids are always ``0..n-1``.
    name:
        Optional human-readable dataset name (used by the harness tables).

    Examples
    --------
    >>> from repro.model.event import IntervalEvent
    >>> db = ESequenceDatabase([
    ...     ESequence([IntervalEvent(0, 3, "A")]),
    ...     ESequence([IntervalEvent(1, 2, "B")]),
    ... ])
    >>> len(db)
    2
    >>> db.absolute_support(0.5)
    1
    """

    __slots__ = ("_sequences", "name")

    def __init__(self, sequences: Iterable[ESequence], name: str = "") -> None:
        seqs: list[ESequence] = []
        for i, seq in enumerate(sequences):
            if not isinstance(seq, ESequence):
                raise TypeError(f"expected ESequence, got {seq!r}")
            seqs.append(seq.with_sid(i))
        self._sequences: tuple[ESequence, ...] = tuple(seqs)
        self.name = name

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def sequences(self) -> tuple[ESequence, ...]:
        """All sequences, sid-ordered."""
        return self._sequences

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[ESequence]:
        return iter(self._sequences)

    def __getitem__(self, sid: int) -> ESequence:
        return self._sequences[sid]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ESequenceDatabase):
            return NotImplemented
        return self._sequences == other._sequences

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"ESequenceDatabase({len(self)} sequences{tag})"

    # ------------------------------------------------------------------
    # support arithmetic
    # ------------------------------------------------------------------
    def absolute_support(self, min_sup: float) -> int:
        """Convert a support threshold to an absolute sequence count.

        ``min_sup`` may be a relative frequency in ``(0, 1]`` or an absolute
        count ``>= 1``; either way the result is clamped to at least 1 so an
        empty database never yields a zero threshold.
        """
        if min_sup <= 0:
            raise ValueError(f"min_sup must be positive, got {min_sup}")
        if min_sup <= 1:
            return max(1, math.ceil(min_sup * len(self)))
        if min_sup != int(min_sup):
            raise ValueError(
                f"absolute min_sup must be an integer, got {min_sup}"
            )
        return int(min_sup)

    def require_mode(self, mode: str) -> None:
        """Raise unless this database is minable in ``mode``.

        ``"tp"`` mining rejects databases containing point events (strip
        them with :meth:`without_point_events` or mine with
        ``mode="htp"``). This is the single home of the check every
        miner used to duplicate at the top of its ``mine()``.
        """
        if mode != "tp":
            return
        for seq in self._sequences:
            if seq.has_point_events:
                raise ValueError(
                    "database contains point events; mine with "
                    'mode="htp" or strip them with '
                    "db.without_point_events()"
                )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def alphabet(self) -> frozenset[str]:
        """The union of all sequence alphabets."""
        out: set[str] = set()
        for seq in self._sequences:
            out.update(seq.alphabet)
        return frozenset(out)

    def label_document_frequency(self) -> Counter:
        """Number of sequences each label appears in (1-pattern supports)."""
        df: Counter = Counter()
        for seq in self._sequences:
            df.update(seq.alphabet)
        return df

    def stats(self) -> DatabaseStats:
        """Compute the descriptive statistics used in dataset tables."""
        n = len(self._sequences)
        if n == 0:
            return DatabaseStats(0, 0, 0, 0.0, 0, 0.0, 0.0, 0.0)
        lengths = [len(seq) for seq in self._sequences]
        events = [ev for seq in self._sequences for ev in seq]
        num_events = len(events)
        points = sum(1 for ev in events if ev.is_point)
        dups = sum(1 for seq in self._sequences if seq.has_duplicates)
        avg_dur = (
            sum(ev.duration for ev in events) / num_events if num_events else 0.0
        )
        return DatabaseStats(
            num_sequences=n,
            num_events=num_events,
            alphabet_size=len(self.alphabet),
            avg_events_per_sequence=num_events / n,
            max_events_per_sequence=max(lengths, default=0),
            avg_duration=avg_dur,
            point_event_fraction=points / num_events if num_events else 0.0,
            duplicate_sequence_fraction=dups / n,
        )

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def filter_sequences(
        self, predicate: Callable[[ESequence], bool]
    ) -> "ESequenceDatabase":
        """Keep sequences satisfying ``predicate`` (sids are re-densified)."""
        return ESequenceDatabase(
            (seq for seq in self._sequences if predicate(seq)), name=self.name
        )

    def restricted_to(self, labels: Iterable[str]) -> "ESequenceDatabase":
        """Project every sequence onto the given label set, dropping empties."""
        keep = frozenset(labels)
        projected = (seq.restricted_to(keep) for seq in self._sequences)
        return ESequenceDatabase(
            (seq for seq in projected if len(seq) > 0), name=self.name
        )

    def without_point_events(self) -> "ESequenceDatabase":
        """Strip instantaneous events (strict TP-mode preprocessing)."""
        kept = (
            ESequence(seq.interval_events(), sid=seq.sid)
            for seq in self._sequences
        )
        return ESequenceDatabase(
            (seq for seq in kept if len(seq) > 0), name=self.name
        )

    def sample(self, k: int, *, seed: int = 0) -> "ESequenceDatabase":
        """Deterministic pseudo-random sample of ``k`` sequences."""
        import random

        if k >= len(self):
            return self
        rng = random.Random(seed)
        picked = rng.sample(range(len(self)), k)
        picked.sort()
        return ESequenceDatabase(
            (self._sequences[i] for i in picked), name=self.name
        )

    def replicated(self, factor: int) -> "ESequenceDatabase":
        """Concatenate ``factor`` copies (the scalability-experiment knob).

        Replication preserves relative supports exactly, which is why the
        literature uses it to grow ``|D|`` without changing the pattern set.
        """
        if factor < 1:
            raise ValueError(f"replication factor must be >= 1, got {factor}")
        out: list[ESequence] = []
        for _ in range(factor):
            out.extend(self._sequences)
        return ESequenceDatabase(out, name=self.name)

    @classmethod
    def from_event_lists(
        cls,
        rows: Iterable[Iterable[tuple[float, float, str]]],
        name: str = "",
    ) -> "ESequenceDatabase":
        """Build a database from nested ``(start, finish, label)`` triples."""
        return cls(
            (
                ESequence(IntervalEvent.from_tuple(t) for t in row)
                for row in rows
            ),
            name=name,
        )
