"""Event-interval primitives.

The atomic object of interval-based sequential pattern mining is the
*event interval* (called an "interval event" or "event interval" in the
literature): a labelled closed interval ``(label, start, finish)`` on a
totally ordered time domain with ``start <= finish``.

Two flavours exist:

* **interval-based events** — ``start < finish``; the event persists over a
  duration (a fever, a stock rally, a held gesture);
* **point-based events** — ``start == finish``; the event is instantaneous
  (an alarm, a trade, a tap).

Pure *temporal patterns* (type 1 in the paper) are defined over
interval-based events only; *hybrid temporal patterns* (type 2) admit both.
:class:`IntervalEvent` represents both flavours uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["IntervalEvent", "point_event"]

#: Type alias for timestamps. Integers are preferred for exactness but any
#: totally ordered numeric type works.
Timestamp = float


@dataclass(frozen=True, slots=True, order=True)
class IntervalEvent:
    """A labelled event interval ``[start, finish]``.

    Instances are immutable, hashable, and totally ordered by
    ``(start, finish, label)`` — the canonical order used throughout the
    library so that e-sequences have a deterministic layout.

    Parameters
    ----------
    start:
        Beginning timestamp of the event.
    finish:
        Ending timestamp; must satisfy ``finish >= start``.
    label:
        The event type (symbol) drawn from the database alphabet.

    Examples
    --------
    >>> fever = IntervalEvent(3, 9, "fever")
    >>> fever.duration
    6
    >>> fever.is_point
    False
    >>> IntervalEvent(5, 5, "alarm").is_point
    True
    """

    start: Timestamp
    finish: Timestamp
    label: str

    def __post_init__(self) -> None:
        if self.finish < self.start:
            raise ValueError(
                f"event {self.label!r} has finish < start "
                f"({self.finish} < {self.start})"
            )
        if not isinstance(self.label, str) or not self.label:
            raise ValueError(f"event label must be a non-empty string, got {self.label!r}")

    @property
    def is_point(self) -> bool:
        """``True`` when the event is instantaneous (``start == finish``)."""
        return self.start == self.finish

    @property
    def is_interval(self) -> bool:
        """``True`` when the event has positive duration."""
        return self.start < self.finish

    @property
    def duration(self) -> Timestamp:
        """Length of the interval (zero for point events)."""
        return self.finish - self.start

    def shifted(self, delta: Timestamp) -> "IntervalEvent":
        """Return a copy translated by ``delta`` time units."""
        return IntervalEvent(self.start + delta, self.finish + delta, self.label)

    def scaled(self, factor: Timestamp) -> "IntervalEvent":
        """Return a copy with both endpoints multiplied by ``factor``.

        ``factor`` must be positive so that temporal order is preserved.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return IntervalEvent(self.start * factor, self.finish * factor, self.label)

    def overlaps_time(self, other: "IntervalEvent") -> bool:
        """``True`` when the two closed intervals share at least one instant."""
        return self.start <= other.finish and other.start <= self.finish

    def contains_time(self, t: Timestamp) -> bool:
        """``True`` when instant ``t`` falls inside the closed interval."""
        return self.start <= t <= self.finish

    def as_tuple(self) -> tuple[Timestamp, Timestamp, str]:
        """Return the plain ``(start, finish, label)`` triple."""
        return (self.start, self.finish, self.label)

    @classmethod
    def from_tuple(cls, triple: tuple[Any, Any, Any]) -> "IntervalEvent":
        """Build an event from a ``(start, finish, label)`` triple."""
        start, finish, label = triple
        return cls(start, finish, str(label))

    def __str__(self) -> str:
        if self.is_point:
            return f"{self.label}@{self.start:g}"
        return f"{self.label}[{self.start:g},{self.finish:g}]"


def point_event(t: Timestamp, label: str) -> IntervalEvent:
    """Convenience constructor for an instantaneous event at time ``t``."""
    return IntervalEvent(t, t, label)
