"""Temporal patterns over the endpoint representation.

A **temporal pattern** is an endpoint sequence whose occurrence indices
refer to *pattern-local* interval occurrences: ``(A, 1, +)`` is "the first
A-interval of the pattern". Patterns come in the paper's two types:

* **TP** (type 1): start/finish tokens only — pure interval arrangements;
* **HTP** (type 2): point tokens may appear alongside interval tokens.

Well-formedness and canonical form
----------------------------------
A pattern is *valid* when every finish token is preceded (in pointset
order) by the start token of the same ``(label, occ)`` — prefixes produced
during mining are valid but possibly *incomplete* (some starts not yet
finished). A *complete* pattern has no open starts; only complete patterns
are mining output.

Canonical numbering removes the symmetry of duplicate labels: same-label
occurrences are numbered by ``(start pointset, finish pointset)``
lexicographically. Consequently, when two same-label intervals start in the
same pointset, the lower occurrence must finish no later than the higher
one — the miner enforces this during generation and
:meth:`TemporalPattern.canonical` re-establishes it for arbitrary input.

Containment
-----------
Pattern ``P`` is contained in e-sequence ``q`` when there is an injective,
label-preserving mapping of P's occurrences to q's occurrences and a
strictly increasing mapping of P's pointsets to q's pointsets under which
every pattern token lands in its image pointset. :meth:`contained_in`
implements this by backtracking and serves as the semantic oracle against
which all miners are tested.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence
from typing import Optional, Union

from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence
from repro.temporal.endpoint import (
    FINISH,
    POINT,
    START,
    Endpoint,
    EndpointSequence,
)

__all__ = ["TemporalPattern", "PatternWithSupport"]

_OccKey = tuple[str, int]


class TemporalPattern:
    """An immutable temporal pattern (see module docstring).

    Parameters
    ----------
    pointsets:
        Iterable of iterables of :class:`Endpoint` tokens with
        pattern-local occurrence indices.
    validate:
        When ``True`` (default), reject structurally invalid input:
        orphan finishes, duplicated tokens, empty pointsets, or
        non-contiguous occurrence numbering.
    """

    __slots__ = ("_pointsets", "_hash")

    def __init__(
        self,
        pointsets: Iterable[Iterable[Endpoint]],
        *,
        validate: bool = True,
    ) -> None:
        sets = tuple(
            tuple(sorted(ps, key=lambda e: e.sort_key)) for ps in pointsets
        )
        self._pointsets = sets
        self._hash: Optional[int] = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        if any(not ps for ps in self._pointsets):
            raise ValueError("patterns cannot contain empty pointsets")
        open_occs: set[_OccKey] = set()
        seen_occs: set[tuple[_OccKey, int]] = set()
        max_occ: dict[str, int] = {}
        for ps in self._pointsets:
            if len(set(ps)) != len(ps):
                raise ValueError(f"duplicate token inside pointset {ps}")
            for ep in ps:
                key = (ep.label, ep.occ)
                if ep.occ < 1:
                    raise ValueError(f"occurrence index must be >= 1: {ep}")
                if ep.kind == FINISH:
                    if key not in open_occs:
                        raise ValueError(f"finish {ep} precedes its start")
                    open_occs.discard(key)
                else:
                    if (key, START) in seen_occs or (key, POINT) in seen_occs:
                        raise ValueError(f"occurrence {key} introduced twice")
                    seen_occs.add((key, START if ep.kind == START else POINT))
                    if ep.occ != max_occ.get(ep.label, 0) + 1:
                        raise ValueError(
                            f"occurrence numbering of label {ep.label!r} is "
                            f"not contiguous at {ep}"
                        )
                    max_occ[ep.label] = ep.occ
                    if ep.kind == START:
                        open_occs.add(key)
            # finishes within the same pointset as their start are invalid
            # for proper intervals; to_esequence() would reject them too.
            starts_here = {
                (e.label, e.occ) for e in ps if e.kind == START
            }
            finishes_here = {
                (e.label, e.occ) for e in ps if e.kind == FINISH
            }
            if starts_here & finishes_here:
                raise ValueError(
                    "an interval cannot start and finish in one pointset; "
                    "use a point token"
                )

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def pointsets(self) -> tuple[tuple[Endpoint, ...], ...]:
        """The pattern's pointsets, canonically sorted internally."""
        return self._pointsets

    def __len__(self) -> int:
        return len(self._pointsets)

    def __iter__(self) -> Iterator[tuple[Endpoint, ...]]:
        return iter(self._pointsets)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalPattern):
            return NotImplemented
        return self._pointsets == other._pointsets

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._pointsets)
        return self._hash

    def __str__(self) -> str:
        return " ".join(
            "(" + " ".join(str(e) for e in ps) + ")" for ps in self._pointsets
        )

    def __repr__(self) -> str:
        return f"TemporalPattern<{self}>"

    @classmethod
    def parse(cls, text: str) -> "TemporalPattern":
        """Parse the :meth:`__str__` form, e.g. ``"(A+ B+) (A-) (B-)"``."""
        pointsets: list[list[Endpoint]] = []
        depth_open = False
        for chunk in text.replace("(", " ( ").replace(")", " ) ").split():
            if chunk == "(":
                if depth_open:
                    raise ValueError("nested '(' in pattern text")
                pointsets.append([])
                depth_open = True
            elif chunk == ")":
                if not depth_open:
                    raise ValueError("unbalanced ')' in pattern text")
                depth_open = False
            else:
                if not depth_open:
                    raise ValueError(f"token {chunk!r} outside a pointset")
                pointsets[-1].append(Endpoint.parse(chunk))
        if depth_open:
            raise ValueError("unterminated pointset in pattern text")
        return cls(pointsets)

    # ------------------------------------------------------------------
    # structural properties
    # ------------------------------------------------------------------
    @property
    def num_tokens(self) -> int:
        """Total endpoint tokens."""
        return sum(len(ps) for ps in self._pointsets)

    @property
    def num_intervals(self) -> int:
        """Number of interval occurrences (start tokens)."""
        return sum(
            1 for ps in self._pointsets for e in ps if e.kind == START
        )

    @property
    def num_points(self) -> int:
        """Number of point-event occurrences."""
        return sum(
            1 for ps in self._pointsets for e in ps if e.kind == POINT
        )

    @property
    def size(self) -> int:
        """Number of event occurrences (intervals + points)."""
        return self.num_intervals + self.num_points

    @property
    def open_occurrences(self) -> frozenset[_OccKey]:
        """Interval occurrences started but not finished."""
        open_occs: set[_OccKey] = set()
        for ps in self._pointsets:
            for ep in ps:
                if ep.kind == START:
                    open_occs.add((ep.label, ep.occ))
                elif ep.kind == FINISH:
                    open_occs.discard((ep.label, ep.occ))
        return frozenset(open_occs)

    @property
    def is_complete(self) -> bool:
        """``True`` when every started interval is finished."""
        return not self.open_occurrences

    @property
    def is_hybrid(self) -> bool:
        """``True`` when the pattern contains a point token (HTP type)."""
        return self.num_points > 0

    @property
    def alphabet(self) -> frozenset[str]:
        """Labels appearing in the pattern."""
        return frozenset(
            e.label for ps in self._pointsets for e in ps
        )

    # ------------------------------------------------------------------
    # canonical form
    # ------------------------------------------------------------------
    def canonical(self) -> "TemporalPattern":
        """Return the canonically numbered equivalent pattern.

        Same-label occurrences are renumbered by their
        ``(start pointset, finish pointset)`` position, which is the unique
        representative of the isomorphism class under occurrence
        relabelling.
        """
        positions: dict[_OccKey, list[int]] = {}
        for idx, ps in enumerate(self._pointsets):
            for ep in ps:
                key = (ep.label, ep.occ)
                positions.setdefault(key, []).append(idx)
        renumber: dict[_OccKey, int] = {}
        by_label: dict[str, list[tuple[int, int, int]]] = {}
        for (label, occ), pos in positions.items():
            start_ps, finish_ps = pos[0], pos[-1]
            by_label.setdefault(label, []).append((start_ps, finish_ps, occ))
        for label, triples in by_label.items():
            triples.sort()
            for new_occ, (_, _, occ) in enumerate(triples, start=1):
                renumber[(label, occ)] = new_occ
        return TemporalPattern(
            (
                (
                    e._replace(occ=renumber[(e.label, e.occ)])
                    for e in ps
                )
                for ps in self._pointsets
            ),
            validate=False,
        )

    @property
    def is_canonical(self) -> bool:
        """``True`` when the pattern equals its canonical form."""
        return self == self.canonical()

    # ------------------------------------------------------------------
    # construction from concrete arrangements
    # ------------------------------------------------------------------
    @classmethod
    def from_arrangement(
        cls, events: Iterable[IntervalEvent]
    ) -> "TemporalPattern":
        """Canonical pattern of a concrete set of events.

        The arrangement of the given events (their joint endpoint order) is
        abstracted into a pattern; the resulting pattern is always complete
        and canonical, and is contained in any e-sequence that includes the
        events.
        """
        seq = ESequence(events)
        if not seq:
            raise ValueError("cannot build a pattern from zero events")
        eps = EndpointSequence.from_esequence(seq)
        return cls(eps.pointsets, validate=False)

    def to_esequence(self) -> ESequence:
        """Realize a complete pattern as a concrete e-sequence.

        Raises :class:`ValueError` for incomplete patterns.
        """
        return EndpointSequence(self._pointsets).to_esequence()

    # ------------------------------------------------------------------
    # containment oracle
    # ------------------------------------------------------------------
    def contained_in(
        self, target: Union[ESequence, EndpointSequence, "TemporalPattern"]
    ) -> bool:
        """Exact containment test (see module docstring for semantics).

        ``target`` may be an e-sequence, a prebuilt endpoint sequence, or
        another pattern (whose occurrence indices then play the role of the
        sequence occurrences — giving the pattern-subsumption order used by
        the closed-pattern filter).
        """
        if isinstance(target, ESequence):
            pointsets = EndpointSequence.from_esequence(target).pointsets
        elif isinstance(target, EndpointSequence):
            pointsets = target.pointsets
        else:
            pointsets = target.pointsets
        return _match(self._pointsets, pointsets)

    def support_in(self, db: ESequenceDatabase) -> int:
        """Number of database sequences containing the pattern (oracle)."""
        return sum(1 for seq in db if self.contained_in(seq))

    def embeddings_in(
        self, seq: ESequence, *, limit: Optional[int] = None
    ) -> list[dict[tuple[str, int], IntervalEvent]]:
        """Enumerate concrete embeddings of the pattern in ``seq``.

        Each embedding maps every pattern occurrence ``(label, occ)`` to
        the :class:`IntervalEvent` it matched — the "which events
        triggered this pattern" view applications need (highlighting a
        clinical pathway in a chart, locating the matched loans).
        ``limit`` caps the enumeration (embeddings can be combinatorial
        with duplicate labels); ``None`` returns all distinct occurrence
        assignments.
        """
        eps = EndpointSequence.from_esequence(seq)
        event_of: dict[tuple[str, int], IntervalEvent] = {
            (event.label, occ): event
            for event, occ in seq.occurrence_indexed()
        }
        out: list[dict[tuple[str, int], IntervalEvent]] = []
        for phi in _iter_embeddings(self._pointsets, eps.pointsets):
            out.append(
                {
                    pattern_occ: event_of[(pattern_occ[0], socc)]
                    for pattern_occ, socc in phi.items()
                }
            )
            if limit is not None and len(out) >= limit:
                break
        return out

    # ------------------------------------------------------------------
    # interpretation
    # ------------------------------------------------------------------
    def allen_description(self) -> list[str]:
        """Render the pattern as pairwise Allen relations.

        Returns lines like ``"A#1 overlaps B#1"`` for every ordered pair of
        occurrences (in canonical occurrence order) — the human-readable
        view used by the examples and the real-data practicability tables.
        """
        from repro.temporal.allen import relate_general

        seq = self.to_esequence()
        tagged = [
            (event, occ) for event, occ in seq.occurrence_indexed()
        ]
        lines = []
        for (ev_a, occ_a), (ev_b, occ_b) in itertools.combinations(tagged, 2):
            rel = relate_general(ev_a, ev_b)
            name_a = f"{ev_a.label}#{occ_a}" if occ_a > 1 else ev_a.label
            name_b = f"{ev_b.label}#{occ_b}" if occ_b > 1 else ev_b.label
            lines.append(f"{name_a} {rel.describe()} {name_b}")
        return lines


def _iter_embeddings(
    pattern: Sequence[Sequence[Endpoint]],
    target: Sequence[Sequence[Endpoint]],
) -> Iterator[dict[_OccKey, int]]:
    """Yield distinct occurrence assignments phi for pattern in target.

    Each yielded value maps pattern occurrences ``(label, pocc)`` to
    sequence occurrence indices. Distinctness is by assignment — two
    different pointset alignments with the same occurrence binding yield
    one result.
    """
    if not pattern:
        yield {}
        return

    indexed: list[dict[tuple[str, int], tuple[int, ...]]] = []
    for ps in target:
        idx: dict[tuple[str, int], list[int]] = {}
        for ep in ps:
            idx.setdefault((ep.label, ep.kind), []).append(ep.occ)
        indexed.append({k: tuple(v) for k, v in idx.items()})

    n_pattern, n_target = len(pattern), len(target)
    seen: set[tuple[tuple[_OccKey, int], ...]] = set()

    def match_pointset(
        ps: Sequence[Endpoint],
        available: dict[tuple[str, int], tuple[int, ...]],
        phi: dict[_OccKey, int],
        used: set[_OccKey],
    ) -> Iterator[tuple[dict[_OccKey, int], set[_OccKey]]]:
        deterministic: list[tuple[str, int]] = []
        for ep in ps:
            if ep.kind == FINISH:
                socc = phi.get((ep.label, ep.occ))
                if socc is None or socc not in available.get(
                    (ep.label, FINISH), ()
                ):
                    return
                deterministic.append((ep.label, socc))
        free = [ep for ep in ps if ep.kind != FINISH]
        if not free:
            yield {}, set()
            return
        choice_lists: list[tuple[Endpoint, list[int]]] = []
        for ep in free:
            kind = START if ep.kind == START else POINT
            candidates = [
                socc
                for socc in available.get((ep.label, kind), ())
                if (ep.label, socc) not in used
            ]
            if not candidates:
                return
            choice_lists.append((ep, candidates))

        def assign(
            i: int, phi_add: dict[_OccKey, int], used_add: set[_OccKey]
        ) -> Iterator[tuple[dict[_OccKey, int], set[_OccKey]]]:
            if i == len(choice_lists):
                yield dict(phi_add), set(used_add)
                return
            ep, candidates = choice_lists[i]
            for socc in candidates:
                key = (ep.label, socc)
                if key in used_add:
                    continue
                phi_add[(ep.label, ep.occ)] = socc
                used_add.add(key)
                yield from assign(i + 1, phi_add, used_add)
                del phi_add[(ep.label, ep.occ)]
                used_add.discard(key)

        yield from assign(0, {}, set())

    def search(
        pi: int, t_from: int, phi: dict[_OccKey, int], used: set[_OccKey]
    ) -> Iterator[dict[_OccKey, int]]:
        if pi == n_pattern:
            key = tuple(sorted(phi.items()))
            if key not in seen:
                seen.add(key)
                yield dict(phi)
            return
        remaining = n_pattern - pi
        for ti in range(t_from, n_target - remaining + 1):
            for phi_add, used_add in match_pointset(
                pattern[pi], indexed[ti], phi, used
            ):
                phi.update(phi_add)
                used |= used_add
                yield from search(pi + 1, ti + 1, phi, used)
                for key in phi_add:
                    del phi[key]
                used -= used_add

    yield from search(0, 0, {}, set())


def _match(
    pattern: Sequence[Sequence[Endpoint]],
    target: Sequence[Sequence[Endpoint]],
) -> bool:
    """Backtracking containment check of pattern pointsets in target."""
    if not pattern:
        return True

    # Index each target pointset: (label, kind) -> tuple of occs present.
    indexed: list[dict[tuple[str, int], tuple[int, ...]]] = []
    for ps in target:
        idx: dict[tuple[str, int], list[int]] = {}
        for ep in ps:
            idx.setdefault((ep.label, ep.kind), []).append(ep.occ)
        indexed.append({k: tuple(v) for k, v in idx.items()})

    n_pattern, n_target = len(pattern), len(target)

    def match_pointset(
        ps: Sequence[Endpoint],
        available: dict[tuple[str, int], tuple[int, ...]],
        phi: dict[_OccKey, int],
        used: set[_OccKey],
    ) -> Iterator[tuple[dict[_OccKey, int], set[_OccKey]]]:
        """Yield (phi additions, used additions) for injective assignments."""
        deterministic: list[tuple[str, int]] = []
        free: list[Endpoint] = []
        for ep in ps:
            if ep.kind == FINISH:
                socc = phi.get((ep.label, ep.occ))
                if socc is None or socc not in available.get(
                    (ep.label, FINISH), ()
                ):
                    return
                deterministic.append((ep.label, socc))
            else:
                free.append(ep)
        # The deterministic finish tokens never collide with each other or
        # with the free tokens (distinct (label, kind, occ) triples).
        if not free:
            yield {}, set()
            return
        choice_lists: list[tuple[Endpoint, list[int]]] = []
        for ep in free:
            kind = START if ep.kind == START else POINT
            candidates = [
                socc
                for socc in available.get((ep.label, kind), ())
                if (ep.label, socc) not in used
            ]
            if not candidates:
                return
            choice_lists.append((ep, candidates))

        # Enumerate injective combinations over free tokens.
        def assign(
            i: int, phi_add: dict[_OccKey, int], used_add: set[_OccKey]
        ) -> Iterator[tuple[dict[_OccKey, int], set[_OccKey]]]:
            if i == len(choice_lists):
                yield dict(phi_add), set(used_add)
                return
            ep, candidates = choice_lists[i]
            for socc in candidates:
                key = (ep.label, socc)
                if key in used_add:
                    continue
                phi_add[(ep.label, ep.occ)] = socc
                used_add.add(key)
                yield from assign(i + 1, phi_add, used_add)
                del phi_add[(ep.label, ep.occ)]
                used_add.discard(key)

        yield from assign(0, {}, set())

    def search(
        pi: int, t_from: int, phi: dict[_OccKey, int], used: set[_OccKey]
    ) -> bool:
        if pi == n_pattern:
            return True
        remaining = n_pattern - pi
        for ti in range(t_from, n_target - remaining + 1):
            for phi_add, used_add in match_pointset(
                pattern[pi], indexed[ti], phi, used
            ):
                phi.update(phi_add)
                used |= used_add
                if search(pi + 1, ti + 1, phi, used):
                    return True
                for key in phi_add:
                    del phi[key]
                used -= used_add
        return False

    return search(0, 0, {}, set())


class PatternWithSupport(tuple):
    """A ``(pattern, support)`` pair with named access and stable ordering.

    Mining results are lists of these, sorted by
    ``(-support, num_tokens, str(pattern))`` so results compare exactly
    across miners.
    """

    __slots__ = ()

    def __new__(
        cls, pattern: TemporalPattern, support: float
    ) -> "PatternWithSupport":
        return super().__new__(cls, (pattern, support))

    def __getnewargs__(self) -> tuple[TemporalPattern, float]:
        # A tuple subclass with a mandatory-argument __new__ must spell
        # out its construction args or pickling fails (shard results
        # cross process boundaries in repro.engine).
        return (self[0], self[1])

    @property
    def pattern(self) -> TemporalPattern:
        """The mined pattern."""
        pattern: TemporalPattern = self[0]
        return pattern

    @property
    def support(self) -> float:
        """Support weight: a sequence count, or expected support for
        weighted/probabilistic mining (integer-valued supports are
        stored as ``int`` for readable results)."""
        support: float = self[1]
        return support

    def relative_support(self, db_size: int) -> float:
        """Support as a fraction of the database size."""
        return self.support / db_size if db_size else 0.0

    def __repr__(self) -> str:
        return f"PatternWithSupport({self.pattern!s}, support={self.support})"

    @staticmethod
    def sort_key(item: "PatternWithSupport") -> tuple[float, int, str]:
        """Canonical result ordering used by every miner."""
        return (-item.support, item.pattern.num_tokens, str(item.pattern))
