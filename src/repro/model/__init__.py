"""Data model: events, e-sequences, databases, patterns, uncertainty."""

from __future__ import annotations

from repro.model.database import DatabaseStats, ESequenceDatabase
from repro.model.event import IntervalEvent, point_event
from repro.model.pattern import PatternWithSupport, TemporalPattern
from repro.model.sequence import ESequence
from repro.model.uncertain import UncertainESequenceDatabase

__all__ = [
    "IntervalEvent",
    "point_event",
    "ESequence",
    "ESequenceDatabase",
    "DatabaseStats",
    "TemporalPattern",
    "PatternWithSupport",
    "UncertainESequenceDatabase",
]
