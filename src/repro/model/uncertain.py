"""Uncertain e-sequence databases (tuple-level uncertainty).

The probabilistic reading of P-TPMiner's "P-" is covered by the classical
*tuple uncertainty* model: each e-sequence exists independently with a
probability ``p_i`` (e.g. the confidence of the upstream event-detection
step that produced the sequence). Under this model a pattern's **expected
support** over the induced possible worlds has the closed form

    E[sup(P)] = sum over sequences s_i containing P of p_i

so expected-support mining is exactly weighted mining — no possible-world
enumeration is needed, and the miner's cost matches deterministic mining
(the claim bench F7 checks). Event-level uncertainty (independent
per-event probabilities) makes even the per-sequence containment
probability #P-hard, which is why this library intentionally supports
only the tractable tuple-level model.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.model.database import ESequenceDatabase
from repro.model.sequence import ESequence

__all__ = ["UncertainESequenceDatabase"]


class UncertainESequenceDatabase:
    """An e-sequence database with per-sequence existence probabilities.

    Parameters
    ----------
    sequences:
        The underlying sequences (sids are densified as usual).
    probabilities:
        One value in ``[0, 1]`` per sequence.
    name:
        Optional dataset name.

    Examples
    --------
    >>> from repro.model.event import IntervalEvent
    >>> udb = UncertainESequenceDatabase(
    ...     [ESequence([IntervalEvent(0, 2, "A")])], [0.8]
    ... )
    >>> udb.total_probability
    0.8
    """

    __slots__ = ("db", "probabilities")

    def __init__(
        self,
        sequences: Iterable[ESequence],
        probabilities: Sequence[float],
        name: str = "",
    ) -> None:
        self.db = ESequenceDatabase(sequences, name=name)
        probs = tuple(float(p) for p in probabilities)
        if len(probs) != len(self.db):
            raise ValueError(
                f"got {len(probs)} probabilities for {len(self.db)} sequences"
            )
        for p in probs:
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"existence probability {p} outside [0, 1]")
        self.probabilities = probs

    @classmethod
    def from_database(
        cls, db: ESequenceDatabase, probabilities: Sequence[float]
    ) -> "UncertainESequenceDatabase":
        """Wrap an existing database with probabilities."""
        return cls(db.sequences, probabilities, name=db.name)

    @classmethod
    def certain(cls, db: ESequenceDatabase) -> "UncertainESequenceDatabase":
        """All probabilities 1 — expected support equals plain support."""
        return cls(db.sequences, [1.0] * len(db), name=db.name)

    def __len__(self) -> int:
        return len(self.db)

    def __repr__(self) -> str:
        return (
            f"UncertainESequenceDatabase({len(self)} sequences, "
            f"total_probability={self.total_probability:.3f})"
        )

    @property
    def total_probability(self) -> float:
        """Sum of existence probabilities (the maximum expected support)."""
        return sum(self.probabilities)

    def expected_support_threshold(self, min_esup: float) -> float:
        """Convert a threshold to absolute expected-support units.

        Values in ``(0, 1]`` are fractions of :attr:`total_probability`;
        larger values are taken as absolute expected supports.
        """
        if min_esup <= 0:
            raise ValueError(f"min_esup must be positive, got {min_esup}")
        if min_esup <= 1:
            return min_esup * self.total_probability
        return float(min_esup)
