"""E-sequences: the per-entity containers of event intervals.

An **e-sequence** is the record of one observed entity (one patient, one
signing session, one library patron, one trading day): a finite multiset of
:class:`~repro.model.event.IntervalEvent` objects. Events are stored in the
canonical order ``(start, finish, label)`` so two e-sequences with the same
multiset of events compare equal and serialize identically.

Duplicate event types are allowed — the same label may occur several times in
one sequence (two fever episodes). The mining layer distinguishes the
occurrences through *occurrence indices* assigned in canonical order (the
k-th event with label ``e`` is occurrence ``k`` of ``e``); see
:mod:`repro.temporal.endpoint`.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from typing import Optional

from repro.model.event import IntervalEvent, Timestamp

__all__ = ["ESequence"]


class ESequence:
    """An immutable, canonically ordered sequence of event intervals.

    Parameters
    ----------
    events:
        Any iterable of :class:`IntervalEvent`; stored sorted by
        ``(start, finish, label)``.
    sid:
        Optional sequence identifier. Databases assign dense integer sids
        automatically when ``None``.

    Examples
    --------
    >>> from repro.model.event import IntervalEvent
    >>> seq = ESequence([IntervalEvent(0, 5, "A"), IntervalEvent(2, 8, "B")])
    >>> len(seq)
    2
    >>> seq.span
    (0, 8)
    """

    __slots__ = ("_events", "sid", "_hash")

    def __init__(
        self,
        events: Iterable[IntervalEvent],
        sid: Optional[int] = None,
    ) -> None:
        evs = list(events)
        for ev in evs:
            if not isinstance(ev, IntervalEvent):
                raise TypeError(f"ESequence expects IntervalEvent items, got {ev!r}")
        evs.sort()
        self._events: tuple[IntervalEvent, ...] = tuple(evs)
        self.sid = sid
        self._hash: Optional[int] = None

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[IntervalEvent, ...]:
        """The events in canonical ``(start, finish, label)`` order."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[IntervalEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> IntervalEvent:
        return self._events[index]

    def __bool__(self) -> bool:
        return bool(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ESequence):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._events)
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(str(ev) for ev in self._events)
        tag = "" if self.sid is None else f"sid={self.sid}, "
        return f"ESequence({tag}<{inner}>)"

    # ------------------------------------------------------------------
    # descriptive statistics
    # ------------------------------------------------------------------
    @property
    def span(self) -> tuple[Timestamp, Timestamp]:
        """``(earliest start, latest finish)`` over all events.

        Raises :class:`ValueError` on an empty sequence.
        """
        if not self._events:
            raise ValueError("span of an empty e-sequence is undefined")
        lo = min(ev.start for ev in self._events)
        hi = max(ev.finish for ev in self._events)
        return (lo, hi)

    @property
    def alphabet(self) -> frozenset[str]:
        """The set of event labels appearing in the sequence."""
        return frozenset(ev.label for ev in self._events)

    def label_counts(self) -> Counter:
        """Multiplicity of each label (for duplicate-type statistics)."""
        return Counter(ev.label for ev in self._events)

    @property
    def has_duplicates(self) -> bool:
        """``True`` when some label occurs more than once."""
        counts = self.label_counts()
        return bool(counts) and max(counts.values()) > 1

    @property
    def has_point_events(self) -> bool:
        """``True`` when the sequence contains an instantaneous event."""
        return any(ev.is_point for ev in self._events)

    def interval_events(self) -> tuple[IntervalEvent, ...]:
        """Only the positive-duration events."""
        return tuple(ev for ev in self._events if ev.is_interval)

    def point_events(self) -> tuple[IntervalEvent, ...]:
        """Only the instantaneous events."""
        return tuple(ev for ev in self._events if ev.is_point)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def shifted(self, delta: Timestamp) -> "ESequence":
        """Translate every event by ``delta`` (arrangement-preserving)."""
        return ESequence((ev.shifted(delta) for ev in self._events), sid=self.sid)

    def scaled(self, factor: Timestamp) -> "ESequence":
        """Scale every event's endpoints by ``factor > 0``."""
        return ESequence((ev.scaled(factor) for ev in self._events), sid=self.sid)

    def normalized(self) -> "ESequence":
        """Translate so the earliest start sits at time 0."""
        if not self._events:
            return self
        lo, _ = self.span
        return self.shifted(-lo)

    def restricted_to(self, labels: Iterable[str]) -> "ESequence":
        """Keep only events whose label is in ``labels``."""
        keep = frozenset(labels)
        return ESequence(
            (ev for ev in self._events if ev.label in keep), sid=self.sid
        )

    def with_sid(self, sid: int) -> "ESequence":
        """Return a copy carrying the given sequence id."""
        clone = ESequence.__new__(ESequence)
        clone._events = self._events
        clone.sid = sid
        clone._hash = None
        return clone

    def occurrence_indexed(self) -> list[tuple[IntervalEvent, int]]:
        """Pair each event with its occurrence index among same-label events.

        Occurrence indices start at 1 and follow canonical event order, so
        they are deterministic for a given multiset of events. The mining
        layer relies on this to disambiguate duplicate event types.
        """
        seen: Counter = Counter()
        out: list[tuple[IntervalEvent, int]] = []
        for ev in self._events:
            seen[ev.label] += 1
            out.append((ev, seen[ev.label]))
        return out
