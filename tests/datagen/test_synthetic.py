"""Tests for the QUEST-style synthetic generator."""

import pytest

from repro.datagen.synthetic import (
    STANDARD_DATASETS,
    SyntheticConfig,
    SyntheticGenerator,
    standard_dataset,
)


class TestConfig:
    def test_defaults_valid(self):
        SyntheticConfig()

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_sequences=0)
        with pytest.raises(ValueError):
            SyntheticConfig(num_labels=0)
        with pytest.raises(ValueError):
            SyntheticConfig(pattern_probability=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(point_fraction=-0.1)
        with pytest.raises(ValueError):
            SyntheticConfig(avg_events=0.5)

    def test_dataset_name_tag(self):
        cfg = SyntheticConfig(num_sequences=500, avg_events=8,
                              num_labels=50)
        assert cfg.dataset_name() == "D500C8N50"

    def test_dataset_name_point_suffix(self):
        cfg = SyntheticConfig(point_fraction=0.3)
        assert cfg.dataset_name().endswith("P0.3")

    def test_explicit_name_wins(self):
        assert SyntheticConfig(name="custom").dataset_name() == "custom"


class TestGeneration:
    def test_deterministic_under_seed(self):
        cfg = SyntheticConfig(num_sequences=50, seed=5)
        a = SyntheticGenerator(cfg).generate()
        b = SyntheticGenerator(cfg).generate()
        assert a == b

    def test_different_seeds_differ(self):
        a = SyntheticGenerator(SyntheticConfig(num_sequences=50, seed=1))
        b = SyntheticGenerator(SyntheticConfig(num_sequences=50, seed=2))
        assert a.generate() != b.generate()

    def test_size_and_alphabet_bounds(self):
        db = SyntheticGenerator(
            SyntheticConfig(num_sequences=80, num_labels=20)
        ).generate()
        assert len(db) == 80
        assert db.alphabet <= {f"e{i}" for i in range(20)}

    def test_avg_events_roughly_respected(self):
        db = SyntheticGenerator(
            SyntheticConfig(num_sequences=300, avg_events=8, seed=3)
        ).generate()
        avg = db.stats().avg_events_per_sequence
        assert 6 <= avg <= 11

    def test_point_fraction_produces_points(self):
        db = SyntheticGenerator(
            SyntheticConfig(num_sequences=100, point_fraction=0.5, seed=4)
        ).generate()
        frac = db.stats().point_event_fraction
        assert 0.3 <= frac <= 0.7

    def test_no_points_by_default(self):
        db = SyntheticGenerator(
            SyntheticConfig(num_sequences=100, seed=4)
        ).generate()
        assert db.stats().point_event_fraction == 0.0

    def test_planted_patterns_are_frequent(self):
        """With pattern_probability 1 and one template, the template's
        pairwise sub-arrangements must reach high support."""
        from repro.core.ptpminer import PTPMiner

        cfg = SyntheticConfig(
            num_sequences=100, num_patterns=1, pattern_probability=1.0,
            avg_events=4, num_labels=30, seed=9,
        )
        db = SyntheticGenerator(cfg).generate()
        result = PTPMiner(min_sup=0.5, max_size=2).mine(db)
        assert any(p.pattern.size == 2 for p in result.patterns)


class TestStandardDatasets:
    def test_registry_names(self):
        assert {"sparse", "dense", "scale-unit", "hybrid", "tiny"} <= set(
            STANDARD_DATASETS
        )

    def test_standard_dataset_generates(self):
        db = standard_dataset("tiny")
        assert db.name == "tiny"
        assert len(db) == 60

    def test_overrides(self):
        db = standard_dataset("tiny", num_sequences=10)
        assert len(db) == 10

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            standard_dataset("nope")

    def test_hybrid_has_points_others_do_not(self):
        assert standard_dataset(
            "hybrid", num_sequences=50
        ).stats().point_event_fraction > 0
        assert standard_dataset(
            "sparse", num_sequences=50
        ).stats().point_event_fraction == 0
