"""Tests for the real-dataset simulators (ASL, library, stock).

Beyond determinism and shape, these tests verify the *motifs* each
simulator plants — the domain arrangements the practicability experiment
(T2) is supposed to surface — are actually mineable at the documented
supports.
"""

from repro.core.ptpminer import PTPMiner
from repro.datagen import generate_asl, generate_library, generate_stock
from repro.model.pattern import TemporalPattern


def pat(text):
    return TemporalPattern.parse(text)


class TestDeterminism:
    def test_asl(self):
        assert generate_asl(50, seed=1) == generate_asl(50, seed=1)
        assert generate_asl(50, seed=1) != generate_asl(50, seed=2)

    def test_library(self):
        assert generate_library(50, seed=1) == generate_library(50, seed=1)

    def test_stock(self):
        assert generate_stock(50, seed=1) == generate_stock(50, seed=1)


class TestShapes:
    def test_asl_sizes_and_names(self):
        db = generate_asl(120, seed=3)
        assert len(db) == 120
        assert db.name == "asl-sim"
        assert "negation" in db.alphabet

    def test_asl_point_markers_flag(self):
        plain = generate_asl(60, seed=3)
        marked = generate_asl(60, seed=3, point_markers=True)
        assert plain.stats().point_event_fraction == 0
        assert marked.stats().point_event_fraction > 0

    def test_library_alphabet(self):
        db = generate_library(100, seed=3)
        assert {"textbook", "reference", "novel"} <= db.alphabet

    def test_stock_alphabet(self):
        db = generate_stock(100, seed=3)
        assert any(label.endswith("-up") for label in db.alphabet)
        assert any(label.endswith("-down") for label in db.alphabet)


class TestPlantedMotifs:
    def test_asl_negation_contains_not(self):
        db = generate_asl(300, seed=7)
        pattern = pat("(negation+) (NOT+) (NOT-) (negation-)")
        # Negation archetype probability ~0.2; containment deterministic.
        assert pattern.support_in(db) / len(db) > 0.1

    def test_asl_negation_overlaps_head_shake(self):
        db = generate_asl(300, seed=7)
        pattern = pat("(negation+) (head-shake+) (negation-) (head-shake-)")
        assert pattern.support_in(db) > 0.08 * len(db)

    def test_library_textbook_contains_reference(self):
        db = generate_library(400, seed=7)
        pattern = pat("(textbook+) (reference+) (reference-) (textbook-)")
        assert pattern.support_in(db) > 0.3 * len(db)

    def test_library_exam_meets_novel(self):
        db = generate_library(400, seed=7)
        pattern = pat("(exam-prep+) (exam-prep- novel+) (novel-)")
        assert pattern.support_in(db) > 0.15 * len(db)

    def test_stock_comovement(self):
        db = generate_stock(400, seed=7)
        found = PTPMiner(min_sup=0.15, max_size=2).mine(db)
        labels_of = {
            frozenset(item.pattern.alphabet)
            for item in found.patterns
            if item.pattern.size == 2
        }
        assert frozenset({"INDEX-up", "TECH1-up"}) in labels_of

    def test_stock_lead_lag_is_mineable(self):
        db = generate_stock(400, seed=7)
        pattern = pat("(LEAD-up+) (FOLLOW-up+) (LEAD-up-) (FOLLOW-up-)")
        assert pattern.support_in(db) > 0.1 * len(db)


class TestClinicalSimulator:
    def test_deterministic(self):
        from repro.datagen import generate_clinical

        assert generate_clinical(50, seed=1) == generate_clinical(50, seed=1)
        assert generate_clinical(50, seed=1) != generate_clinical(50, seed=2)

    def test_alphabet_and_name(self):
        from repro.datagen import generate_clinical

        db = generate_clinical(100, seed=3)
        assert db.name == "clinical-sim"
        assert {"fever", "antibiotic", "anticoagulant"} <= db.alphabet

    def test_point_boluses_flag(self):
        from repro.datagen import generate_clinical

        plain = generate_clinical(80, seed=3)
        dosed = generate_clinical(80, seed=3, point_boluses=True)
        assert plain.stats().point_event_fraction == 0
        assert dosed.stats().point_event_fraction > 0

    def test_infection_pathway_motifs(self):
        from repro.datagen import generate_clinical

        db = generate_clinical(400, seed=7)
        contains = pat("(fever+) (rash+) (rash-) (fever-)")
        assert contains.support_in(db) > 0.15 * len(db)
        outlasts = pat("(fever+) (antibiotic+) (fever-) (antibiotic-)")
        assert outlasts.support_in(db) > 0.2 * len(db)

    def test_cardiac_pathway_motifs(self):
        from repro.datagen import generate_clinical

        db = generate_clinical(400, seed=7)
        nested = pat(
            "(anticoagulant+) (monitoring+) (monitoring-) (anticoagulant-)"
        )
        assert nested.support_in(db) > 0.1 * len(db)

    def test_bolus_inside_antibiotic_is_htp_minable(self):
        from repro.core.ptpminer import PTPMiner
        from repro.datagen import generate_clinical

        db = generate_clinical(300, seed=7, point_boluses=True)
        result = PTPMiner(0.1, mode="htp").mine(db)
        inside = pat("(antibiotic+) (bolus.) (antibiotic-)")
        assert inside in result.pattern_set()
