"""Unit tests for ESequenceDatabase."""

import pytest

from repro.model.database import ESequenceDatabase
from repro.model.sequence import ESequence

from tests.conftest import seq


def small_db():
    return ESequenceDatabase(
        [
            seq((0, 3, "A"), (1, 4, "B")),
            seq((0, 2, "A")),
            seq((5, 5, "C"), (0, 1, "A"), (0, 1, "A")),
        ],
        name="small",
    )


class TestBasics:
    def test_sids_are_dense_positions(self):
        db = small_db()
        assert [s.sid for s in db] == [0, 1, 2]

    def test_resequencing_on_construction(self):
        tagged = ESequence([], sid=99)
        db = ESequenceDatabase([tagged])
        assert db[0].sid == 0

    def test_len_and_indexing(self):
        db = small_db()
        assert len(db) == 3
        assert db[1].alphabet == {"A"}

    def test_rejects_non_sequences(self):
        with pytest.raises(TypeError, match="ESequence"):
            ESequenceDatabase([[(0, 1, "A")]])  # type: ignore[list-item]

    def test_equality_ignores_name(self):
        a = small_db()
        b = ESequenceDatabase(small_db().sequences, name="other")
        assert a == b

    def test_from_event_lists(self):
        db = ESequenceDatabase.from_event_lists([[(0, 1, "A")], []])
        assert len(db) == 2
        assert len(db[1]) == 0

    def test_repr(self):
        assert "3 sequences" in repr(small_db())


class TestSupportArithmetic:
    def test_relative_support(self):
        db = small_db()
        assert db.absolute_support(0.5) == 2
        assert db.absolute_support(1.0) == 3
        assert db.absolute_support(0.01) == 1

    def test_absolute_support_passthrough(self):
        assert small_db().absolute_support(2) == 2

    def test_absolute_support_fractional_count_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            small_db().absolute_support(2.5)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            small_db().absolute_support(0)


class TestStatistics:
    def test_alphabet(self):
        assert small_db().alphabet == {"A", "B", "C"}

    def test_label_document_frequency(self):
        df = small_db().label_document_frequency()
        assert df == {"A": 3, "B": 1, "C": 1}

    def test_stats_values(self):
        stats = small_db().stats()
        assert stats.num_sequences == 3
        assert stats.num_events == 6
        assert stats.alphabet_size == 3
        assert stats.max_events_per_sequence == 3
        assert stats.point_event_fraction == pytest.approx(1 / 6)
        assert stats.duplicate_sequence_fraction == pytest.approx(1 / 3)

    def test_stats_empty_db(self):
        stats = ESequenceDatabase([]).stats()
        assert stats.num_sequences == 0
        assert stats.as_row()["sequences"] == 0

    def test_stats_as_row_keys(self):
        row = small_db().stats().as_row()
        assert set(row) == {
            "sequences", "events", "|Sigma|", "avg_len", "max_len",
            "avg_dur", "point_frac", "dup_frac",
        }


class TestTransforms:
    def test_filter_sequences(self):
        db = small_db().filter_sequences(lambda s: len(s) >= 2)
        assert len(db) == 2
        assert [s.sid for s in db] == [0, 1]

    def test_restricted_to_drops_empty(self):
        db = small_db().restricted_to({"B"})
        assert len(db) == 1
        assert db[0].alphabet == {"B"}

    def test_without_point_events(self):
        db = small_db().without_point_events()
        assert all(not s.has_point_events for s in db)
        assert len(db) == 3  # C-only sequence retains its A events

    def test_replicated_preserves_relative_support(self):
        db = small_db()
        big = db.replicated(4)
        assert len(big) == 12
        ratio = big.label_document_frequency()["A"] / len(big)
        assert ratio == db.label_document_frequency()["A"] / len(db)

    def test_replicated_rejects_zero(self):
        with pytest.raises(ValueError, match=">= 1"):
            small_db().replicated(0)

    def test_sample_deterministic(self):
        db = small_db()
        assert db.sample(2, seed=1) == db.sample(2, seed=1)

    def test_sample_larger_than_db_is_identity(self):
        db = small_db()
        assert db.sample(10) is db
