"""Unit tests for ESequence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence

from tests.conftest import events, seq


class TestConstruction:
    def test_events_sorted_canonically(self):
        s = seq((5, 9, "B"), (0, 3, "A"), (0, 2, "C"))
        assert [ev.label for ev in s] == ["C", "A", "B"]

    def test_equal_regardless_of_input_order(self):
        a = seq((0, 3, "A"), (1, 4, "B"))
        b = seq((1, 4, "B"), (0, 3, "A"))
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_non_events(self):
        with pytest.raises(TypeError, match="IntervalEvent"):
            ESequence([(0, 1, "A")])  # type: ignore[list-item]

    def test_empty_sequence_allowed(self):
        s = ESequence([])
        assert len(s) == 0
        assert not s

    def test_duplicate_events_kept(self):
        s = seq((0, 3, "A"), (0, 3, "A"))
        assert len(s) == 2

    def test_indexing_and_iteration(self):
        s = seq((0, 3, "A"), (1, 4, "B"))
        assert s[0].label == "A"
        assert [ev.label for ev in s] == ["A", "B"]

    def test_repr_mentions_events(self):
        s = seq((0, 3, "A"))
        assert "A[0,3]" in repr(s)


class TestStatistics:
    def test_span(self):
        assert seq((2, 5, "A"), (0, 9, "B")).span == (0, 9)

    def test_span_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            ESequence([]).span

    def test_alphabet(self):
        assert seq((0, 1, "A"), (2, 3, "B"), (4, 5, "A")).alphabet == {
            "A",
            "B",
        }

    def test_label_counts(self):
        counts = seq((0, 1, "A"), (2, 3, "A"), (4, 5, "B")).label_counts()
        assert counts == {"A": 2, "B": 1}

    def test_has_duplicates(self):
        assert seq((0, 1, "A"), (2, 3, "A")).has_duplicates
        assert not seq((0, 1, "A"), (2, 3, "B")).has_duplicates
        assert not ESequence([]).has_duplicates

    def test_has_point_events(self):
        assert seq((1, 1, "A")).has_point_events
        assert not seq((1, 2, "A")).has_point_events

    def test_interval_and_point_partitions(self):
        s = seq((0, 2, "A"), (1, 1, "B"), (3, 5, "C"))
        assert [ev.label for ev in s.interval_events()] == ["A", "C"]
        assert [ev.label for ev in s.point_events()] == ["B"]


class TestTransforms:
    def test_shift_preserves_structure(self):
        s = seq((0, 3, "A"), (1, 4, "B"))
        shifted = s.shifted(10)
        assert [ev.as_tuple() for ev in shifted] == [
            (10, 13, "A"),
            (11, 14, "B"),
        ]

    def test_normalized_moves_min_to_zero(self):
        s = seq((5, 8, "A"), (7, 9, "B"))
        assert s.normalized().span == (0, 4)

    def test_normalized_empty_is_noop(self):
        s = ESequence([])
        assert s.normalized() is s

    def test_scaled(self):
        s = seq((1, 2, "A")).scaled(3)
        assert s[0].as_tuple() == (3, 6, "A")

    def test_restricted_to(self):
        s = seq((0, 1, "A"), (2, 3, "B"), (4, 5, "C"))
        assert s.restricted_to({"A", "C"}).alphabet == {"A", "C"}

    def test_with_sid(self):
        s = seq((0, 1, "A"))
        tagged = s.with_sid(7)
        assert tagged.sid == 7
        assert tagged == s

    def test_shift_keeps_sid(self):
        s = ESequence(events((0, 1, "A")), sid=3).shifted(5)
        assert s.sid == 3


class TestOccurrenceIndexing:
    def test_single_occurrences(self):
        s = seq((0, 1, "A"), (2, 3, "B"))
        assert [(ev.label, occ) for ev, occ in s.occurrence_indexed()] == [
            ("A", 1),
            ("B", 1),
        ]

    def test_duplicates_numbered_in_canonical_order(self):
        s = seq((5, 9, "A"), (0, 3, "A"), (1, 2, "B"))
        tagged = [(ev.as_tuple(), occ) for ev, occ in s.occurrence_indexed()]
        assert tagged == [
            ((0, 3, "A"), 1),
            ((1, 2, "B"), 1),
            ((5, 9, "A"), 2),
        ]

    def test_same_start_ordered_by_finish(self):
        s = seq((0, 9, "A"), (0, 3, "A"))
        tagged = [(ev.finish, occ) for ev, occ in s.occurrence_indexed()]
        assert tagged == [(3, 1), (9, 2)]


@given(
    st.lists(
        st.tuples(
            st.integers(0, 20),
            st.integers(0, 10),
            st.sampled_from("ABC"),
        ),
        max_size=8,
    )
)
def test_construction_order_invariance(triples):
    evs = [IntervalEvent(s, s + d, label) for s, d, label in triples]
    assert ESequence(evs) == ESequence(reversed(evs))


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 10)),
        min_size=1,
        max_size=8,
    ),
    st.integers(-50, 50),
)
def test_shift_round_trip(pairs, delta):
    s = ESequence(IntervalEvent(a, a + d, "X") for a, d in pairs)
    assert s.shifted(delta).shifted(-delta) == s
