"""Unit tests for the IntervalEvent primitive."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.event import IntervalEvent, point_event


class TestConstruction:
    def test_basic_fields(self):
        ev = IntervalEvent(2, 7, "fever")
        assert ev.start == 2
        assert ev.finish == 7
        assert ev.label == "fever"

    def test_point_event_allowed(self):
        ev = IntervalEvent(3, 3, "alarm")
        assert ev.is_point
        assert not ev.is_interval

    def test_proper_interval_flags(self):
        ev = IntervalEvent(0, 1, "A")
        assert ev.is_interval
        assert not ev.is_point

    def test_finish_before_start_rejected(self):
        with pytest.raises(ValueError, match="finish < start"):
            IntervalEvent(5, 3, "A")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            IntervalEvent(0, 1, "")

    def test_non_string_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            IntervalEvent(0, 1, 42)  # type: ignore[arg-type]

    def test_point_event_helper(self):
        ev = point_event(5, "tick")
        assert ev == IntervalEvent(5, 5, "tick")

    def test_float_timestamps(self):
        ev = IntervalEvent(0.5, 1.25, "A")
        assert ev.duration == 0.75

    def test_from_tuple(self):
        assert IntervalEvent.from_tuple((1, 2, "X")) == IntervalEvent(1, 2, "X")

    def test_as_tuple_round_trip(self):
        ev = IntervalEvent(1, 9, "Z")
        assert IntervalEvent.from_tuple(ev.as_tuple()) == ev


class TestBehaviour:
    def test_duration(self):
        assert IntervalEvent(3, 9, "A").duration == 6
        assert IntervalEvent(3, 3, "A").duration == 0

    def test_ordering_is_start_finish_label(self):
        a = IntervalEvent(0, 5, "B")
        b = IntervalEvent(0, 5, "A")
        c = IntervalEvent(0, 4, "Z")
        d = IntervalEvent(1, 2, "A")
        assert sorted([a, b, c, d]) == [c, b, a, d]

    def test_hashable_and_equal(self):
        assert hash(IntervalEvent(1, 2, "A")) == hash(IntervalEvent(1, 2, "A"))
        assert len({IntervalEvent(1, 2, "A"), IntervalEvent(1, 2, "A")}) == 1

    def test_immutable(self):
        ev = IntervalEvent(0, 1, "A")
        with pytest.raises(AttributeError):
            ev.start = 5  # type: ignore[misc]

    def test_shifted(self):
        assert IntervalEvent(2, 5, "A").shifted(10) == IntervalEvent(12, 15, "A")

    def test_shifted_negative(self):
        assert IntervalEvent(2, 5, "A").shifted(-2) == IntervalEvent(0, 3, "A")

    def test_scaled(self):
        assert IntervalEvent(2, 5, "A").scaled(2) == IntervalEvent(4, 10, "A")

    def test_scaled_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            IntervalEvent(2, 5, "A").scaled(0)
        with pytest.raises(ValueError, match="positive"):
            IntervalEvent(2, 5, "A").scaled(-1)

    def test_overlaps_time(self):
        a = IntervalEvent(0, 5, "A")
        assert a.overlaps_time(IntervalEvent(5, 9, "B"))  # closed intervals
        assert a.overlaps_time(IntervalEvent(2, 3, "B"))
        assert not a.overlaps_time(IntervalEvent(6, 9, "B"))

    def test_contains_time(self):
        a = IntervalEvent(2, 4, "A")
        assert a.contains_time(2)
        assert a.contains_time(4)
        assert a.contains_time(3)
        assert not a.contains_time(1)
        assert not a.contains_time(5)

    def test_str_interval(self):
        assert str(IntervalEvent(1, 4, "A")) == "A[1,4]"

    def test_str_point(self):
        assert str(IntervalEvent(3, 3, "tick")) == "tick@3"


@given(
    start=st.integers(-1000, 1000),
    duration=st.integers(0, 1000),
    delta=st.integers(-500, 500),
)
def test_shift_preserves_duration(start, duration, delta):
    ev = IntervalEvent(start, start + duration, "A")
    assert ev.shifted(delta).duration == ev.duration


@given(
    start=st.integers(-100, 100),
    duration=st.integers(0, 100),
    factor=st.integers(1, 10),
)
def test_scale_multiplies_duration(start, duration, factor):
    ev = IntervalEvent(start, start + duration, "A")
    assert ev.scaled(factor).duration == ev.duration * factor


@given(st.integers(-100, 100), st.integers(0, 50))
def test_point_iff_zero_duration(start, duration):
    ev = IntervalEvent(start, start + duration, "A")
    assert ev.is_point == (duration == 0)
