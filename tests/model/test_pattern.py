"""Unit tests for TemporalPattern: structure, canonical form, containment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.event import IntervalEvent
from repro.model.pattern import PatternWithSupport, TemporalPattern
from repro.temporal.endpoint import FINISH, POINT, START, Endpoint

from tests.conftest import make_random_db, seq


def pat(text: str) -> TemporalPattern:
    return TemporalPattern.parse(text)


class TestValidation:
    def test_simple_interval_pattern(self):
        p = pat("(A+) (A-)")
        assert p.num_intervals == 1
        assert p.is_complete

    def test_finish_without_start_rejected(self):
        with pytest.raises(ValueError, match="precedes its start"):
            pat("(A-)")

    def test_start_and_finish_same_pointset_rejected(self):
        with pytest.raises(ValueError, match="point token"):
            pat("(A+ A-)")

    def test_duplicate_token_in_pointset_rejected(self):
        with pytest.raises(ValueError, match="duplicate token"):
            TemporalPattern([[Endpoint("A", 1, START), Endpoint("A", 1, START)]])

    def test_empty_pointset_rejected(self):
        with pytest.raises(ValueError, match="empty pointsets"):
            TemporalPattern([[]])

    def test_occurrence_numbering_must_be_contiguous(self):
        with pytest.raises(ValueError, match="contiguous"):
            pat("(A#2+) (A#2-)")

    def test_occurrence_reintroduction_rejected(self):
        with pytest.raises(ValueError, match="introduced twice"):
            pat("(A+) (A-) (A+) (A-)")

    def test_zero_occurrence_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            TemporalPattern([[Endpoint("A", 0, START)]])

    def test_incomplete_pattern_is_valid_but_incomplete(self):
        p = pat("(A+)")
        assert not p.is_complete
        assert p.open_occurrences == {("A", 1)}


class TestParsing:
    def test_str_round_trip(self):
        text = "(A+ B+) (A-) (B- C.)"
        assert str(pat(text)) == text

    def test_occurrence_suffix_round_trip(self):
        text = "(A+ A#2+) (A-) (A#2-)"
        assert str(pat(text)) == text

    def test_parse_rejects_stray_token(self):
        with pytest.raises(ValueError, match="outside"):
            pat("A+ (B+)")

    def test_parse_rejects_unbalanced(self):
        with pytest.raises(ValueError, match="unterminated|unbalanced"):
            pat("(A+")

    def test_parse_rejects_nested(self):
        with pytest.raises(ValueError, match="nested"):
            pat("((A+))")

    def test_endpoint_parse_forms(self):
        assert Endpoint.parse("A+") == Endpoint("A", 1, START)
        assert Endpoint.parse("A#3-") == Endpoint("A", 3, FINISH)
        assert Endpoint.parse("tick.") == Endpoint("tick", 1, POINT)

    def test_endpoint_parse_errors(self):
        with pytest.raises(ValueError):
            Endpoint.parse("A")
        with pytest.raises(ValueError):
            Endpoint.parse("+")


class TestStructure:
    def test_counts(self):
        p = pat("(A+ B.) (A-) (C+) (C-)")
        assert p.num_intervals == 2
        assert p.num_points == 1
        assert p.size == 3
        assert p.num_tokens == 5

    def test_is_hybrid(self):
        assert pat("(A.)").is_hybrid
        assert not pat("(A+) (A-)").is_hybrid

    def test_alphabet(self):
        assert pat("(A+ B.) (A-)").alphabet == {"A", "B"}

    def test_to_esequence_realizes_arrangement(self):
        es = pat("(A+) (B+) (A-) (B-)").to_esequence()
        a = next(ev for ev in es if ev.label == "A")
        b = next(ev for ev in es if ev.label == "B")
        assert a.start < b.start < a.finish < b.finish  # A overlaps B

    def test_to_esequence_incomplete_raises(self):
        with pytest.raises(ValueError, match="unfinished"):
            pat("(A+)").to_esequence()


class TestCanonical:
    def test_already_canonical(self):
        p = pat("(A+ A#2+) (A-) (A#2-)")
        assert p.is_canonical

    def test_swapped_duplicates_normalize(self):
        # Occurrence 2 finishing before occurrence 1 with equal starts is
        # the non-canonical twin of the pattern above.
        raw = TemporalPattern(
            [
                [Endpoint("A", 1, START), Endpoint("A", 2, START)],
                [Endpoint("A", 2, FINISH)],
                [Endpoint("A", 1, FINISH)],
            ]
        )
        assert not raw.is_canonical
        assert raw.canonical() == pat("(A+ A#2+) (A-) (A#2-)")

    def test_point_before_interval_same_pointset(self):
        # A point occurrence in the same pointset as an interval start must
        # take the lower occurrence index.
        p = pat("(A. A#2+) (A#2-)")
        assert p.is_canonical

    def test_canonical_is_idempotent(self):
        p = pat("(A+ A#2+) (B+) (A-) (B- A#2-)")
        assert p.canonical().canonical() == p.canonical()


class TestFromArrangement:
    def test_overlap_arrangement(self):
        p = TemporalPattern.from_arrangement(
            [IntervalEvent(0, 4, "A"), IntervalEvent(2, 6, "B")]
        )
        assert str(p) == "(A+) (B+) (A-) (B-)"

    def test_meets_shares_pointset(self):
        p = TemporalPattern.from_arrangement(
            [IntervalEvent(0, 4, "A"), IntervalEvent(4, 6, "B")]
        )
        assert str(p) == "(A+) (A- B+) (B-)"

    def test_point_event(self):
        p = TemporalPattern.from_arrangement(
            [IntervalEvent(0, 4, "A"), IntervalEvent(2, 2, "tick")]
        )
        assert str(p) == "(A+) (tick.) (A-)"

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="zero events"):
            TemporalPattern.from_arrangement([])

    def test_result_always_canonical(self):
        p = TemporalPattern.from_arrangement(
            [IntervalEvent(0, 9, "A"), IntervalEvent(0, 3, "A"),
             IntervalEvent(1, 1, "A")]
        )
        assert p.is_canonical


class TestContainment:
    def test_exact_match(self):
        s = seq((0, 4, "A"), (2, 6, "B"))
        assert pat("(A+) (B+) (A-) (B-)").contained_in(s)

    def test_sub_arrangement(self):
        s = seq((0, 4, "A"), (2, 6, "B"))
        assert pat("(A+) (A-)").contained_in(s)
        assert pat("(B+) (B-)").contained_in(s)

    def test_wrong_arrangement_rejected(self):
        s = seq((0, 4, "A"), (2, 6, "B"))  # A overlaps B
        assert not pat("(A+) (A-) (B+) (B-)").contained_in(s)  # A before B
        assert not pat("(A+ B+) (A-) (B-)").contained_in(s)  # A starts-with B

    def test_pointset_subset_semantics(self):
        s = seq((0, 4, "A"), (0, 6, "B"), (0, 2, "C"))
        assert pat("(A+ B+) (A-) (B-)").contained_in(s)

    def test_occurrence_pairing_enforced(self):
        # Two A intervals: [0,2] and [5,9]; B at [3,4] sits between them.
        # The pattern "B during A" must NOT match by mixing A#1's start
        # with A#2's finish.
        s = seq((0, 2, "A"), (5, 9, "A"), (3, 4, "B"))
        assert not pat("(A+) (B+) (B-) (A-)").contained_in(s)

    def test_occurrence_pairing_positive_case(self):
        s = seq((0, 10, "A"), (3, 4, "B"))
        assert pat("(A+) (B+) (B-) (A-)").contained_in(s)

    def test_injectivity_of_occurrences(self):
        # Pattern wants two distinct A intervals in sequence with only one.
        s = seq((0, 2, "A"))
        assert not pat("(A+) (A-) (A#2+) (A#2-)").contained_in(s)

    def test_duplicate_occurrences_matched(self):
        s = seq((0, 2, "A"), (4, 6, "A"))
        assert pat("(A+) (A-) (A#2+) (A#2-)").contained_in(s)

    def test_point_tokens_match_only_points(self):
        s = seq((0, 4, "A"))
        assert not pat("(A.)").contained_in(s)
        s2 = seq((2, 2, "A"))
        assert pat("(A.)").contained_in(s2)
        assert not pat("(A+) (A-)").contained_in(s2)

    def test_empty_pattern_contained_everywhere(self):
        empty = TemporalPattern([])
        assert empty.contained_in(seq((0, 1, "A")))

    def test_pattern_in_pattern_subsumption(self):
        small = pat("(A+) (A-)")
        big = pat("(A+) (B+) (A-) (B-)")
        assert small.contained_in(big)
        assert not big.contained_in(small)

    def test_support_in(self, clinical_db):
        assert pat("(fever+) (fever-)").support_in(clinical_db) == 3
        # 'fever contains rash' holds in s0 and s1 only.
        assert pat("(fever+) (rash+) (rash-) (fever-)").support_in(
            clinical_db
        ) == 2
        # 'fever meets rash' only in s2.
        assert pat("(fever+) (fever- rash+) (rash-)").support_in(
            clinical_db
        ) == 1

    def test_contained_in_accepts_pattern_and_endpoint_sequence(self):
        from repro.temporal.endpoint import EndpointSequence

        s = seq((0, 4, "A"), (2, 6, "B"))
        eps = EndpointSequence.from_esequence(s)
        assert pat("(A+) (A-)").contained_in(eps)


class TestAllenDescription:
    def test_overlap_description(self):
        lines = pat("(A+) (B+) (A-) (B-)").allen_description()
        assert lines == ["A overlaps B"]

    def test_three_way_description(self):
        lines = pat("(A+) (B+) (B-) (A-)").allen_description()
        assert lines == ["A contains B"]

    def test_duplicate_labels_tagged(self):
        lines = pat("(A+) (A-) (A#2+) (A#2-)").allen_description()
        assert lines == ["A before A#2"]

    def test_point_relations(self):
        lines = pat("(A+) (tick.) (A-)").allen_description()
        assert lines == ["A contains tick"]


class TestPatternWithSupport:
    def test_named_access(self):
        p = pat("(A+) (A-)")
        item = PatternWithSupport(p, 7)
        assert item.pattern is p
        assert item.support == 7

    def test_relative_support(self):
        item = PatternWithSupport(pat("(A+) (A-)"), 5)
        assert item.relative_support(10) == 0.5
        assert item.relative_support(0) == 0.0

    def test_sort_key_orders_by_support_then_size(self):
        a = PatternWithSupport(pat("(A+) (A-)"), 9)
        b = PatternWithSupport(pat("(B+) (B-)"), 3)
        c = PatternWithSupport(pat("(A+) (B+) (A-) (B-)"), 3)
        assert sorted([c, b, a], key=PatternWithSupport.sort_key) == [a, b, c]

    def test_tuple_compatibility(self):
        item = PatternWithSupport(pat("(A+) (A-)"), 2)
        pattern, support = item
        assert support == 2
        assert pattern == pat("(A+) (A-)")


# ---------------------------------------------------------------------------
# property-based: containment invariances
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), delta=st.integers(-20, 20),
       factor=st.integers(1, 4))
def test_containment_invariant_under_shift_and_scale(seed, delta, factor):
    """Patterns describe arrangements, so any order-preserving time
    transform of the sequence preserves containment."""
    db = make_random_db(seed, num_sequences=3, max_events=4)
    source = db[0]
    if len(source) == 0:
        return
    pattern = TemporalPattern.from_arrangement(list(source.events[:2]))
    transformed = source.scaled(factor).shifted(delta)
    assert pattern.contained_in(source)
    assert pattern.contained_in(transformed)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_from_arrangement_is_contained_in_origin(seed):
    db = make_random_db(seed, num_sequences=2, max_events=5,
                        point_fraction=0.3)
    for s in db:
        if len(s) == 0:
            continue
        pattern = TemporalPattern.from_arrangement(list(s.events))
        assert pattern.contained_in(s)
        assert pattern.is_canonical


class TestEmbeddings:
    def test_single_embedding(self):
        s = seq((0, 4, "A"), (2, 6, "B"))
        embeddings = pat("(A+) (B+) (A-) (B-)").embeddings_in(s)
        assert len(embeddings) == 1
        assert embeddings[0][("A", 1)] == IntervalEvent(0, 4, "A")
        assert embeddings[0][("B", 1)] == IntervalEvent(2, 6, "B")

    def test_multiple_embeddings_with_duplicates(self):
        s = seq((0, 2, "A"), (4, 6, "A"), (8, 10, "A"))
        embeddings = pat("(A+) (A-)").embeddings_in(s)
        matched = {e[("A", 1)].start for e in embeddings}
        assert matched == {0, 4, 8}

    def test_limit(self):
        s = seq((0, 2, "A"), (4, 6, "A"), (8, 10, "A"))
        assert len(pat("(A+) (A-)").embeddings_in(s, limit=2)) == 2

    def test_no_embeddings(self):
        s = seq((0, 2, "A"))
        assert pat("(B+) (B-)").embeddings_in(s) == []

    def test_consistent_with_contained_in(self):
        from tests.conftest import make_random_db

        db = make_random_db(13, num_sequences=8, point_fraction=0.2)
        for s in db:
            if len(s) < 2:
                continue
            pattern = TemporalPattern.from_arrangement(list(s.events[:2]))
            assert bool(pattern.embeddings_in(s)) == pattern.contained_in(s)

    def test_occurrence_pairing_in_embedding(self):
        # B sits inside the SECOND A only; the embedding must bind A#1 of
        # the pattern to the sequence's second A occurrence.
        s = seq((0, 2, "A"), (3, 9, "A"), (4, 5, "B"))
        embeddings = pat("(A+) (B+) (B-) (A-)").embeddings_in(s)
        assert len(embeddings) == 1
        assert embeddings[0][("A", 1)] == IntervalEvent(3, 9, "A")

    def test_point_event_embedding(self):
        s = seq((0, 4, "I"), (2, 2, "tick"))
        embeddings = pat("(I+) (tick.) (I-)").embeddings_in(s)
        assert embeddings[0][("tick", 1)].is_point
