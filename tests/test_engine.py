"""Tests for the parallel sharded mining engine (:mod:`repro.engine`).

The load-bearing claim is the determinism guarantee: for any worker
count and either executor, the merged result — patterns, supports,
*and* search counters — is bit-for-bit identical to the sequential
miner's. Everything else (pickling, shard planning, obs merging) exists
to make that guarantee hold across process boundaries.
"""

import io
import json
import pickle

import pytest

from repro.core.config import MinerConfig
from repro.core.ptpminer import PTPMiner, mine
from repro.datagen import standard_dataset
from repro.engine import (
    EXECUTORS,
    ShardTask,
    ShardedMiner,
    mine_sharded,
    plan_shards,
)
from repro.model.database import ESequenceDatabase
from repro.obs import costmodel as obs_costmodel
from repro.obs import live as obs_live
from repro.obs import provenance as obs_provenance
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.clock import ManualClock, clock_scope


@pytest.fixture(scope="module")
def tiny_db():
    return standard_dataset("tiny")


@pytest.fixture(scope="module")
def hybrid_db():
    return standard_dataset("hybrid", num_sequences=40)


def assert_identical(sharded, serial):
    """The full determinism guarantee: patterns, supports, counters."""
    assert sharded.patterns == serial.patterns
    assert sharded.counters == serial.counters
    assert sharded.threshold == serial.threshold


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_serial_executor_matches_sequential(self, tiny_db, workers):
        config = MinerConfig(min_sup=0.3)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        sharded = mine_sharded(
            tiny_db, config, workers=workers, executor="serial"
        )
        assert_identical(sharded, serial)

    def test_process_executor_matches_sequential(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        sharded = mine_sharded(
            tiny_db, config, workers=2, executor="process"
        )
        assert_identical(sharded, serial)

    def test_htp_mode_with_point_events(self, hybrid_db):
        config = MinerConfig(min_sup=0.2, mode="htp")
        serial = PTPMiner.from_config(config).mine(hybrid_db)
        sharded = mine_sharded(
            hybrid_db, config, workers=3, executor="serial"
        )
        assert_identical(sharded, serial)

    def test_max_span_constraint(self, tiny_db):
        config = MinerConfig(min_sup=0.2, max_span=6.0)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        sharded = mine_sharded(
            tiny_db, config, workers=2, executor="serial"
        )
        assert_identical(sharded, serial)

    def test_empty_root_returns_empty_result(self, tiny_db):
        # min_sup 1.0 on tiny leaves nothing frequent at the root of
        # some prefixes; crank it so the whole fan-out dies and the
        # engine takes its no-tasks path.
        config = MinerConfig(min_sup=1.0)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        sharded = mine_sharded(
            tiny_db, config, workers=4, executor="serial"
        )
        assert_identical(sharded, serial)

    def test_more_workers_than_candidates(self, tiny_db):
        config = MinerConfig(min_sup=0.5)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        sharded = mine_sharded(
            tiny_db, config, workers=64, executor="serial"
        )
        assert_identical(sharded, serial)

    def test_result_params_record_engine_settings(self, tiny_db):
        result = mine_sharded(
            tiny_db, MinerConfig(min_sup=0.4), workers=2, executor="serial"
        )
        assert result.params["workers"] == 2
        assert result.params["executor"] == "serial"
        assert result.params["shards"] >= 1
        assert result.miner == "P-TPMiner"


class TestValidation:
    def test_workers_must_be_positive(self, tiny_db):
        with pytest.raises(ValueError, match="workers"):
            mine_sharded(tiny_db, MinerConfig(min_sup=0.3), workers=0)

    def test_unknown_executor_rejected(self, tiny_db):
        with pytest.raises(ValueError, match="executor"):
            mine_sharded(
                tiny_db, MinerConfig(min_sup=0.3), executor="threads"
            )

    def test_auto_resolves_by_worker_count(self, tiny_db):
        one = mine_sharded(tiny_db, MinerConfig(min_sup=0.4), workers=1)
        assert one.params["executor"] == "serial"
        assert "auto" in EXECUTORS


class TestPlanShards:
    def _root(self, db, min_sup=0.3):
        config = MinerConfig(min_sup=min_sup)
        miner = PTPMiner.from_config(config)
        threshold = float(db.absolute_support(min_sup))
        _, _, root = miner.plan_root(db, [1.0] * len(db), threshold)
        return config, threshold, root

    def test_partition_is_disjoint_and_complete(self, tiny_db):
        config, threshold, root = self._root(tiny_db)
        tasks = plan_shards(root, config, threshold, 3)
        seen = [c for t in tasks for c, _ in t.candidates]
        assert sorted(seen) == sorted(root)
        assert len(seen) == len(set(seen))

    def test_no_empty_shards(self, tiny_db):
        config, threshold, root = self._root(tiny_db)
        tasks = plan_shards(root, config, threshold, len(root) + 10)
        assert len(tasks) == len(root)
        assert all(task.candidates for task in tasks)

    def test_empty_root_plans_no_tasks(self, tiny_db):
        config, threshold, _ = self._root(tiny_db)
        assert plan_shards({}, config, threshold, 4) == []

    def test_invalid_shard_count(self, tiny_db):
        config, threshold, root = self._root(tiny_db)
        with pytest.raises(ValueError, match="num_shards"):
            plan_shards(root, config, threshold, 0)


class TestPickling:
    def test_miner_config_round_trips(self):
        config = MinerConfig(
            min_sup=0.25, mode="htp", max_span=9.5, max_size=4
        )
        assert pickle.loads(pickle.dumps(config)) == config

    def test_shard_task_round_trips(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        miner = PTPMiner.from_config(config)
        threshold = float(tiny_db.absolute_support(0.3))
        _, _, root = miner.plan_root(
            tiny_db, [1.0] * len(tiny_db), threshold
        )
        for task in plan_shards(root, config, threshold, 2):
            clone = pickle.loads(pickle.dumps(task))
            assert clone == task
            assert clone.candidate_map() == task.candidate_map()

    def test_pattern_with_support_round_trips(self, tiny_db):
        result = PTPMiner(min_sup=0.4).mine(tiny_db)
        assert result.patterns  # the test is vacuous otherwise
        for item in result.patterns:
            assert pickle.loads(pickle.dumps(item)) == item


class TestObsMerge:
    def test_shard_metrics_absorbed_with_prefix(self, tiny_db):
        with obs_metrics.use_registry() as registry:
            mine_sharded(
                tiny_db,
                MinerConfig(min_sup=0.3),
                workers=2,
                executor="serial",
            )
        snapshot = registry.snapshot()
        shard_keys = [
            key
            for key in snapshot["counters"]
            if key.startswith("shard.")
        ]
        assert shard_keys, snapshot["counters"].keys()

    def test_trace_stays_one_well_formed_tree(self, tiny_db):
        collector = obs_trace.TraceCollector()
        with obs_trace.use_tracer(collector):
            mine_sharded(
                tiny_db,
                MinerConfig(min_sup=0.3),
                workers=2,
                executor="serial",
            )
        begins = [ev for ev in collector.events if ev["ev"] == "B"]
        own = {ev["span"] for ev in begins}
        shard_spans = [
            ev
            for ev in begins
            if isinstance(ev["span"], str) and ev["span"].startswith("shard")
        ]
        assert shard_spans, "no shard spans were re-emitted"
        # Every parent link resolves inside this trace (or is a root).
        for ev in begins:
            assert ev["parent"] is None or ev["parent"] in own

    def test_engine_emits_its_own_phases(self, tiny_db):
        collector = obs_trace.TraceCollector()
        with obs_trace.use_tracer(collector):
            mine_sharded(
                tiny_db,
                MinerConfig(min_sup=0.4),
                workers=2,
                executor="serial",
            )
        names = set(collector.span_names())
        assert {"mine", "plan_root", "shards", "merge"} <= names


class TestCostProfileMerge:
    """Cost profiles must be bit-for-bit identical to a serial run's.

    Under a frozen :class:`ManualClock` every wall delta is exactly
    0.0 in both serial and sharded runs (the process executor inherits
    the installed clock via fork), so full-snapshot JSON equality — not
    just digest equality — is the right assertion.
    """

    @staticmethod
    def serial_profile(db, config):
        with clock_scope(ManualClock()):
            with obs_costmodel.use_collector() as collector:
                PTPMiner.from_config(config).mine(db)
        return collector.snapshot()

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_sharded_profile_is_bit_for_bit_serial(
        self, tiny_db, workers, executor
    ):
        config = MinerConfig(min_sup=0.3)
        serial = self.serial_profile(tiny_db, config)
        with clock_scope(ManualClock()):
            with obs_costmodel.use_collector() as collector:
                mine_sharded(
                    tiny_db, config, workers=workers, executor=executor
                )
        assert json.dumps(
            collector.snapshot(), sort_keys=True
        ) == json.dumps(serial, sort_keys=True)

    def test_profile_digest_matches_serial_with_real_clock(self, tiny_db):
        # Without a frozen clock wall times differ, but the digest
        # excludes them: same search space, same digest.
        config = MinerConfig(min_sup=0.3)
        with obs_costmodel.use_collector() as serial_collector:
            PTPMiner.from_config(config).mine(tiny_db)
        with obs_costmodel.use_collector() as sharded_collector:
            mine_sharded(tiny_db, config, workers=3, executor="serial")
        assert obs_costmodel.profile_digest(
            sharded_collector.snapshot()
        ) == obs_costmodel.profile_digest(serial_collector.snapshot())

    def test_no_collector_means_no_shipped_cost(self, tiny_db):
        # The disabled path ships empty cost dicts and installs nothing.
        assert obs_costmodel.active_collector() is None
        result = mine_sharded(
            tiny_db, MinerConfig(min_sup=0.3), workers=2, executor="serial"
        )
        assert result.patterns
        assert obs_costmodel.active_collector() is None


class TestProvenanceMerge:
    """Merged provenance must be bit-for-bit identical to a serial run's.

    Every pattern and every candidate node lives in exactly one shard
    (the parent records the root-level decisions once in ``plan_root``),
    so the merged snapshot is a keyed union over disjoint keys — equal
    as JSON for any worker count, executor, and arrival order.
    """

    @staticmethod
    def serial_snapshot(db, config):
        with obs_provenance.use_collector() as collector:
            PTPMiner.from_config(config).mine(db)
        return collector.snapshot()

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_sharded_provenance_is_bit_for_bit_serial(
        self, tiny_db, workers, executor
    ):
        config = MinerConfig(min_sup=0.3)
        serial = self.serial_snapshot(tiny_db, config)
        with obs_provenance.use_collector() as collector:
            mine_sharded(
                tiny_db, config, workers=workers, executor=executor
            )
        assert json.dumps(
            collector.snapshot(), sort_keys=True
        ) == json.dumps(serial, sort_keys=True)

    def test_constrained_config_still_merges_identically(self, hybrid_db):
        # max_span/max_size kills and htp point handling land in worker
        # shards; the merge must still reproduce the serial snapshot.
        config = MinerConfig(
            min_sup=0.2, mode="htp", max_span=8.0, max_size=3
        )
        serial = self.serial_snapshot(hybrid_db, config)
        with obs_provenance.use_collector() as collector:
            mine_sharded(hybrid_db, config, workers=3, executor="serial")
        assert json.dumps(
            collector.snapshot(), sort_keys=True
        ) == json.dumps(serial, sort_keys=True)

    def test_no_collector_means_no_shipped_provenance(self, tiny_db):
        assert obs_provenance.active_collector() is None
        result = mine_sharded(
            tiny_db, MinerConfig(min_sup=0.3), workers=2, executor="serial"
        )
        assert result.patterns
        assert obs_provenance.active_collector() is None


class TestShardedMiner:
    def test_satisfies_miner_protocol(self):
        from repro.miners import Miner

        miner = ShardedMiner(min_sup=0.3, workers=2)
        assert isinstance(miner, Miner)
        assert miner.config.min_sup == 0.3

    def test_mine_matches_ptpminer(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        sharded = ShardedMiner.from_config(config, workers=2,
                                           executor="serial").mine(tiny_db)
        assert_identical(sharded, serial)

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            ShardedMiner(config=MinerConfig(min_sup=0.3), mode="htp")

    def test_rejects_bad_workers_and_executor(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedMiner(min_sup=0.3, workers=0)
        with pytest.raises(ValueError, match="executor"):
            ShardedMiner(min_sup=0.3, executor="greenlets")


class TestMineConvenience:
    def test_workers_routes_through_engine(self, tiny_db):
        serial = mine(tiny_db, 0.3)
        parallel = mine(tiny_db, 0.3, workers=2)
        assert parallel.patterns == serial.patterns
        assert parallel.counters == serial.counters
        assert parallel.params["workers"] == 2

    def test_config_object_accepted(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        assert mine(tiny_db, config=config).patterns == mine(
            tiny_db, 0.3
        ).patterns

    def test_config_and_kwargs_are_exclusive(self, tiny_db):
        with pytest.raises(TypeError, match="not both"):
            mine(tiny_db, 0.3, config=MinerConfig(min_sup=0.3))

    def test_unknown_kwarg_fails_eagerly(self, tiny_db):
        with pytest.raises(TypeError, match="min_supp"):
            mine(tiny_db, min_supp=0.3)


class TestProcessExecutorIsolation:
    def test_worker_obs_does_not_leak_into_parent_files(self, tiny_db):
        """Process workers ship obs home instead of writing anywhere."""
        with obs_metrics.use_registry() as registry:
            result = mine_sharded(
                tiny_db,
                MinerConfig(min_sup=0.4),
                workers=2,
                executor="process",
            )
        snapshot = registry.snapshot()
        assert any(
            key.startswith("shard.") for key in snapshot["counters"]
        )
        assert result.params["executor"] == "process"


class TestLiveMode:
    """Streaming telemetry must observe the run without changing it."""

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_live_result_is_bit_for_bit_identical(self, tiny_db, executor):
        config = MinerConfig(min_sup=0.3)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        collector = obs_live.LiveCollector(obs_live.LiveConfig(render=False))
        sharded = mine_sharded(
            tiny_db, config, workers=2, executor=executor, live=collector
        )
        assert_identical(sharded, serial)

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_collector_summary_covers_every_root(self, tiny_db, executor):
        collector = obs_live.LiveCollector(obs_live.LiveConfig(render=False))
        mine_sharded(
            tiny_db,
            MinerConfig(min_sup=0.3),
            workers=2,
            executor=executor,
            live=collector,
        )
        summary = collector.summary
        assert summary is not None
        assert summary["roots_done"] == summary["roots_total"] > 0
        assert summary["frames"] >= len(summary["shards"]) == 2
        assert all(lane["final"] for lane in summary["shards"].values())

    def test_scoped_collector_is_picked_up_by_default(self, tiny_db):
        config = obs_live.LiveConfig(render=False)
        with obs_live.use_live(config) as collector:
            mine_sharded(
                tiny_db, MinerConfig(min_sup=0.3), workers=2,
                executor="serial",
            )
        assert collector.summary is not None
        assert collector.summary["roots_done"] > 0

    def test_live_false_overrides_installed_scope(self, tiny_db):
        with obs_live.use_live(obs_live.LiveConfig(render=False)) as scoped:
            mine_sharded(
                tiny_db, MinerConfig(min_sup=0.3), workers=2,
                executor="serial", live=False,
            )
        assert scoped.summary is None

    def test_rendered_progress_is_monotonic(self, tiny_db):
        stream = io.StringIO()
        config = obs_live.LiveConfig(interval_s=0.0, stream=stream)
        mine_sharded(
            tiny_db,
            MinerConfig(min_sup=0.3),
            workers=3,
            executor="serial",
            live=obs_live.LiveCollector(config),
        )
        lines = [
            line for line in stream.getvalue().splitlines()
            if line.startswith("[live] roots ")
        ]
        assert lines, stream.getvalue()
        done = [int(line.split()[2].split("/")[0]) for line in lines]
        assert done == sorted(done)
        assert "eta" in lines[-1]

    def test_shard_elapsed_gauges_recorded(self, tiny_db):
        with obs_metrics.use_registry() as registry:
            mine_sharded(
                tiny_db,
                MinerConfig(min_sup=0.3),
                workers=2,
                executor="serial",
                live=obs_live.LiveCollector(
                    obs_live.LiveConfig(render=False)
                ),
            )
        gauges = registry.snapshot()["gauges"]
        assert "engine.shard_elapsed_s[shard=0]" in gauges
        assert "engine.shard_elapsed_s[shard=1]" in gauges

    def test_rejects_unknown_live_value(self, tiny_db):
        with pytest.raises(TypeError, match="live"):
            mine_sharded(
                tiny_db, MinerConfig(min_sup=0.3), workers=2,
                executor="serial", live="yes",
            )

    def test_sharded_miner_threads_live_through(self, tiny_db):
        collector = obs_live.LiveCollector(obs_live.LiveConfig(render=False))
        miner = ShardedMiner(
            min_sup=0.3, workers=2, executor="serial", live=collector
        )
        result = miner.mine(tiny_db)
        assert collector.summary is not None
        assert result.patterns == PTPMiner(min_sup=0.3).mine(tiny_db).patterns


class TestPredictedStrategy:
    """`shard_strategy` is an execution knob: any deal, same bits.

    The predicted (LPT) deal consumes forecasts from
    :mod:`repro.obs.planner`; a wrong — or absent, or adversarial —
    forecast may cost wall time but never changes the merged result,
    counters, or observability snapshots.
    """

    @staticmethod
    def build_plan(db, config, workers):
        from repro.obs import planner

        return planner.build_plan(db, config, workers=workers)

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_predicted_matches_serial_and_roundrobin(
        self, tiny_db, workers, executor
    ):
        config = MinerConfig(min_sup=0.3)
        plan = self.build_plan(tiny_db, config, workers)
        # No ledger history: this exercises the static fallback
        # predictor end to end.
        assert plan["predictor"]["source"] == "static"
        serial = PTPMiner.from_config(config).mine(tiny_db)
        roundrobin = mine_sharded(
            tiny_db, config, workers=workers, executor=executor
        )
        predicted = mine_sharded(
            tiny_db, config, workers=workers, executor=executor,
            shard_strategy="predicted", plan=plan,
        )
        assert_identical(predicted, serial)
        assert_identical(roundrobin, serial)
        assert predicted.params["shard_strategy"] == "predicted"

    @pytest.mark.parametrize("executor", sorted(EXECUTORS))
    def test_predicted_without_plan_uses_static_proxy(
        self, tiny_db, executor
    ):
        config = MinerConfig(min_sup=0.3)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        predicted = mine_sharded(
            tiny_db, config, workers=3, executor=executor,
            shard_strategy="predicted",
        )
        assert_identical(predicted, serial)

    def test_snapshots_bit_for_bit_under_predicted(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        plan = self.build_plan(tiny_db, config, 3)
        with clock_scope(ManualClock()):
            with obs_costmodel.use_collector() as serial_cost:
                with obs_provenance.use_collector() as serial_prov:
                    PTPMiner.from_config(config).mine(tiny_db)
            with obs_costmodel.use_collector() as cost:
                with obs_provenance.use_collector() as prov:
                    mine_sharded(
                        tiny_db, config, workers=3, executor="serial",
                        shard_strategy="predicted", plan=plan,
                    )
        assert json.dumps(cost.snapshot(), sort_keys=True) == json.dumps(
            serial_cost.snapshot(), sort_keys=True
        )
        assert json.dumps(prov.snapshot(), sort_keys=True) == json.dumps(
            serial_prov.snapshot(), sort_keys=True
        )

    def test_all_zero_forecasts_keep_no_empty_shards(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        plan = self.build_plan(tiny_db, config, 3)
        for entry in plan["roots"].values():
            entry["predicted_cost"] = 0.0
        serial = PTPMiner.from_config(config).mine(tiny_db)
        predicted = mine_sharded(
            tiny_db, config, workers=3, executor="serial",
            shard_strategy="predicted", plan=plan,
        )
        assert_identical(predicted, serial)

    def test_rejects_unknown_strategy(self, tiny_db):
        with pytest.raises(ValueError, match="shard_strategy"):
            mine_sharded(
                tiny_db, MinerConfig(min_sup=0.3), workers=2,
                executor="serial", shard_strategy="zigzag",
            )
        with pytest.raises(ValueError, match="shard_strategy"):
            ShardedMiner(
                min_sup=0.3, workers=2, shard_strategy="zigzag"
            )

    def test_sharded_miner_threads_strategy_through(self, tiny_db):
        config = MinerConfig(min_sup=0.3)
        plan = self.build_plan(tiny_db, config, 2)
        miner = ShardedMiner.from_config(
            config, workers=2, executor="serial",
            shard_strategy="predicted", plan=plan,
        )
        result = miner.mine(tiny_db)
        assert result.params["shard_strategy"] == "predicted"
        assert result.patterns == PTPMiner.from_config(config).mine(
            tiny_db
        ).patterns


class TestPredictedStrategyProperty:
    """Hypothesis: identity holds for *any* forecast whatsoever."""

    def test_arbitrary_forecasts_never_change_results(self, tiny_db):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        config = MinerConfig(min_sup=0.3)
        serial = PTPMiner.from_config(config).mine(tiny_db)
        base_plan = TestPredictedStrategy.build_plan(tiny_db, config, 4)
        names = sorted(base_plan["roots"])

        @settings(max_examples=12, deadline=None)
        @given(
            workers=st.integers(1, 4),
            executor=st.sampled_from(sorted(EXECUTORS)),
            costs=st.lists(
                st.floats(
                    min_value=-1.0,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=len(names),
                max_size=len(names),
            ),
            drop=st.sets(st.sampled_from(names)) if names else st.none(),
        )
        def check(workers, executor, costs, drop):
            plan = json.loads(json.dumps(base_plan))
            for name, cost in zip(names, costs):
                plan["roots"][name]["predicted_cost"] = cost
            for name in drop or ():
                del plan["roots"][name]  # unforecast root -> proxy path
            predicted = mine_sharded(
                tiny_db, config, workers=workers, executor=executor,
                shard_strategy="predicted", plan=plan,
            )
            assert_identical(predicted, serial)

        check()
