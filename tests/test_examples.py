"""Smoke tests: every shipped example runs green end to end.

The examples double as integration tests — each asserts its scenario's
expected findings internally, so a zero exit code means the full
pipeline (generation, mining, filtering, interpretation, I/O) worked.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 4  # quickstart + >=3 domain scenarios


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda path: path.stem
)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate their findings"
