"""Tests for the unified Miner API (:mod:`repro.miners`)."""

import pytest

from repro import miners
from repro.core.config import MinerConfig
from repro.datagen import standard_dataset


@pytest.fixture(scope="module")
def tiny_db():
    return standard_dataset("tiny")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert miners.available() == (
            "bruteforce", "hdfs", "ieminer", "ptpminer", "tprefixspan",
        )

    def test_get_returns_working_factory(self, tiny_db):
        factory = miners.get("ptpminer")
        result = factory(MinerConfig(min_sup=0.4)).mine(tiny_db)
        assert result.patterns

    def test_get_unknown_names_the_known_miners(self):
        with pytest.raises(ValueError, match="unknown miner 'nope'"):
            miners.get("nope")

    def test_register_refuses_silent_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            miners.register("ptpminer", miners.get("ptpminer"))

    def test_register_and_replace_roundtrip(self):
        original = miners.get("ptpminer")
        sentinel = lambda config: original(config)  # noqa: E731
        miners.register("ptpminer", sentinel, replace=True)
        try:
            assert miners.get("ptpminer") is sentinel
        finally:
            miners.register("ptpminer", original, replace=True)

    def test_every_builtin_satisfies_the_protocol(self):
        for name in miners.available():
            built = miners.build(name, min_sup=0.4)
            assert isinstance(built, miners.Miner), name
            assert built.config.min_sup == 0.4


class TestBuild:
    def test_kwargs_build_a_config(self, tiny_db):
        miner = miners.build("ptpminer", min_sup=0.4, mode="htp")
        assert miner.config.mode == "htp"

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError, match="not both"):
            miners.build(
                "ptpminer", MinerConfig(min_sup=0.4), mode="htp"
            )

    def test_unknown_kwarg_fails_eagerly(self):
        with pytest.raises(TypeError):
            miners.build("ptpminer", minimum_support=0.4)

    def test_unsupported_option_rejected_per_miner(self):
        # IEMiner has no max_span path; the config-level gate catches it
        # at build time instead of silently ignoring the option.
        with pytest.raises(ValueError, match="IEMiner"):
            miners.build("ieminer", min_sup=0.4, max_span=5.0)

    def test_workers_routes_ptpminer_to_the_engine(self, tiny_db):
        from repro.engine import ShardedMiner

        miner = miners.build("ptpminer", min_sup=0.4, workers=2)
        assert isinstance(miner, ShardedMiner)
        serial = miners.build("ptpminer", min_sup=0.4).mine(tiny_db)
        assert miner.mine(tiny_db).patterns == serial.patterns

    def test_explicit_executor_also_routes_to_engine(self):
        from repro.engine import ShardedMiner

        miner = miners.build("ptpminer", min_sup=0.4, executor="serial")
        assert isinstance(miner, ShardedMiner)

    @pytest.mark.parametrize(
        "name", ["tprefixspan", "hdfs", "ieminer", "bruteforce"]
    )
    def test_baselines_reject_workers(self, name):
        with pytest.raises(ValueError, match="only supported"):
            miners.build(name, min_sup=0.4, workers=2)
