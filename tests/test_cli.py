"""End-to-end tests of the ptpminer CLI."""

import pytest

from repro.cli import main
from repro.io import read_database, read_patterns


@pytest.fixture
def tiny_file(tmp_path):
    path = tmp_path / "tiny.txt"
    code = main(
        ["generate", "--dataset", "tiny", "--out", str(path)]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_generates_named_synthetic(self, tiny_file):
        db = read_database(tiny_file)
        assert len(db) == 60
        assert db.name == "tiny"

    def test_generates_real_simulator(self, tmp_path, capsys):
        path = tmp_path / "lib.jsonl"
        assert main(["generate", "--dataset", "library",
                     "--out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "library-sim" in out

    def test_num_sequences_override(self, tmp_path):
        path = tmp_path / "small.txt"
        main(["generate", "--dataset", "tiny", "--out", str(path),
              "--num-sequences", "7"])
        assert len(read_database(path)) == 7

    def test_unknown_dataset_errors(self, tmp_path):
        code = main(["generate", "--dataset", "nope",
                     "--out", str(tmp_path / "x.txt")])
        assert code == 2

    def test_format_inferred_from_suffix(self, tmp_path):
        path = tmp_path / "db.csv"
        main(["generate", "--dataset", "tiny", "--out", str(path)])
        from repro.io import read_csv

        assert len(read_csv(path)) == 60


class TestMine:
    def test_mine_prints_patterns(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "P-TPMiner" in out
        assert "(e0+) (e0-)" in out

    def test_mine_writes_pattern_file(self, tiny_file, tmp_path, capsys):
        out_path = tmp_path / "patterns.txt"
        main(["mine", str(tiny_file), "--min-sup", "0.3",
              "--out", str(out_path)])
        patterns = read_patterns(out_path)
        assert patterns
        assert all(item.support >= 18 for item in patterns)

    @pytest.mark.parametrize(
        "miner", ["tprefixspan", "hdfs", "ieminer", "bruteforce"]
    )
    def test_alternative_miners_agree(self, tiny_file, capsys, miner):
        main(["mine", str(tiny_file), "--min-sup", "0.4"])
        reference = capsys.readouterr().out.splitlines()[1:]
        extra = ["--max-size", "3"] if miner == "bruteforce" else []
        main(["mine", str(tiny_file), "--min-sup", "0.4",
              "--miner", miner, *extra])
        got = capsys.readouterr().out.splitlines()[1:]
        assert got == reference

    def test_closed_and_maximal_flags(self, tiny_file, capsys):
        main(["mine", str(tiny_file), "--min-sup", "0.3", "--closed",
              "--maximal"])
        out = capsys.readouterr().out
        assert "closed patterns:" in out
        assert "maximal patterns:" in out

    def test_pruning_flags_do_not_change_output(self, tiny_file, capsys):
        main(["mine", str(tiny_file), "--min-sup", "0.3", "--top", "0"])
        reference = capsys.readouterr().out.splitlines()[1:]
        main(["mine", str(tiny_file), "--min-sup", "0.3", "--top", "0",
              "--no-pair-prune", "--no-point-prune", "--no-postfix-prune"])
        got = capsys.readouterr().out.splitlines()[1:]
        assert got == reference

    def test_htp_mode_on_hybrid_data(self, tmp_path, capsys):
        path = tmp_path / "hybrid.txt"
        main(["generate", "--dataset", "hybrid", "--out", str(path),
              "--num-sequences", "80"])
        assert main(["mine", str(path), "--min-sup", "0.2",
                     "--mode", "htp"]) == 0

    def test_tp_mode_strips_points_with_note(self, tmp_path, capsys):
        path = tmp_path / "hybrid.txt"
        main(["generate", "--dataset", "hybrid", "--out", str(path),
              "--num-sequences", "80"])
        capsys.readouterr()
        assert main(["mine", str(path), "--min-sup", "0.2"]) == 0
        err = capsys.readouterr().err
        assert "stripped" in err


class TestObservabilityFlags:
    def test_metrics_out_writes_valid_json(self, tiny_file, tmp_path, capsys):
        import json

        from repro.core.ptpminer import PTPMiner

        path = tmp_path / "metrics.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        # The snapshot's prune counters equal the PruneCounters totals of
        # an identical un-instrumented run.
        from repro.io import read_database

        reference = PTPMiner(0.3).mine(read_database(tiny_file))
        for name, value in reference.counters.as_dict().items():
            assert snapshot["counters"][f"search.{name}"] == value, name
        assert "wrote metrics snapshot" in capsys.readouterr().err

    def test_metrics_out_for_baseline_miner(self, tiny_file, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.4",
                     "--miner", "hdfs", "--metrics-out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["search.patterns_emitted"] > 0

    def test_trace_writes_jsonl_covering_phases(self, tiny_file, tmp_path):
        from repro.obs.trace import read_trace

        path = tmp_path / "trace.jsonl"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--trace", str(path)]) == 0
        events = read_trace(path)
        names = {e["name"] for e in events if e["ev"] == "B"}
        assert {"mine", "prune", "encode", "pair_tables", "search",
                "extend", "project"} <= names
        begins = sum(1 for e in events if e["ev"] == "B")
        ends = sum(1 for e in events if e["ev"] == "E")
        assert begins == ends

    def test_progress_prints_heartbeat_to_stderr(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[done]" in err

    def test_obs_flags_leave_sinks_uninstalled(self, tiny_file, tmp_path):
        from repro.obs import metrics as obs_metrics
        from repro.obs import progress as obs_progress
        from repro.obs import trace as obs_trace

        main(["mine", str(tiny_file), "--min-sup", "0.3",
              "--metrics-out", str(tmp_path / "m.json"),
              "--trace", str(tmp_path / "t.jsonl"), "--progress"])
        assert obs_metrics.active_registry() is None
        assert obs_trace.active_tracer() is None
        assert obs_progress.active_reporter() is None

    def test_log_level_flag_accepted(self, tiny_file, capsys):
        assert main(["--log-level", "info", "mine", str(tiny_file),
                     "--min-sup", "0.4"]) == 0

    def test_profile_writes_json_and_folded(self, tiny_file, tmp_path,
                                            capsys):
        import json

        base = tmp_path / "prof"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--profile-out", str(base)]) == 0
        err = capsys.readouterr().err
        assert "wrote profile" in err
        report = json.loads((tmp_path / "prof.json").read_text())
        assert report["kind"] == "repro-profile"
        assert {p["name"] for p in report["phases"]} >= {"search"}
        folded = (tmp_path / "prof.folded").read_text().splitlines()
        assert folded
        # Every folded line is "stack weight" rooted at a phase name.
        for line in folded:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
        # The hot path of the search phase is visible to flamegraphs.
        assert any(
            line.startswith("search;") and
            ("project" in line or "gather_candidates" in line)
            for line in folded
        )

    def test_profile_composes_with_trace(self, tiny_file, tmp_path,
                                         capsys):
        from repro.obs import trace as obs_trace

        base = tmp_path / "prof"
        trace_path = tmp_path / "t.jsonl"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--trace", str(trace_path),
                     "--profile-out", str(base)]) == 0
        # Profiler forwards span events, so the trace still covers the
        # phases it profiled.
        events = obs_trace.read_trace(trace_path)
        names = {e["name"] for e in events if e["ev"] == "B"}
        assert "search" in names
        assert (tmp_path / "prof.json").exists()
        assert obs_trace.active_tracer() is None
        capsys.readouterr()


class TestStats:
    def test_stats_table(self, tiny_file, capsys):
        assert main(["stats", str(tiny_file)]) == 0
        out = capsys.readouterr().out
        assert "sequences" in out
        assert "60" in out


class TestMineExtensions:
    def test_top_k_flag(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--top-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "P-TPMiner(top-k)" in out
        assert out.count("(e") >= 3

    def test_top_k_requires_ptpminer(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--top-k", "3",
                     "--miner", "hdfs"]) == 2

    def test_max_span_flag_reduces_patterns(self, tiny_file, capsys):
        main(["mine", str(tiny_file), "--min-sup", "0.3", "--top", "0"])
        free = capsys.readouterr().out.count("\n")
        main(["mine", str(tiny_file), "--min-sup", "0.3", "--top", "0",
              "--max-span", "4"])
        constrained = capsys.readouterr().out.count("\n")
        assert constrained <= free

    def test_rules_flag(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.2",
                     "--rules", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "temporal rules" in out
        assert "=>" in out


class TestPerfSubcommand:
    def test_perf_forwards_to_perf_cli(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(["perf", "run", "--matrix", "tiny", "--quiet",
                     "--out", str(out)]) == 0
        import json

        report = json.loads(out.read_text())
        assert report["kind"] == "repro-bench"
        capsys.readouterr()

    def test_perf_usage_error_propagates(self, capsys):
        assert main(["perf", "frobnicate"]) == 2
        capsys.readouterr()


class TestParser:
    def test_help_lists_subcommands(self, capsys):
        import pytest as _pytest

        from repro.cli import build_parser

        parser = build_parser()
        with _pytest.raises(SystemExit):
            parser.parse_args(["--help"])
        out = capsys.readouterr().out
        for sub in ("generate", "mine", "stats", "perf"):
            assert sub in out

    def test_missing_subcommand_errors(self):
        import pytest as _pytest

        from repro.cli import build_parser

        with _pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestParallelMining:
    def test_workers_output_matches_serial(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3"]) == 0
        reference = capsys.readouterr().out.splitlines()[1:]
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "4"]) == 0
        got = capsys.readouterr().out.splitlines()[1:]
        assert got == reference

    def test_serial_executor_flag(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--executor", "serial"]) == 0
        out = capsys.readouterr().out
        assert "(e0+) (e0-)" in out

    def test_workers_rejected_for_baselines(self, tiny_file, capsys):
        code = main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--miner", "hdfs", "--workers", "2"])
        assert code == 2
        assert "only supported" in capsys.readouterr().err

    def test_workers_rejected_with_top_k(self, tiny_file, capsys):
        code = main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--top-k", "5", "--workers", "2"])
        assert code == 2
        assert "--top-k" in capsys.readouterr().err

    def test_unsupported_option_errors_eagerly(self, tiny_file, capsys):
        # IEMiner silently ignored --max-span before the MinerConfig
        # redesign; now the mismatch is a clean usage error.
        code = main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--miner", "ieminer", "--max-span", "5"])
        assert code == 2
        assert "IEMiner" in capsys.readouterr().err

    def test_trace_and_metrics_survive_workers(self, tiny_file, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--executor", "serial",
                     "--trace", str(trace_path),
                     "--metrics-out", str(metrics_path)]) == 0
        import json

        from repro.obs.trace import read_trace

        events = read_trace(trace_path)
        assert any(str(ev.get("span", "")).startswith("shard")
                   for ev in events)
        snapshot = json.loads(metrics_path.read_text())
        assert any(key.startswith("shard.")
                   for key in snapshot["counters"])


class TestLiveMining:
    def test_live_output_matches_serial(self, tiny_file, capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3"]) == 0
        reference = capsys.readouterr().out.splitlines()[1:]
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "4", "--live",
                     "--live-interval", "0"]) == 0
        captured = capsys.readouterr()
        assert captured.out.splitlines()[1:] == reference
        live_lines = [line for line in captured.err.splitlines()
                      if line.startswith("[live] roots ")]
        assert live_lines
        done = [int(line.split()[2].split("/")[0]) for line in live_lines]
        assert done == sorted(done)

    def test_live_log_writes_parseable_frames(self, tiny_file, tmp_path,
                                              capsys):
        log = tmp_path / "frames.jsonl"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--live-log", str(log),
                     "--live-interval", "0"]) == 0
        capsys.readouterr()
        from repro.obs.live import read_live_log

        frames = read_live_log(log)
        assert frames
        assert {frame.shard for frame in frames} == {0, 1}
        assert any(frame.final for frame in frames)

    def test_live_rejected_for_baselines(self, tiny_file, capsys):
        code = main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--miner", "hdfs", "--live"])
        assert code == 2
        assert "--live" in capsys.readouterr().err

    def test_live_rejected_with_top_k(self, tiny_file, capsys):
        code = main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--top-k", "5", "--live"])
        assert code == 2
        assert "--top-k" in capsys.readouterr().err


class TestReportSubcommand:
    @pytest.fixture
    def artifacts(self, tiny_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        log = tmp_path / "frames.jsonl"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--live-log", str(log),
                     "--live-interval", "0", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        return trace, metrics, log

    def test_report_joins_all_sources(self, artifacts, capsys):
        trace, metrics, log = artifacts
        assert main(["report", "--trace", str(trace),
                     "--metrics", str(metrics),
                     "--live-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "# ptpminer run report" in out
        assert "## Phases" in out
        assert "## Shards" in out
        assert "## Prune funnel" in out

    def test_report_json_and_out_file(self, artifacts, tmp_path, capsys):
        trace, _, _ = artifacts
        out_path = tmp_path / "report.json"
        assert main(["report", "--trace", str(trace), "--json",
                     "--out", str(out_path)]) == 0
        import json

        report = json.loads(out_path.read_text())
        assert "phases" in report

    def test_report_requires_a_source(self, capsys):
        assert main(["report"]) == 2
        assert "at least one" in capsys.readouterr().err

    def test_report_missing_file_errors_cleanly(self, tmp_path, capsys):
        assert main(["report", "--trace",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err


class TestLintSubcommand:
    @pytest.fixture
    def dirty_file(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text('"""Doc."""\n\n\ndef f(x=[]):\n    return x\n')
        return path

    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", "src/repro/contracts.py"]) == 0
        capsys.readouterr()

    def test_findings_exit_one_with_rule_id(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file)]) == 1
        captured = capsys.readouterr()
        assert "R002" in captured.out
        assert "finding(s)" in captured.err

    def test_json_format(self, dirty_file, capsys):
        import json

        assert main(["lint", str(dirty_file), "--format", "json"]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert findings[0]["code"] == "R002"
        assert findings[0]["path"] == str(dirty_file)

    def test_sarif_format_to_file(self, dirty_file, tmp_path, capsys):
        import json

        out = tmp_path / "lint.sarif"
        assert main(["lint", str(dirty_file), "--format", "sarif",
                     "--out", str(out)]) == 1
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "R002"

    def test_shallow_flag_and_missing_path_error(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--shallow"]) == 1
        capsys.readouterr()
        assert main(["lint", str(dirty_file.parent / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err


class TestCostProfileFlag:
    def test_cost_profile_writes_json(self, tiny_file, tmp_path, capsys):
        out = tmp_path / "cost.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--cost-profile", str(out)]) == 0
        err = capsys.readouterr().err
        assert "cost profile" in err
        import json

        profile = json.loads(out.read_text())
        assert profile["kind"] == "repro-cost"
        assert profile["roots"]
        assert profile["levels"]["1"]["frequent"] == len(profile["roots"])

    def test_cost_profile_identical_serial_vs_workers(
        self, tiny_file, tmp_path, capsys
    ):
        import json

        from repro.obs.costmodel import profile_digest

        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--cost-profile", str(serial)]) == 0
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "3", "--cost-profile",
                     str(sharded)]) == 0
        capsys.readouterr()
        a = json.loads(serial.read_text())
        b = json.loads(sharded.read_text())
        assert profile_digest(a) == profile_digest(b)

    def test_cost_profile_requires_ptpminer(self, tiny_file, tmp_path,
                                            capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--miner", "tprefixspan",
                     "--cost-profile", str(tmp_path / "c.json")]) == 2
        assert "ptpminer" in capsys.readouterr().err


class TestLedgerFlags:
    def test_mine_appends_ledger_entry(self, tiny_file, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--ledger-dir", str(ledger_dir)]) == 0
        err = capsys.readouterr().err
        assert "ledger: appended run" in err
        (entry,) = RunLedger(ledger_dir).entries()
        assert entry["config"]["miner"] == "ptpminer"
        assert entry["config"]["min_sup"] == 0.3
        assert entry["patterns"] > 0
        assert entry["counters"]
        assert entry["phases"]  # registry captured phase timings
        assert entry["cost"]["digest"]  # cost collected for ptpminer

    def test_ledger_entries_share_fingerprint_across_reruns(
        self, tiny_file, tmp_path, capsys
    ):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        for _ in range(2):
            assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                         "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        first, second = RunLedger(ledger_dir).entries()
        assert first["fingerprint"] == second["fingerprint"]
        assert first["cost"]["digest"] == second["cost"]["digest"]
        assert first["run_id"] != second["run_id"]


class TestHistorySubcommand:
    @pytest.fixture
    def ledger_dir(self, tiny_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        for _ in range(2):
            assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                         "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        return ledger_dir

    def test_history_renders_markdown(self, ledger_dir, capsys):
        assert main(["history", "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "# Run history" in out
        assert "0 regression(s)" in out

    def test_history_json_and_out_file(self, ledger_dir, tmp_path, capsys):
        import json

        out_path = tmp_path / "history.json"
        assert main(["history", "--ledger-dir", str(ledger_dir),
                     "--json", "--out", str(out_path)]) == 0
        capsys.readouterr()
        report = json.loads(out_path.read_text())
        assert report["kind"] == "repro-history"
        assert len(report["groups"]) == 1
        assert len(report["groups"][0]["runs"]) == 2

    def test_check_clean_exits_zero(self, ledger_dir, capsys):
        assert main(["history", "--ledger-dir", str(ledger_dir),
                     "--check"]) == 0
        capsys.readouterr()

    def test_check_regressed_ledger_exits_one(self, ledger_dir, capsys):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(ledger_dir)
        first, second = ledger.entries()
        tampered = dict(second)
        tampered["run_id"] = second["run_id"] + "-regressed"
        tampered["counters"] = dict(second["counters"])
        tampered["counters"]["nodes_expanded"] += 10
        ledger.append(tampered)
        assert main(["history", "--ledger-dir", str(ledger_dir),
                     "--check"]) == 1
        captured = capsys.readouterr()
        assert "regression" in captured.err
        assert "counters.nodes_expanded" in captured.out

    def test_empty_ledger_is_ok(self, tmp_path, capsys):
        assert main(["history", "--ledger-dir",
                     str(tmp_path / "empty")]) == 0
        assert "_Ledger is empty._" in capsys.readouterr().out


class TestDiffSubcommand:
    @pytest.fixture
    def two_runs(self, tiny_file, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        for _ in range(2):
            assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                         "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        a, b = RunLedger(ledger_dir).entries()
        return ledger_dir, a, b

    def test_diff_identical_runs_exits_zero(self, two_runs, capsys):
        ledger_dir, a, b = two_runs
        assert main(["diff", a["run_id"], b["run_id"],
                     "--ledger-dir", str(ledger_dir)]) == 0
        out = capsys.readouterr().out
        assert "# Run diff" in out
        assert "Counters identical." in out
        assert "**No regressions.**" in out

    def test_diff_flags_injected_counter_regression(self, two_runs,
                                                    capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir, a, b = two_runs
        tampered = dict(b)
        tampered["run_id"] = "tampered-run"
        tampered["counters"] = dict(b["counters"])
        tampered["counters"]["nodes_expanded"] += 7
        RunLedger(ledger_dir).append(tampered)
        assert main(["diff", a["run_id"], "tampered-run",
                     "--ledger-dir", str(ledger_dir)]) == 1
        out = capsys.readouterr().out
        assert "nodes_expanded" in out
        assert "+7" in out
        assert "**Regressions detected.**" in out

    def test_diff_json_output(self, two_runs, tmp_path, capsys):
        import json

        ledger_dir, a, b = two_runs
        out_path = tmp_path / "diff.json"
        assert main(["diff", a["run_id"], b["run_id"],
                     "--ledger-dir", str(ledger_dir),
                     "--json", "--out", str(out_path)]) == 0
        capsys.readouterr()
        diff = json.loads(out_path.read_text())
        assert diff["kind"] == "repro-diff"
        assert diff["has_regressions"] is False

    def test_diff_unknown_ref_exits_two(self, two_runs, capsys):
        ledger_dir, a, _ = two_runs
        assert main(["diff", a["run_id"], "zzz",
                     "--ledger-dir", str(ledger_dir)]) == 2
        assert "no run matching" in capsys.readouterr().err


class TestReportGracefulDegradation:
    def test_metrics_only_report_carries_notes(self, tiny_file, tmp_path,
                                               capsys):
        metrics = tmp_path / "metrics.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["report", "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "## Prune funnel" in out
        assert "## Notes" in out
        assert "no trace given" in out

    def test_full_report_has_no_notes(self, tiny_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        log = tmp_path / "frames.jsonl"
        cost = tmp_path / "cost.json"
        prov = tmp_path / "prov.json"
        plan = tmp_path / "plan.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--live-log", str(log),
                     "--live-interval", "0", "--trace", str(trace),
                     "--metrics-out", str(metrics),
                     "--cost-profile", str(cost),
                     "--provenance", str(prov),
                     "--plan-out", str(plan)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(trace),
                     "--metrics", str(metrics),
                     "--live-log", str(log),
                     "--cost", str(cost),
                     "--provenance", str(prov),
                     "--plan", str(plan)]) == 0
        out = capsys.readouterr().out
        assert "## Notes" not in out
        assert "## Plan vs actual" in out
        assert "## Heaviest roots (realized)" in out

    def test_legacy_three_source_report_notes_new_sources(
            self, tiny_file, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        log = tmp_path / "frames.jsonl"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--live-log", str(log),
                     "--live-interval", "0", "--trace", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        capsys.readouterr()
        assert main(["report", "--trace", str(trace),
                     "--metrics", str(metrics),
                     "--live-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "## Notes" in out
        assert "no cost profile given" in out


class TestProvenanceFlag:
    def mine_with_provenance(self, tiny_file, path, *extra):
        return main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--provenance", str(path), *extra])

    def test_mine_writes_provenance_snapshot(self, tiny_file, tmp_path,
                                             capsys):
        import json

        prov_path = tmp_path / "prov.json"
        assert self.mine_with_provenance(tiny_file, prov_path) == 0
        err = capsys.readouterr().err
        assert "wrote provenance to" in err
        snap = json.loads(prov_path.read_text())
        assert snap["kind"] == "repro-provenance"
        assert snap["patterns"]
        # Every recorded support set checks out against its support.
        for entry in snap["patterns"].values():
            assert len(entry["sids"]) == entry["support"]
            assert set(entry["witnesses"]) == {
                str(sid) for sid in entry["sids"]
            }

    def test_explain_out_alias(self, tiny_file, tmp_path, capsys):
        prov_path = tmp_path / "prov.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--explain-out", str(prov_path)]) == 0
        capsys.readouterr()
        assert prov_path.is_file()

    def test_provenance_identical_serial_vs_workers(self, tiny_file,
                                                    tmp_path, capsys):
        serial = tmp_path / "serial.json"
        sharded = tmp_path / "sharded.json"
        assert self.mine_with_provenance(tiny_file, serial) == 0
        assert self.mine_with_provenance(
            tiny_file, sharded, "--workers", "4"
        ) == 0
        capsys.readouterr()
        assert serial.read_text() == sharded.read_text()

    def test_provenance_requires_ptpminer(self, tiny_file, tmp_path,
                                          capsys):
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--miner", "tprefixspan",
                     "--provenance", str(tmp_path / "p.json")]) == 2
        assert "--provenance" in capsys.readouterr().err

    def test_ledger_entry_carries_digest_and_path(self, tiny_file,
                                                  tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        prov_path = tmp_path / "prov.json"
        ledger_dir = tmp_path / "ledger"
        assert self.mine_with_provenance(
            tiny_file, prov_path, "--ledger-dir", str(ledger_dir)
        ) == 0
        capsys.readouterr()
        (entry,) = RunLedger(ledger_dir).entries()
        assert entry["provenance_path"] == str(prov_path)
        assert len(entry["patterns_digest"]) == 16

    def test_patterns_digest_recorded_without_provenance_file(
        self, tiny_file, tmp_path, capsys
    ):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        (entry,) = RunLedger(ledger_dir).entries()
        assert len(entry["patterns_digest"]) == 16
        assert "provenance_path" not in entry


class TestExplainSubcommand:
    @pytest.fixture
    def prov_file(self, tiny_file, tmp_path, capsys):
        path = tmp_path / "prov.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--provenance", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_explain_emitted_pattern(self, prov_file, capsys):
        assert main(["explain", "(e0+) (e0-)",
                     "--provenance", str(prov_file)]) == 0
        out = capsys.readouterr().out
        assert "# explain `(e0+) (e0-)`" in out
        assert "Witnesses" in out

    def test_explain_missing_pattern_exits_one(self, prov_file, capsys):
        assert main(["explain", "(zz+) (zz-)",
                     "--provenance", str(prov_file)]) == 1
        assert "why-not" in capsys.readouterr().out

    def test_explain_malformed_pattern_exits_two_with_hint(
        self, prov_file, capsys
    ):
        assert main(["explain", "e0+ e0-",
                     "--provenance", str(prov_file)]) == 2
        err = capsys.readouterr().err
        assert "hint:" in err
        assert "(A+ B+) (A- B-)" in err

    def test_explain_json_output(self, prov_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "explain.json"
        assert main(["explain", "(e0+) (e0-)",
                     "--provenance", str(prov_file),
                     "--json", "--out", str(out_path)]) == 0
        capsys.readouterr()
        report = json.loads(out_path.read_text())
        assert report["kind"] == "repro-explain"
        assert report["found"] is True
        assert report["sids"]

    def test_explain_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["explain", "(e0+) (e0-)",
                     "--provenance", str(tmp_path / "nope.json")]) == 2
        assert "nope.json" in capsys.readouterr().err

    def test_explain_rejects_non_provenance_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else"}')
        assert main(["explain", "(e0+) (e0-)",
                     "--provenance", str(bad)]) == 2
        assert "not a provenance snapshot" in capsys.readouterr().err


class TestWhyNotSubcommand:
    @pytest.fixture
    def prov_file(self, tiny_file, tmp_path, capsys):
        path = tmp_path / "prov.json"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--provenance", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_why_not_on_absent_pattern(self, prov_file, capsys):
        assert main(["why-not", "(zz+) (zz-)",
                     "--provenance", str(prov_file)]) == 0
        out = capsys.readouterr().out
        assert "# why-not `(zz+) (zz-)`" in out

    def test_why_not_attributes_a_recorded_kill(self, prov_file, capsys):
        import json

        snap = json.loads(prov_file.read_text())
        pruned = sorted(snap["pruned"])
        assert pruned, "expected recorded prune decisions on tiny"
        assert main(["why-not", pruned[0],
                     "--provenance", str(prov_file)]) == 0
        out = capsys.readouterr().out
        assert "generated and killed" in out

    def test_why_not_on_emitted_pattern_exits_one(self, prov_file,
                                                  capsys):
        assert main(["why-not", "(e0+) (e0-)",
                     "--provenance", str(prov_file)]) == 1
        assert "ptpminer explain" in capsys.readouterr().out

    def test_why_not_malformed_pattern_exits_two(self, prov_file,
                                                 capsys):
        assert main(["why-not", "broken((",
                     "--provenance", str(prov_file)]) == 2
        assert "hint:" in capsys.readouterr().err


class TestDiffPatternsSubcommand:
    def mine_prov(self, tiny_file, path, min_sup, *extra):
        assert main(["mine", str(tiny_file), "--min-sup", str(min_sup),
                     "--provenance", str(path), *extra]) == 0

    def test_identical_runs_exit_zero(self, tiny_file, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self.mine_prov(tiny_file, a, 0.3)
        self.mine_prov(tiny_file, b, 0.3)
        capsys.readouterr()
        assert main(["diff", "--patterns", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Result sets are identical" in out

    def test_threshold_change_attributed_exit_one(self, tiny_file,
                                                  tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self.mine_prov(tiny_file, a, 0.3)
        self.mine_prov(tiny_file, b, 0.6)
        capsys.readouterr()
        assert main(["diff", "--patterns", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "## Removed in B" in out
        assert "site `" in out or "point-pruned" in out

    def test_resolves_ledger_run_ids(self, tiny_file, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        self.mine_prov(tiny_file, a, 0.3, "--ledger-dir", str(ledger_dir))
        self.mine_prov(tiny_file, b, 0.3, "--ledger-dir", str(ledger_dir))
        capsys.readouterr()
        run_a, run_b = [
            e["run_id"] for e in RunLedger(ledger_dir).entries()
        ]
        assert main(["diff", "--patterns", run_a, run_b,
                     "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["diff", "--patterns", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2
        assert "not a file" in capsys.readouterr().err

    def test_plain_diff_still_requires_ledger_dir(self, capsys):
        assert main(["diff", "run-a", "run-b"]) == 2
        assert "--ledger-dir" in capsys.readouterr().err


class TestHistoryLimitAndDigest:
    @pytest.fixture
    def ledger_dir(self, tiny_file, tmp_path, capsys):
        ledger_dir = tmp_path / "ledger"
        for _ in range(3):
            assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                         "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        return ledger_dir

    def test_limit_truncates_displayed_rows(self, ledger_dir, tmp_path,
                                            capsys):
        import json

        out_path = tmp_path / "history.json"
        assert main(["history", "--ledger-dir", str(ledger_dir),
                     "--limit", "1", "--json",
                     "--out", str(out_path)]) == 0
        capsys.readouterr()
        report = json.loads(out_path.read_text())
        (group,) = report["groups"]
        assert len(group["runs"]) == 1

    def test_check_flags_patterns_digest_drift(self, ledger_dir, capsys):
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(ledger_dir)
        last = dict(ledger.entries()[-1])
        last["run_id"] = "drifted-run"
        last["patterns_digest"] = "0" * 16
        ledger.append(last)
        assert main(["history", "--ledger-dir", str(ledger_dir),
                     "--check"]) == 1
        captured = capsys.readouterr()
        assert "patterns_digest" in captured.out
        assert "result set drifted" in captured.out


class TestPlanSubcommand:
    def test_markdown_plan_renders(self, tiny_file, capsys):
        assert main(["plan", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "3"]) == 0
        out = capsys.readouterr().out
        assert "# Shard plan" in out
        assert "## Predicted heaviest roots" in out
        assert "## Assignments" in out
        assert "static features only" in out

    def test_json_plan_is_loadable(self, tiny_file, tmp_path, capsys):
        import json as _json

        out_path = tmp_path / "plan.json"
        assert main(["plan", str(tiny_file), "--min-sup", "0.3",
                     "--workers", "2", "--json",
                     "--out", str(out_path)]) == 0
        plan = _json.loads(out_path.read_text())
        assert plan["kind"] == "repro-plan"
        assert set(plan["assignments"]) == {"roundrobin", "predicted"}

    def test_ledger_history_calibrates_plan(self, tiny_file, tmp_path,
                                            capsys):
        ledger_dir = tmp_path / "runs"
        assert main(["mine", str(tiny_file), "--min-sup", "0.3",
                     "--ledger-dir", str(ledger_dir)]) == 0
        capsys.readouterr()
        assert main(["plan", str(tiny_file), "--min-sup", "0.3",
                     "--ledger-dir", str(ledger_dir)]) == 0
        assert "ledger-calibrated from 1 matching run(s)" in (
            capsys.readouterr().out
        )


class TestShardStrategyFlag:
    def mine(self, tiny_file, *extra):
        return main(["mine", str(tiny_file), "--min-sup", "0.3",
                     *extra])

    def test_predicted_matches_default_patterns(self, tiny_file,
                                                tmp_path, capsys):
        out_rr = tmp_path / "rr.txt"
        out_pred = tmp_path / "pred.txt"
        assert self.mine(tiny_file, "--workers", "2",
                         "--out", str(out_rr)) == 0
        assert self.mine(tiny_file, "--workers", "2",
                         "--shard-strategy", "predicted",
                         "--out", str(out_pred)) == 0
        assert out_rr.read_text() == out_pred.read_text()

    def test_plan_out_writes_plan(self, tiny_file, tmp_path, capsys):
        import json as _json

        plan_path = tmp_path / "plan.json"
        assert self.mine(tiny_file, "--plan-out", str(plan_path)) == 0
        assert _json.loads(plan_path.read_text())["kind"] == "repro-plan"

    def test_predicted_requires_ptpminer(self, tiny_file, capsys):
        assert self.mine(tiny_file, "--miner", "bruteforce",
                         "--shard-strategy", "predicted") == 2
        assert "ptpminer" in capsys.readouterr().err

    def test_predicted_rejects_top_k(self, tiny_file, capsys):
        assert self.mine(tiny_file, "--top-k", "5",
                         "--shard-strategy", "predicted") == 2
        assert "--top-k" in capsys.readouterr().err

    def test_ledger_entry_gains_plan_and_calibration(
            self, tiny_file, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "runs"
        assert self.mine(tiny_file, "--workers", "2",
                         "--shard-strategy", "predicted",
                         "--ledger-dir", str(ledger_dir)) == 0
        err = capsys.readouterr().err
        assert "plan calibration" in err
        (entry,) = RunLedger(ledger_dir).entries()
        assert entry["plan"]["predictor"]["source"] == "static"
        calibration = entry["calibration"]
        assert calibration["kind"] == "repro-calibration"
        assert calibration["strategy"] == "predicted"
