"""Tests for the ASCII timeline renderer."""

import pytest

from repro.harness.timeline import render_pattern, render_sequence
from repro.model.pattern import TemporalPattern
from repro.model.sequence import ESequence

from tests.conftest import seq


class TestRenderSequence:
    def test_labels_listed(self):
        out = render_sequence(seq((0, 5, "fever"), (2, 4, "rash")))
        assert "fever" in out
        assert "rash" in out

    def test_interval_bar_shape(self):
        out = render_sequence(seq((0, 10, "A")), width=11, label_width=2)
        row = out.splitlines()[0]
        assert row == "A |=========|"

    def test_point_event_star(self):
        out = render_sequence(seq((0, 4, "A"), (2, 2, "tick")))
        tick_row = next(
            line for line in out.splitlines() if line.startswith("tick")
        )
        assert "*" in tick_row
        assert "=" not in tick_row

    def test_duplicate_labels_get_suffix(self):
        out = render_sequence(seq((0, 2, "A"), (4, 6, "A")))
        assert "A#2" in out

    def test_axis_bounds(self):
        out = render_sequence(seq((3, 17, "A")))
        axis = out.splitlines()[-1]
        assert "3" in axis and "17" in axis

    def test_empty_sequence(self):
        assert "empty" in render_sequence(ESequence([]))

    def test_containment_is_visible(self):
        out = render_sequence(
            seq((0, 10, "outer"), (3, 6, "inner")), width=21, label_width=6
        )
        outer_row, inner_row = out.splitlines()[:2]
        assert outer_row.index("|") < inner_row.index("|")
        assert outer_row.rindex("|") > inner_row.rindex("|")


class TestRenderPattern:
    def test_complete_pattern_renders(self):
        out = render_pattern(TemporalPattern.parse("(A+) (B+) (A-) (B-)"))
        assert "A" in out and "B" in out

    def test_incomplete_pattern_rejected(self):
        with pytest.raises(ValueError, match="unfinished"):
            render_pattern(TemporalPattern.parse("(A+)"))

    def test_hybrid_pattern_renders_star(self):
        out = render_pattern(TemporalPattern.parse("(A+) (t.) (A-)"))
        t_row = next(
            line for line in out.splitlines() if line.startswith("t ")
        )
        assert "*" in t_row
