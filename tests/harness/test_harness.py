"""Tests for the experiment harness (metrics, tables, figures, runner)."""

import pytest

from repro.core.ptpminer import PTPMiner
from repro.harness.figures import ascii_chart
from repro.harness.metrics import RunMetrics, measure
from repro.harness.runner import ExperimentRunner, MinerSpec
from repro.harness.tables import format_value, render_table

from tests.conftest import make_random_db


class TestMeasure:
    def test_returns_result_and_timing(self):
        metrics = measure(lambda: 41 + 1)
        assert metrics.result == 42
        assert metrics.elapsed_s >= 0

    def test_memory_tracking_observes_allocation(self):
        metrics = measure(lambda: [list(range(1000)) for _ in range(100)])
        assert metrics.peak_mem_bytes > 100_000
        assert metrics.peak_mem_mb == pytest.approx(
            metrics.peak_mem_bytes / (1024 * 1024)
        )

    def test_memory_tracking_optional(self):
        metrics = measure(lambda: 1, track_memory=False)
        # None, not 0: "not measured" must be distinguishable from a
        # genuinely zero-growth run.
        assert metrics.peak_mem_bytes is None
        assert metrics.peak_mem_mb is None

    def test_collect_obs_attaches_snapshot(self):
        from repro.obs import metrics as obs_metrics

        metrics = measure(
            lambda: 7, track_memory=False, collect_obs=True
        )
        assert metrics.result == 7
        assert metrics.obs is not None
        assert set(metrics.obs) == {"counters", "gauges", "histograms"}
        # The scoped registry was uninstalled afterwards.
        assert obs_metrics.active_registry() is None

    def test_obs_none_by_default(self):
        assert measure(lambda: 1, track_memory=False).obs is None

    def test_exception_propagates_and_stops_tracing(self):
        import tracemalloc

        with pytest.raises(RuntimeError):
            measure(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert not tracemalloc.is_tracing()

    def test_already_tracing_reuses_outer_trace(self):
        import tracemalloc

        tracemalloc.start()
        try:
            metrics = measure(lambda: [bytearray(64_000)])
            # The inner call measured real growth against the live trace
            # and left the caller's tracemalloc session running.
            assert metrics.peak_mem_bytes > 50_000
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_nested_measure_keeps_outer_session(self):
        import tracemalloc

        def outer():
            inner = measure(lambda: [bytearray(64_000)])
            # Nested measure must not tear down the enclosing session.
            assert tracemalloc.is_tracing()
            return inner

        outer_metrics = measure(outer)
        assert not tracemalloc.is_tracing()
        assert outer_metrics.result.peak_mem_bytes > 50_000
        # The outer window contains the inner allocation too.
        assert (
            outer_metrics.peak_mem_bytes
            >= outer_metrics.result.peak_mem_bytes
        )

    def test_collect_obs_with_track_memory_interaction(self):
        # Documented interaction: both flags compose — the snapshot is
        # captured AND peak memory is measured, with the registry's own
        # small allocations inside the tracemalloc window.
        db = make_random_db(1, num_sequences=8)
        metrics = measure(
            lambda: PTPMiner(0.4).mine(db),
            track_memory=True,
            collect_obs=True,
        )
        assert metrics.obs is not None
        assert metrics.peak_mem_bytes is not None
        assert metrics.peak_mem_bytes > 0
        assert "search.nodes_expanded" in metrics.obs["counters"]

    def test_collect_profile_attaches_report(self):
        db = make_random_db(1, num_sequences=8)
        metrics = measure(
            lambda: PTPMiner(0.4).mine(db),
            track_memory=True,
            collect_profile=True,
        )
        assert metrics.profile is not None
        assert metrics.profile["kind"] == "repro-profile"
        names = {p["name"] for p in metrics.profile["phases"]}
        assert "search" in names
        # Memory attribution follows track_memory.
        assert any(
            p["memory_top"] for p in metrics.profile["phases"]
        )

    def test_profile_none_by_default(self):
        assert measure(lambda: 1, track_memory=False).profile is None

    def test_runmetrics_frozen(self):
        metrics = RunMetrics(1, 0.5, 10)
        with pytest.raises(AttributeError):
            metrics.elapsed_s = 2  # type: ignore[misc]


class TestTables:
    def test_render_basic(self):
        text = render_table(
            [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="T"
        )
        assert "T" in text
        assert "a" in text and "b" in text
        assert "22" in text

    def test_missing_cells_blank(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_explicit_column_order(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_format_value(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(12345.6) == "12,346"
        assert format_value(3) == "3"
        assert format_value(123456) == "123,456"
        assert format_value(True) == "True"
        assert format_value("x") == "x"
        assert format_value(None) == "—"

    def test_empty_rows(self):
        assert render_table([], columns=["a"])


class TestFigures:
    def test_chart_contains_legend_and_bounds(self):
        chart = ascii_chart(
            {"m1": [(1, 10), (2, 20)], "m2": [(1, 5), (2, 40)]},
            title="runtime",
        )
        assert "runtime" in chart
        assert "m1" in chart and "m2" in chart
        assert "o" in chart and "x" in chart

    def test_log_scale(self):
        chart = ascii_chart(
            {"m": [(1, 1), (2, 1000)]}, log_y=True
        )
        assert "log scale" in chart

    def test_empty_series(self):
        assert "(no data)" in ascii_chart({}, title="t")

    def test_single_point(self):
        chart = ascii_chart({"m": [(1, 5)]}, log_y=False)
        assert "5" in chart

    def test_series_collision_marked_not_silently_overwritten(self):
        # Two series sharing a grid cell render '?' + a legend note
        # instead of the later series masking the earlier one.
        chart = ascii_chart(
            {"m1": [(1, 5), (2, 10)], "m2": [(1, 5), (2, 20)]},
            log_y=False,
        )
        assert "?" in chart
        assert "?=overlap" in chart

    def test_no_collision_no_overlap_legend(self):
        chart = ascii_chart(
            {"m1": [(1, 5)], "m2": [(2, 20)]}, log_y=False
        )
        assert "?" not in chart
        assert "overlap" not in chart

    def test_same_series_repeat_not_a_collision(self):
        chart = ascii_chart({"m1": [(1, 5), (1, 5)]}, log_y=False)
        assert "?" not in chart


class TestRunner:
    def test_sweep_collects_rows(self):
        db = make_random_db(1, num_sequences=10)
        runner = ExperimentRunner("demo", x_name="min_sup")
        specs = [MinerSpec("ptp", lambda ms: PTPMiner(ms))]
        result = runner.sweep(db, [0.3, 0.5], specs)
        assert len(result.rows) == 2
        assert all(row["miner"] == "ptp" for row in result.rows)
        assert all("runtime_s" in row for row in result.rows)
        assert all("patterns" in row for row in result.rows)

    def test_memory_column_optional(self):
        db = make_random_db(1, num_sequences=5)
        runner = ExperimentRunner("demo")
        runner.run_point(
            db, 0.5, [MinerSpec("ptp", lambda ms: PTPMiner(ms))],
            track_memory=True,
        )
        assert "peak_mem_mb" in runner.result.rows[0]

    def test_series_extraction(self):
        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        runner.sweep(
            db, [0.3, 0.5], [MinerSpec("ptp", lambda ms: PTPMiner(ms))]
        )
        series = runner.result.series("patterns")
        assert list(series) == ["ptp"]
        assert len(series["ptp"]) == 2

    def test_table_and_chart_render(self):
        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        runner.sweep(
            db, [0.3, 0.5], [MinerSpec("ptp", lambda ms: PTPMiner(ms))]
        )
        assert "demo" in runner.result.table()
        assert "legend" in runner.result.chart("runtime_s")

    def test_collect_obs_rows_carry_snapshot_and_phase_columns(self):
        db = make_random_db(1, num_sequences=5)
        runner = ExperimentRunner("demo")
        rows = runner.run_point(
            db, 0.5, [MinerSpec("ptp", lambda ms: PTPMiner(ms))],
            collect_obs=True,
        )
        row = rows[0]
        assert set(row["obs"]) == {"counters", "gauges", "histograms"}
        assert any(key.startswith("phase_") for key in row)
        # The snapshot's prune counters agree with the flat counter
        # columns mirrored from PruneCounters.
        obs_counters = row["obs"]["counters"]
        assert obs_counters["search.pruned_pair"] == row["pruned_pair"]
        # The nested snapshot column is excluded from rendered tables.
        assert "obs" not in runner.result.table().splitlines()[2]

    def test_collect_profile_rows_carry_summary(self):
        db = make_random_db(1, num_sequences=5)
        runner = ExperimentRunner("demo")
        rows = runner.run_point(
            db, 0.5, [MinerSpec("ptp", lambda ms: PTPMiner(ms))],
            collect_profile=True,
        )
        row = rows[0]
        assert row["profile"]["kind"] == "repro-profile"
        assert row["profile_top"]  # hottest self-time function label
        # The nested profile dict stays out of rendered tables; the
        # flat summary column stays in.
        header = runner.result.table().splitlines()[2]
        assert "profile_top" in header
        assert " profile " not in header

    def test_extra_columns(self):
        db = make_random_db(1, num_sequences=5)
        runner = ExperimentRunner("demo")
        runner.run_point(
            db, 0.5, [MinerSpec("ptp", lambda ms: PTPMiner(ms))],
            extra={"phase": "warm"},
        )
        assert runner.result.rows[0]["phase"] == "warm"


class TestCsvExport:
    def test_rows_round_trip_through_csv(self, tmp_path):
        import csv

        from repro.harness.runner import write_rows_csv

        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        runner.sweep(
            db, [0.3, 0.5], [MinerSpec("ptp", lambda ms: PTPMiner(ms))]
        )
        path = tmp_path / "rows.csv"
        write_rows_csv(runner.result, path)
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["miner"] == "ptp"
        assert float(rows[0]["min_sup"]) == 0.3
        assert "runtime_s" in rows[0]

    def test_empty_sweep(self, tmp_path):
        from repro.harness.runner import write_rows_csv

        runner = ExperimentRunner("empty")
        path = tmp_path / "rows.csv"
        write_rows_csv(runner.result, path)
        assert path.read_text() == "\r\n" or path.read_text() == "\n"


class TestWorkersProvenance:
    def test_measure_stamps_workers(self):
        metrics = measure(lambda: 1, track_memory=False, workers=3)
        assert metrics.workers == 3
        assert measure(lambda: 1, track_memory=False).workers == 1

    def test_measure_rejects_bad_workers(self):
        import pytest

        with pytest.raises(ValueError, match="workers"):
            measure(lambda: 1, workers=0)

    def test_run_point_emits_workers_column(self):
        from repro.core.ptpminer import PTPMiner
        from repro.datagen import standard_dataset

        db = standard_dataset("tiny")
        runner = ExperimentRunner("workers-sweep")
        specs = [MinerSpec("ptpminer", lambda s: PTPMiner(s))]
        serial_rows = runner.run_point(db, 0.4, specs)
        sharded_rows = runner.run_point(db, 0.4, specs, workers=2)
        assert serial_rows[0]["workers"] == 1
        assert sharded_rows[0]["workers"] == 2
        # The engine's determinism guarantee reaches the sweep rows:
        # identical pattern counts and search counters, only runtime
        # may differ.
        assert sharded_rows[0]["patterns"] == serial_rows[0]["patterns"]
        assert (
            sharded_rows[0]["nodes_expanded"]
            == serial_rows[0]["nodes_expanded"]
        )

    def test_run_point_workers_requires_ptpminer(self):
        import pytest

        from repro.baselines.tprefixspan import TPrefixSpanMiner
        from repro.datagen import standard_dataset

        db = standard_dataset("tiny")
        runner = ExperimentRunner("bad")
        specs = [MinerSpec("tprefixspan", lambda s: TPrefixSpanMiner(s))]
        with pytest.raises(ValueError, match="PTPMiner"):
            runner.run_point(db, 0.4, specs, workers=2)


class TestCollectLive:
    def test_measure_attaches_live_summary_for_sharded_runs(self):
        from repro.engine import ShardedMiner

        db = make_random_db(1, num_sequences=8)
        miner = ShardedMiner(min_sup=0.4, workers=2, executor="serial")
        metrics = measure(
            lambda: miner.mine(db), track_memory=False, collect_live=True
        )
        summary = metrics.live_summary
        assert summary is not None
        assert summary["roots_done"] == summary["roots_total"]
        assert summary["frames"] > 0

    def test_live_summary_none_without_a_sharded_run(self):
        metrics = measure(lambda: 3, track_memory=False, collect_live=True)
        assert metrics.result == 3
        assert metrics.live_summary is None

    def test_live_summary_none_by_default(self):
        assert measure(lambda: 1, track_memory=False).live_summary is None

    def test_collect_live_composes_with_obs_and_profile(self):
        from repro.engine import ShardedMiner

        db = make_random_db(1, num_sequences=6)
        miner = ShardedMiner(min_sup=0.4, workers=2, executor="serial")
        metrics = measure(
            lambda: miner.mine(db),
            collect_obs=True,
            collect_profile=True,
            collect_live=True,
        )
        assert metrics.obs is not None
        assert metrics.profile is not None
        assert metrics.live_summary is not None

    def test_run_point_emits_shard_imbalance_column(self):
        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        rows = runner.run_point(
            db, 0.4, [MinerSpec("ptp", lambda ms: PTPMiner(ms))],
            workers=2, collect_live=True,
        )
        row = rows[0]
        assert row["shard_imbalance"] is not None
        assert row["live"]["roots_done"] == row["live"]["roots_total"]
        # The nested summary stays out of rendered tables; the flat
        # imbalance column stays in.
        header = runner.result.table().splitlines()[2]
        assert "shard_imbalance" in header
        assert " live " not in header

    def test_run_point_imbalance_none_for_serial_runs(self):
        db = make_random_db(1, num_sequences=6)
        runner = ExperimentRunner("demo")
        rows = runner.run_point(
            db, 0.4, [MinerSpec("ptp", lambda ms: PTPMiner(ms))],
            collect_live=True,
        )
        assert rows[0]["shard_imbalance"] is None
        assert "live" not in rows[0]


class TestCollectCost:
    def test_measure_attaches_cost_profile(self):
        db = make_random_db(1, num_sequences=8)
        miner = PTPMiner(0.4)
        metrics = measure(
            lambda: miner.mine(db), track_memory=False, collect_cost=True
        )
        profile = metrics.cost_profile
        assert profile is not None
        assert profile["kind"] == "repro-cost"
        assert profile["roots"]
        assert profile["levels"]["1"]["frequent"] == len(profile["roots"])

    def test_cost_profile_none_by_default(self):
        assert measure(lambda: 1, track_memory=False).cost_profile is None

    def test_non_mining_callable_yields_empty_profile(self):
        metrics = measure(
            lambda: 3, track_memory=False, collect_cost=True
        )
        assert metrics.result == 3
        assert metrics.cost_profile == {
            "schema": 1, "kind": "repro-cost", "roots": {}, "levels": {},
        }

    def test_collect_cost_composes_with_other_flags(self):
        from repro.engine import ShardedMiner

        db = make_random_db(1, num_sequences=6)
        miner = ShardedMiner(min_sup=0.4, workers=2, executor="serial")
        metrics = measure(
            lambda: miner.mine(db),
            collect_obs=True,
            collect_profile=True,
            collect_live=True,
            collect_cost=True,
        )
        assert metrics.obs is not None
        assert metrics.profile is not None
        assert metrics.live_summary is not None
        assert metrics.cost_profile is not None
        assert metrics.cost_profile["roots"]

    def test_run_point_attaches_cost_and_fingerprint(self):
        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        rows = runner.run_point(
            db, 0.4, [MinerSpec("ptpminer", lambda ms: PTPMiner(ms))],
            collect_cost=True,
        )
        row = rows[0]
        assert row["cost"]["roots"]
        fingerprint = row["config_fingerprint"]
        assert isinstance(fingerprint, str) and len(fingerprint) == 12
        # The nested cost snapshot stays out of rendered tables; the
        # fingerprint column stays in.
        header = runner.result.table().splitlines()[2]
        assert "config_fingerprint" in header
        assert " cost " not in header

    def test_fingerprint_joins_against_ledger_entries(self):
        # A sweep row and a ledger entry built from the same run must
        # share the fingerprint — that is the join key the sweep/ledger
        # satellite promises.
        from repro.obs.ledger import build_entry, dataset_digest

        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        (row,) = runner.run_point(
            db, 0.4, [MinerSpec("ptpminer", lambda ms: PTPMiner(ms))]
        )
        entry = build_entry(
            dataset_digest=dataset_digest(db),
            miner="ptpminer",
            min_sup=0.4,
            mode="tp",
            workers=1,
            environment={"machine": "test"},
            wall_s=row["runtime_s"],
            patterns=row["patterns"],
            counters={},
            run_id="r1",
            timestamp="2026-08-08T00:00:00+00:00",
        )
        assert entry["fingerprint"] == row["config_fingerprint"]

    def test_rows_without_collect_cost_have_no_cost_key(self):
        db = make_random_db(1, num_sequences=6)
        runner = ExperimentRunner("demo")
        (row,) = runner.run_point(
            db, 0.4, [MinerSpec("ptp", lambda ms: PTPMiner(ms))]
        )
        assert "cost" not in row
        assert row["config_fingerprint"]


class TestCollectProvenance:
    def test_measure_attaches_provenance_snapshot(self):
        db = make_random_db(1, num_sequences=8)
        miner = PTPMiner(0.4)
        metrics = measure(
            lambda: miner.mine(db),
            track_memory=False,
            collect_provenance=True,
        )
        snap = metrics.provenance
        assert snap is not None
        assert snap["kind"] == "repro-provenance"
        assert set(snap["patterns"]) == {
            str(item.pattern) for item in metrics.result.patterns
        }

    def test_provenance_none_by_default(self):
        assert measure(lambda: 1, track_memory=False).provenance is None

    def test_non_mining_callable_yields_empty_snapshot(self):
        metrics = measure(
            lambda: 3, track_memory=False, collect_provenance=True
        )
        assert metrics.result == 3
        assert metrics.provenance == {
            "schema": 1,
            "kind": "repro-provenance",
            "patterns": {},
            "pruned": {},
            "labels": {},
        }

    def test_collect_provenance_composes_with_other_flags(self):
        from repro.engine import ShardedMiner

        db = make_random_db(1, num_sequences=6)
        miner = ShardedMiner(min_sup=0.4, workers=2, executor="serial")
        metrics = measure(
            lambda: miner.mine(db),
            collect_obs=True,
            collect_profile=True,
            collect_cost=True,
            collect_provenance=True,
        )
        assert metrics.obs is not None
        assert metrics.profile is not None
        assert metrics.cost_profile is not None
        assert metrics.provenance is not None
        assert metrics.provenance["patterns"]

    def test_run_point_attaches_provenance_row_key(self):
        db = make_random_db(1, num_sequences=8)
        runner = ExperimentRunner("demo")
        (row,) = runner.run_point(
            db, 0.4, [MinerSpec("ptpminer", lambda ms: PTPMiner(ms))],
            collect_provenance=True,
        )
        assert row["provenance"]["patterns"]
        # Nested snapshots stay out of rendered tables.
        header = runner.result.table().splitlines()[2]
        assert " provenance " not in header

    def test_rows_without_collect_provenance_have_no_key(self):
        db = make_random_db(1, num_sequences=6)
        runner = ExperimentRunner("demo")
        (row,) = runner.run_point(
            db, 0.4, [MinerSpec("ptp", lambda ms: PTPMiner(ms))]
        )
        assert "provenance" not in row


class TestPredictedStrategyRows:
    def specs(self):
        return [MinerSpec("ptpminer", lambda ms: PTPMiner(ms))]

    def test_predicted_rows_carry_strategy_and_imbalance(self):
        db = make_random_db(3, num_sequences=12)
        runner = ExperimentRunner("demo")
        (row,) = runner.run_point(
            db, 0.3, self.specs(), workers=3,
            shard_strategy="predicted",
        )
        assert row["shard_strategy"] == "predicted"
        assert (
            row["predicted_imbalance"] is None
            or row["predicted_imbalance"] >= 1.0
        )

    def test_roundrobin_rows_have_null_predicted_imbalance(self):
        db = make_random_db(3, num_sequences=12)
        runner = ExperimentRunner("demo")
        (row,) = runner.run_point(db, 0.3, self.specs(), workers=3)
        assert row["shard_strategy"] == "roundrobin"
        assert row["predicted_imbalance"] is None

    def test_predicted_results_match_roundrobin(self):
        db = make_random_db(4, num_sequences=12)
        runner = ExperimentRunner("demo")
        (rr,) = runner.run_point(db, 0.3, self.specs(), workers=3)
        (pred,) = runner.run_point(
            db, 0.3, self.specs(), workers=3,
            shard_strategy="predicted",
        )
        assert pred["patterns"] == rr["patterns"]
        assert pred["nodes_expanded"] == rr["nodes_expanded"]

    def test_unknown_strategy_rejected(self):
        db = make_random_db(3, num_sequences=6)
        runner = ExperimentRunner("demo")
        with pytest.raises(ValueError, match="shard_strategy"):
            runner.run_point(
                db, 0.3, self.specs(), workers=2,
                shard_strategy="zigzag",
            )

    def test_plan_summary_stamped_onto_metrics(self):
        result = measure(lambda: 41, plan={"workers": 2})
        assert result.plan == {"workers": 2}
        assert measure(lambda: 41).plan is None
