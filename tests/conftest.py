"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import contracts
from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.sequence import ESequence


@pytest.fixture(autouse=True, scope="session")
def _runtime_contracts():
    """Run the whole suite with the runtime contract layer enabled.

    Every mining call therefore asserts canonical emission, projection-
    state consistency, and (on small inputs) pruning soundness against
    the brute-force oracle. Individual tests can opt out with
    ``contracts.enabled_scope(False)``.
    """
    contracts.enable()
    yield
    contracts.disable()


def make_random_db(
    seed: int,
    *,
    num_sequences: int = 10,
    labels: str = "ABC",
    max_events: int = 5,
    time_max: int = 8,
    point_fraction: float = 0.0,
) -> ESequenceDatabase:
    """Small random database for oracle cross-checks.

    Deliberately tiny time range so endpoint ties (shared pointsets) and
    duplicate labels occur often — the hard cases for the miners.
    """
    rng = random.Random(seed)
    rows = []
    for _ in range(num_sequences):
        row = []
        for _ in range(rng.randint(1, max_events)):
            start = rng.randint(0, time_max)
            if rng.random() < point_fraction:
                row.append((start, start, rng.choice(labels)))
            else:
                row.append(
                    (start, start + rng.randint(1, 4), rng.choice(labels))
                )
        rows.append(row)
    return ESequenceDatabase.from_event_lists(rows)


@pytest.fixture
def two_interval_db() -> ESequenceDatabase:
    """Two sequences sharing the arrangement 'A overlaps B'."""
    return ESequenceDatabase.from_event_lists(
        [
            [(0, 4, "A"), (2, 6, "B")],
            [(10, 14, "A"), (12, 17, "B")],
        ]
    )


@pytest.fixture
def clinical_db() -> ESequenceDatabase:
    """A hand-written 'clinical' database with known pattern supports.

    Sequences (times chosen so arrangements are unambiguous):

    * s0: fever[0,10] contains rash[2,6]; headache[12,15] after both
    * s1: fever[0,8]  contains rash[3,5]
    * s2: fever[0,6]  meets  rash[6,9]
    * s3: rash[0,4] only
    """
    return ESequenceDatabase.from_event_lists(
        [
            [(0, 10, "fever"), (2, 6, "rash"), (12, 15, "headache")],
            [(0, 8, "fever"), (3, 5, "rash")],
            [(0, 6, "fever"), (6, 9, "rash")],
            [(0, 4, "rash")],
        ],
        name="clinical",
    )


@pytest.fixture
def hybrid_db() -> ESequenceDatabase:
    """Database mixing interval and point events (HTP workloads)."""
    return ESequenceDatabase.from_event_lists(
        [
            [(0, 5, "infusion"), (2, 2, "alarm")],
            [(1, 6, "infusion"), (3, 3, "alarm")],
            [(0, 4, "infusion")],
        ],
        name="hybrid-mini",
    )


def events(*triples) -> list[IntervalEvent]:
    """Shorthand: events((0, 4, 'A'), (2, 6, 'B'))."""
    return [IntervalEvent(s, f, label) for s, f, label in triples]


def seq(*triples) -> ESequence:
    """Shorthand e-sequence constructor."""
    return ESequence(events(*triples))
