"""Round-trip and error-handling tests for all four I/O formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    read_csv,
    read_database,
    read_jsonl,
    read_patterns,
    read_spmf,
    write_csv,
    write_database,
    write_jsonl,
    write_patterns,
    write_spmf,
)
from repro.model.database import ESequenceDatabase
from repro.model.pattern import PatternWithSupport, TemporalPattern

from tests.conftest import make_random_db

FORMATS = {
    "text": (write_database, read_database),
    "spmf": (write_spmf, read_spmf),
    "jsonl": (write_jsonl, read_jsonl),
    "csv": (write_csv, read_csv),
}


def sample_db():
    db = make_random_db(42, num_sequences=8, point_fraction=0.2)
    return ESequenceDatabase(db.sequences, name="sample")


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_round_trip_preserves_sequences(self, fmt, tmp_path):
        write, read = FORMATS[fmt]
        path = tmp_path / f"db.{fmt}"
        db = sample_db()
        write(db, path)
        assert read(path) == db

    @pytest.mark.parametrize("fmt", ["text", "spmf", "jsonl"])
    def test_round_trip_preserves_name(self, fmt, tmp_path):
        write, read = FORMATS[fmt]
        path = tmp_path / "db.dat"
        db = sample_db()
        write(db, path)
        assert read(path).name == "sample"

    @pytest.mark.parametrize("fmt", sorted(FORMATS))
    def test_empty_database(self, fmt, tmp_path):
        write, read = FORMATS[fmt]
        path = tmp_path / "empty.dat"
        write(ESequenceDatabase([]), path)
        assert len(read(path)) == 0

    @pytest.mark.parametrize("fmt", ["text", "jsonl", "spmf"])
    def test_empty_sequences_preserved(self, fmt, tmp_path):
        write, read = FORMATS[fmt]
        db = ESequenceDatabase.from_event_lists([[], [(0, 1, "A")], []])
        path = tmp_path / "gaps.dat"
        write(db, path)
        assert read(path) == db

    def test_float_timestamps_round_trip(self, tmp_path):
        db = ESequenceDatabase.from_event_lists([[(0.5, 2.25, "A")]])
        for fmt, (write, read) in FORMATS.items():
            path = tmp_path / f"float.{fmt}"
            write(db, path)
            assert read(path) == db, fmt

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_text_round_trip_property(self, seed, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("io")
        db = make_random_db(seed, num_sequences=5, point_fraction=0.3)
        path = tmp / "db.txt"
        write_database(db, path)
        assert read_database(path) == db


class TestTextFormatErrors:
    def test_malformed_event(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("A,1\n")
        with pytest.raises(ValueError, match="malformed"):
            read_database(path)

    def test_reserved_label_characters_rejected_on_write(self, tmp_path):
        db = ESequenceDatabase.from_event_lists([[(0, 1, "a,b")]])
        with pytest.raises(ValueError, match="reserved"):
            write_database(db, tmp_path / "x.txt")

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.txt"
        path.write_text("# a comment\nA,0,1\n")
        assert len(read_database(path)) == 1


class TestSpmfErrors:
    def test_missing_terminator(self, tmp_path):
        path = tmp_path / "bad.spmf"
        path.write_text("@ITEM=0=A\n0 1 2 -1\n")
        with pytest.raises(ValueError, match="-2"):
            read_spmf(path)

    def test_unknown_item_id(self, tmp_path):
        path = tmp_path / "bad.spmf"
        path.write_text("5 1 2 -1 -2\n")
        with pytest.raises(ValueError, match="unknown item"):
            read_spmf(path)

    def test_wrong_arity(self, tmp_path):
        path = tmp_path / "bad.spmf"
        path.write_text("@ITEM=0=A\n0 1 -1 -2\n")
        with pytest.raises(ValueError, match="expected"):
            read_spmf(path)


class TestJsonlErrors:
    def test_bad_format_tag(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"_meta": {"format": "other"}}\n')
        with pytest.raises(ValueError, match="format tag"):
            read_jsonl(path)

    def test_missing_events_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rows": []}\n')
        with pytest.raises(ValueError, match="events"):
            read_jsonl(path)


class TestCsvErrors:
    def test_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n")
        with pytest.raises(ValueError, match="header"):
            read_csv(path)

    def test_negative_sid(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("sid,label,start,finish\n-1,A,0,1\n")
        with pytest.raises(ValueError, match="negative sid"):
            read_csv(path)

    def test_sid_gaps_become_empty_sequences(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("sid,label,start,finish\n0,A,0,1\n2,B,0,1\n")
        db = read_csv(path)
        assert len(db) == 3
        assert len(db[1]) == 0


class TestPatternIO:
    def test_pattern_round_trip(self, tmp_path):
        patterns = [
            PatternWithSupport(TemporalPattern.parse("(A+) (A-)"), 12),
            PatternWithSupport(
                TemporalPattern.parse("(A+ B+) (A-) (B- C.)"), 3
            ),
        ]
        path = tmp_path / "patterns.txt"
        write_patterns(patterns, path)
        assert read_patterns(path) == patterns

    def test_float_supports_round_trip(self, tmp_path):
        patterns = [
            PatternWithSupport(TemporalPattern.parse("(A+) (A-)"), 2.5)
        ]
        path = tmp_path / "patterns.txt"
        write_patterns(patterns, path)
        assert read_patterns(path)[0].support == 2.5

    def test_malformed_pattern_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("12 no-tab-here\n")
        with pytest.raises(ValueError, match="support"):
            read_patterns(path)
