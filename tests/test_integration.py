"""End-to-end integration tests across the whole library surface.

Each test tells one realistic story — generate, mine, post-process,
interpret, persist, reload — and checks cross-module invariants on the
way. (CPU-light sizes; the heavy lifting lives in benchmarks/.)
"""

import repro
from repro.baselines import TPrefixSpanMiner
from repro.core.rules import generate_rules
from repro.datagen import SyntheticConfig, SyntheticGenerator
from repro.harness import render_pattern
from repro.io import (
    read_database,
    read_patterns,
    write_database,
    write_patterns,
)


def small_workload():
    config = SyntheticConfig(
        num_sequences=120,
        avg_events=6,
        num_labels=15,
        num_patterns=3,
        pattern_probability=0.7,
        time_horizon=40,
        seed=101,
        name="integration",
    )
    return SyntheticGenerator(config).generate()


class TestMiningPipeline:
    def test_full_pipeline(self, tmp_path):
        db = small_workload()

        # 1. Mine, and cross-check against an independent algorithm.
        result = repro.PTPMiner(min_sup=0.15).mine(db)
        assert result.patterns
        baseline = TPrefixSpanMiner(min_sup=0.15).mine(db)
        assert baseline.as_dict() == result.as_dict()

        # 2. Every reported support is oracle-exact.
        for item in result.top(10):
            assert item.support == item.pattern.support_in(db)

        # 3. Post-process: closed summary + rules.
        closed = repro.filter_closed(result)
        assert closed.pattern_set() <= result.pattern_set()
        rules = generate_rules(result, min_confidence=0.3)
        for rule in rules:
            assert rule.antecedent in result.pattern_set()
            assert rule.consequent in result.pattern_set()

        # 4. Interpret: Allen descriptions and timelines render.
        multi = next(
            (p for p in closed.patterns if p.pattern.size >= 2), None
        )
        if multi is not None:
            assert multi.pattern.allen_description()
            assert "|" in render_pattern(multi.pattern)

        # 5. Persist database and patterns; reload; re-mine equals.
        db_path = tmp_path / "db.txt"
        pat_path = tmp_path / "patterns.txt"
        write_database(db, db_path)
        write_patterns(result.patterns, pat_path)
        reloaded_db = read_database(db_path)
        assert reloaded_db == db
        assert read_patterns(pat_path) == result.patterns
        remined = repro.PTPMiner(min_sup=0.15).mine(reloaded_db)
        assert remined.as_dict() == result.as_dict()

    def test_threshold_lattice_consistency(self):
        """Results across thresholds form a consistent lattice: each
        result is the restriction of the finest one."""
        db = small_workload()
        fine = repro.PTPMiner(min_sup=0.1).mine(db).as_dict()
        for min_sup in (0.15, 0.25, 0.4):
            coarse = repro.PTPMiner(min_sup=min_sup).mine(db).as_dict()
            threshold = db.absolute_support(min_sup)
            expected = {
                p: s for p, s in fine.items() if s >= threshold
            }
            assert coarse == expected

    def test_topk_span_rules_compose(self):
        """Extensions compose: top-k of the span-constrained mine equals
        the head of the exhaustive span-constrained mine."""
        db = small_workload()
        constrained = repro.PTPMiner(
            min_sup=2, max_span=20
        ).mine(db)
        top = repro.PTPMiner(max_span=20).mine_top_k(db, 5, min_sup=2)
        assert top.patterns == constrained.patterns[:5]
        rules = generate_rules(constrained, min_confidence=0.2)
        for rule in rules:
            assert rule.confidence <= 1.0

    def test_hybrid_pipeline(self, tmp_path):
        """HTP mode end to end: generate points, mine, persist, reload."""
        config = SyntheticConfig(
            num_sequences=80, avg_events=5, num_labels=10,
            point_fraction=0.4, time_horizon=30, seed=7, name="hybrid-int",
        )
        db = SyntheticGenerator(config).generate()
        result = repro.PTPMiner(min_sup=0.15, mode="htp").mine(db)
        assert any(item.pattern.is_hybrid for item in result.patterns)
        path = tmp_path / "hybrid.jsonl"
        from repro.io import read_jsonl, write_jsonl

        write_jsonl(db, path)
        assert repro.PTPMiner(min_sup=0.15, mode="htp").mine(
            read_jsonl(path)
        ).as_dict() == result.as_dict()
