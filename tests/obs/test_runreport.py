"""Tests for unified run reports (``repro.obs.runreport``)."""

import json

import pytest

from repro.obs.live import LiveFrame
from repro.obs.runreport import build_run_report, render_markdown


def write_jsonl(path, rows):
    path.write_text("".join(json.dumps(row) + "\n" for row in rows))


def trace_rows():
    return [
        {"ev": "B", "span": 1, "parent": None, "name": "mine", "ts": 0.0},
        {"ev": "B", "span": 2, "parent": 1, "name": "shards", "ts": 0.1},
        {"ev": "B", "span": "shard0:1", "parent": 2, "name": "search",
         "ts": 50.0},
        {"ev": "B", "span": "shard0:2", "parent": "shard0:1",
         "name": "extend", "ts": 50.1},
        {"ev": "E", "span": "shard0:2", "name": "extend", "ts": 50.2,
         "dur": 0.1},
        {"ev": "E", "span": "shard0:1", "name": "search", "ts": 51.0,
         "dur": 1.0},
        {"ev": "B", "span": "shard1:1", "parent": 2, "name": "search",
         "ts": 70.0},
        {"ev": "E", "span": "shard1:1", "name": "search", "ts": 73.0,
         "dur": 3.0},
        {"ev": "E", "span": 2, "name": "shards", "ts": 3.2, "dur": 3.1},
        {"ev": "E", "span": 1, "name": "mine", "ts": 3.4, "dur": 3.4},
    ]


def live_rows(*, skewed=False):
    slow_done = 2 if skewed else 18
    rows = []
    for shard, done in ((0, 20), (1, 20), (2, slow_done)):
        rows.append(
            LiveFrame(shard=shard, ts=0.0, roots_done=0,
                      roots_total=20, patterns=0).as_dict()
        )
        rows.append(
            LiveFrame(shard=shard, ts=10.0, roots_done=done,
                      roots_total=20, patterns=done // 2,
                      final=not skewed or shard != 2).as_dict()
        )
    return rows


def metrics_snapshot():
    return {
        "counters": {
            "search.nodes_expanded": 500,
            "search.candidates_considered": 9000,
            "search.candidates_frequent": 480,
            "search.pruned_pair": 8000,
            "search.patterns_emitted": 133,
            "phase_seconds[phase=mine]": 3.4,
        },
        "gauges": {},
        "histograms": {},
    }


class TestBuildRunReport:
    def test_needs_at_least_one_source(self):
        with pytest.raises(ValueError):
            build_run_report()

    def test_phase_table_from_trace_excludes_shard_spans(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_jsonl(trace, trace_rows())
        report = build_run_report(trace_path=str(trace))
        phases = {row["phase"]: row for row in report["phases"]}
        assert set(phases) == {"mine", "shards"}
        assert phases["mine"]["total_s"] == pytest.approx(3.4)
        assert phases["shards"]["count"] == 1

    def test_shards_from_trace_use_root_spans_only(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_jsonl(trace, trace_rows())
        report = build_run_report(trace_path=str(trace))
        rows = {row["shard"]: row["busy_s"] for row in report["shards"]}
        # shard0's nested "extend" span must not double-count.
        assert rows == {0: pytest.approx(1.0), 1: pytest.approx(3.0)}
        assert report["shard_imbalance"] == pytest.approx(1.5)

    def test_live_log_preferred_for_shard_section(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        live = tmp_path / "frames.jsonl"
        write_jsonl(trace, trace_rows())
        write_jsonl(live, live_rows())
        report = build_run_report(
            trace_path=str(trace), live_log_path=str(live)
        )
        assert len(report["shards"]) == 3
        assert all("roots_done" in row for row in report["shards"])
        assert report["stragglers"] == []

    def test_prune_funnel_from_metrics(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(metrics_snapshot()))
        report = build_run_report(metrics_path=str(metrics))
        stages = [row["stage"] for row in report["prune_funnel"]]
        assert stages == [
            "search nodes expanded",
            "candidates considered",
            "pruned: pair",
            "candidates frequent",
            "patterns emitted",
        ]
        counts = {r["stage"]: r["count"] for r in report["prune_funnel"]}
        assert counts["patterns emitted"] == 133

    def test_skewed_workload_triggers_exactly_one_straggler(self, tmp_path):
        live = tmp_path / "frames.jsonl"
        write_jsonl(live, live_rows(skewed=True))
        report = build_run_report(
            live_log_path=str(live), straggler_factor=0.5
        )
        assert report["stragglers"] == [2]
        markdown = render_markdown(report)
        callouts = [
            line for line in markdown.splitlines()
            if "fell below the straggler threshold" in line
        ]
        assert len(callouts) == 1
        assert "shard 2" in callouts[0]

    def test_rejects_non_object_metrics_file(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        metrics.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            build_run_report(metrics_path=str(metrics))


class TestRenderMarkdown:
    def test_full_report_renders_all_sections(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        live = tmp_path / "frames.jsonl"
        write_jsonl(trace, trace_rows())
        metrics.write_text(json.dumps(metrics_snapshot()))
        write_jsonl(live, live_rows())
        report = build_run_report(
            trace_path=str(trace),
            metrics_path=str(metrics),
            live_log_path=str(live),
        )
        markdown = render_markdown(report)
        for heading in (
            "# ptpminer run report",
            "## Phases",
            "## Shards",
            "## Straggler callouts",
            "## Prune funnel",
            "## Live summary",
        ):
            assert heading in markdown
        assert "Shard imbalance (max/mean busy)" in markdown
        assert "None detected." in markdown

    def test_sections_without_data_are_omitted(self, tmp_path):
        metrics = tmp_path / "metrics.json"
        metrics.write_text(json.dumps(metrics_snapshot()))
        report = build_run_report(metrics_path=str(metrics))
        markdown = render_markdown(report)
        assert "## Prune funnel" in markdown
        assert "## Phases" not in markdown
        assert "## Shards" not in markdown


def cost_rows():
    return {
        "schema": 1, "kind": "repro-cost", "levels": {},
        "roots": {
            "A+": {"wall_s": 3.0, "states_created": 30,
                   "nodes_expanded": 12, "patterns_emitted": 5},
            "B+": {"wall_s": 1.0, "states_created": 10,
                   "nodes_expanded": 4, "patterns_emitted": 2},
        },
    }


def plan_doc():
    return {
        "schema": 1, "kind": "repro-plan",
        "config": {"workers": 2},
        "predictor": {"source": "static", "history_runs": 0,
                      "scale": None},
        "roots": {
            "A+": {"order": 0, "predicted_cost": 3.0},
            "B+": {"order": 1, "predicted_cost": 1.0},
        },
        "assignments": {
            "roundrobin": {"shards": [["A+"], ["B+"]],
                           "predicted_loads": [3.0, 1.0],
                           "predicted_imbalance": 1.5},
            "predicted": {"shards": [["A+"], ["B+"]],
                          "predicted_loads": [3.0, 1.0],
                          "predicted_imbalance": 1.5},
        },
    }


class TestPlanAndCostSources:
    def test_cost_source_yields_heaviest_roots(self, tmp_path):
        cost = tmp_path / "cost.json"
        cost.write_text(json.dumps(cost_rows()))
        report = build_run_report(cost_path=str(cost))
        assert report["heaviest_roots"][0]["root"] == "A+"
        markdown = render_markdown(report)
        assert "## Heaviest roots (realized)" in markdown
        assert "`A+`" in markdown

    def test_provenance_source_yields_counts(self, tmp_path):
        prov = tmp_path / "prov.json"
        prov.write_text(json.dumps({
            "schema": 1, "kind": "repro-provenance",
            "patterns": {"p1": {}, "p2": {}}, "pruned": {"x": {}},
            "labels": {},
        }))
        report = build_run_report(provenance_path=str(prov))
        assert report["provenance"] == {
            "patterns": 2, "pruned": 1, "labels": 0,
        }
        assert "## Provenance summary" in render_markdown(report)

    def test_plan_plus_cost_calibrates_exactly(self, tmp_path):
        plan = tmp_path / "plan.json"
        cost = tmp_path / "cost.json"
        plan.write_text(json.dumps(plan_doc()))
        cost.write_text(json.dumps(cost_rows()))
        report = build_run_report(
            plan_path=str(plan), cost_path=str(cost)
        )
        section = report["plan_vs_actual"]
        # The fixture forecast matches actual walls exactly.
        assert section["calibration"]["mape"] == pytest.approx(0.0)
        assert section["calibration"]["rank_corr"] == pytest.approx(1.0)
        assert section["predicted_imbalance"]["predicted"] == 1.5
        assert section["realized_imbalance"] is None
        markdown = render_markdown(report)
        assert "## Plan vs actual" in markdown
        assert "share-MAPE" in markdown

    def test_live_log_fills_realized_imbalance(self, tmp_path):
        plan = tmp_path / "plan.json"
        live = tmp_path / "frames.jsonl"
        plan.write_text(json.dumps(plan_doc()))
        write_jsonl(live, live_rows())
        report = build_run_report(
            plan_path=str(plan), live_log_path=str(live)
        )
        section = report["plan_vs_actual"]
        assert section["realized_imbalance"] == report["shard_imbalance"]
        assert "calibration" not in section
        assert any("no cost profile" in note for note in report["notes"])

    def test_plan_without_cost_or_cost_without_plan_note(self, tmp_path):
        cost = tmp_path / "cost.json"
        cost.write_text(json.dumps(cost_rows()))
        report = build_run_report(cost_path=str(cost))
        assert any(
            "no shard plan given" in note for note in report["notes"]
        )

    def test_garbage_plan_is_rejected(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({"kind": "repro-cost"}))
        with pytest.raises(ValueError, match="not a shard plan"):
            build_run_report(plan_path=str(plan))
