"""Integration: the mining stack under the observability layer.

Covers the acceptance criteria of the obs PR: identical mining output
with observability on and off, trace coverage of the mining phases,
metrics prune counters agreeing with ``PruneCounters``, baseline miners
publishing the same snapshot shape, and the miner's ``elapsed`` flowing
through the injectable clock.
"""

import pytest

from repro import obs
from repro.baselines import (
    BruteForceMiner,
    HDFSMiner,
    IEMiner,
    TPrefixSpanMiner,
)
from repro.core.ptpminer import PTPMiner
from repro.obs.clock import ManualClock, clock_scope

from tests.conftest import make_random_db


@pytest.fixture(scope="module")
def db():
    return make_random_db(3, num_sequences=20)


def pattern_set(result):
    return {(str(p.pattern), p.support) for p in result.patterns}


class TestZeroCostDisabledPath:
    def test_result_metrics_empty_when_off(self, db):
        result = PTPMiner(0.3).mine(db)
        assert result.metrics == {}

    def test_observability_does_not_change_patterns(self, db):
        reference = pattern_set(PTPMiner(0.3).mine(db))
        with obs.observe(metrics=True, tracer=True):
            observed = PTPMiner(0.3).mine(db)
        assert pattern_set(observed) == reference


class TestMinerMetrics:
    def test_snapshot_prune_counters_equal_prunecounters(self, db):
        with obs.observe(metrics=True):
            result = PTPMiner(0.3).mine(db)
        counters = result.metrics["counters"]
        for name, value in result.counters.as_dict().items():
            assert counters[f"search.{name}"] == value, name

    def test_snapshot_has_search_shape_families(self, db):
        with obs.observe(metrics=True):
            result = PTPMiner(0.3).mine(db)
        counters = result.metrics["counters"]
        assert any(
            key.startswith("search.states_by_depth[") for key in counters
        )
        assert any(
            key.startswith("search.patterns_by_length[") for key in counters
        )
        assert "search.candidates[ext=S]" in counters
        assert "search.candidates[ext=I]" in counters
        gauges = result.metrics["gauges"]
        assert gauges["run.patterns"] == len(result.patterns)
        assert gauges["run.db_size"] == len(db)
        hist = result.metrics["histograms"]["search.candidates_per_node"]
        # Nodes killed by the postfix branch bound return before their
        # candidates are gathered, so they never observe into the
        # histogram (no max_tokens cap is set here).
        assert hist["count"] == (
            result.counters.nodes_expanded
            - result.counters.pruned_postfix_branches
        )

    def test_phase_seconds_cover_mining_phases(self, db):
        with obs.observe(metrics=True):
            result = PTPMiner(0.3).mine(db)
        phases = {
            key
            for key in result.metrics["counters"]
            if key.startswith("phase_seconds[")
        }
        assert {
            "phase_seconds[phase=mine]",
            "phase_seconds[phase=encode]",
            "phase_seconds[phase=search]",
        } <= phases

    def test_top_k_also_publishes(self, db):
        with obs.observe(metrics=True):
            result = PTPMiner(0.5).mine_top_k(db, 5)
        assert result.metrics["gauges"]["run.patterns"] == len(
            result.patterns
        )


class TestTraceCoverage:
    def test_trace_covers_all_phases_and_nests_under_mine(self, db):
        with obs.observe(tracer=True) as handles:
            PTPMiner(0.3).mine(db)
        collector = handles.tracer
        names = set(collector.span_names())
        assert {
            "mine", "prune", "encode", "pair_tables", "search",
            "extend", "project",
        } <= names
        depths = collector.tree_depths()
        roots = [sid for sid, depth in depths.items() if depth == 0]
        assert len(roots) == 1  # everything nests under "mine"
        assert all("dur" in event for event in collector.finished())


class TestBaselines:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TPrefixSpanMiner(0.4),
            lambda: HDFSMiner(0.4),
            lambda: IEMiner(0.4),
            lambda: BruteForceMiner(0.4, max_size=3),
        ],
        ids=["tprefixspan", "hdfs", "ieminer", "bruteforce"],
    )
    def test_baselines_publish_run_snapshot(self, db, factory):
        with obs.observe(metrics=True):
            result = factory().mine(db)
        assert set(result.metrics) == {"counters", "gauges", "histograms"}
        counters = result.metrics["counters"]
        for name, value in result.counters.as_dict().items():
            assert counters[f"search.{name}"] == value, name
        assert result.metrics["gauges"]["run.patterns"] == len(
            result.patterns
        )
        # Off again: no residue.
        assert factory().mine(db).metrics == {}


class TestInjectableClock:
    def test_miner_elapsed_reads_the_obs_clock(self, db):
        clock = ManualClock(start=100.0)
        with clock_scope(clock):
            result = PTPMiner(0.5).mine(db)
        # The manual clock never advanced, so boundary timing is exact.
        assert result.elapsed == 0.0

    def test_progress_reporter_receives_search_heartbeats(self, db):
        events = []
        reporter = obs.ProgressReporter(
            events.append, every_nodes=1, min_interval_s=1e9
        )
        with obs.observe(reporter=reporter):
            result = PTPMiner(0.3).mine(db)
        assert events, "expected at least one heartbeat"
        assert events[-1].final is True
        assert events[-1].nodes == result.counters.nodes_expanded
        assert events[-1].patterns == len(result.patterns)


class TestObserveHelper:
    def test_observe_installs_and_clears(self):
        from repro.obs import metrics as obs_metrics
        from repro.obs import progress as obs_progress
        from repro.obs import trace as obs_trace

        with obs.observe(metrics=True, tracer=True, reporter=True) as handles:
            assert obs_metrics.active_registry() is handles.registry
            assert obs_trace.active_tracer() is handles.tracer
            assert obs_progress.active_reporter() is handles.reporter
            assert obs.is_active()
        assert not obs.is_active()

    def test_observe_nothing_by_default(self):
        with obs.observe() as handles:
            assert handles.registry is None
            assert handles.tracer is None
            assert handles.reporter is None
            assert not obs.is_active()
