"""Tests for span tracing (``repro.obs.trace``)."""

import warnings

import pytest

from repro.obs.clock import ManualClock, clock_scope
from repro.obs.metrics import use_registry
from repro.obs.trace import (
    JsonlTraceWriter,
    TraceCollector,
    active_tracer,
    read_trace,
    span,
    traced,
    use_tracer,
)


class TestDisabled:
    def test_span_is_noop_without_sinks(self):
        assert active_tracer() is None
        clock = ManualClock()
        calls = []
        original = clock.__call__
        with clock_scope(lambda: calls.append(1) or original()):
            with span("quiet"):
                pass
        # Fast path: no clock reads, nothing recorded.
        assert calls == []

    def test_traced_falls_through(self):
        @traced
        def double(x: int) -> int:
            return 2 * x

        assert double(21) == 42


class TestSpans:
    def test_events_pair_and_time_with_manual_clock(self):
        collector = TraceCollector()
        clock = ManualClock()
        with clock_scope(clock), use_tracer(collector):
            with span("outer", miner="demo"):
                clock.advance(1.0)
        begin, end = collector.events
        assert begin["ev"] == "B" and begin["name"] == "outer"
        assert begin["miner"] == "demo"
        assert begin["parent"] is None
        assert end["ev"] == "E" and end["span"] == begin["span"]
        assert end["dur"] == pytest.approx(1.0)
        assert "err" not in end

    def test_nesting_tracked_via_parent_links(self):
        collector = TraceCollector()
        with use_tracer(collector):
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
                with span("b2"):
                    pass
        assert collector.span_names() == ["a", "b", "c", "b2"]
        depths = collector.tree_depths()
        by_name = {
            ev["name"]: depths[ev["span"]]
            for ev in collector.events
            if ev["ev"] == "B"
        }
        assert by_name == {"a": 0, "b": 1, "c": 2, "b2": 1}

    def test_exception_tags_end_event_and_propagates(self):
        collector = TraceCollector()
        with use_tracer(collector):
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("inner"):
                        raise ValueError("boom")
        ends = {ev["name"]: ev for ev in collector.finished()}
        assert ends["inner"]["err"] == "ValueError"
        assert ends["outer"]["err"] == "ValueError"
        # The span stack unwound fully: a new span is a root again.
        with use_tracer(collector):
            with span("after"):
                pass
        begin = [e for e in collector.events if e["ev"] == "B"][-1]
        assert begin["parent"] is None

    def test_span_feeds_phase_seconds_counter(self):
        clock = ManualClock()
        with clock_scope(clock), use_registry() as registry:
            with span("encode"):
                clock.advance(0.25)
            with span("encode"):
                clock.advance(0.5)
        counters = registry.snapshot()["counters"]
        assert counters["phase_seconds[phase=encode]"] == pytest.approx(0.75)


class TestTraced:
    def test_named_form_uses_given_span_name(self):
        collector = TraceCollector()

        @traced("custom")
        def work() -> None:
            pass

        with use_tracer(collector):
            work()
        assert collector.span_names() == ["custom"]

    def test_bare_form_uses_qualname(self):
        collector = TraceCollector()

        @traced
        def work() -> None:
            pass

        with use_tracer(collector):
            work()
        assert "work" in collector.span_names()[0]


class TestJsonlRoundTrip:
    def test_writer_round_trips_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        clock = ManualClock()
        with clock_scope(clock):
            with JsonlTraceWriter.open(path) as writer:
                with use_tracer(writer):
                    with span("mine", sequences=3):
                        clock.advance(1.5)
                        with span("search"):
                            clock.advance(0.5)
        events = read_trace(path)
        assert [e["ev"] for e in events] == ["B", "B", "E", "E"]
        assert events[0]["name"] == "mine"
        assert events[0]["sequences"] == 3
        assert events[1]["parent"] == events[0]["span"]
        assert events[3]["dur"] == pytest.approx(2.0)

    def test_read_trace_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ev":"B"}\n\n{"ev":"E"}\n')
        assert [e["ev"] for e in read_trace(path)] == ["B", "E"]

    def test_read_trace_tolerates_truncated_tail(self, tmp_path):
        # A killed run leaves a half-written last line; reports must
        # still parse the rest, with one warning naming the count.
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"ev":"B","span":1,"name":"mine","ts":0.0}\n'
            '{"ev":"E","span":1,"name":"mine","ts":1.0,"du'
        )
        with pytest.warns(UserWarning, match="skipped 1 undecodable"):
            events = read_trace(path)
        assert [e["ev"] for e in events] == ["B"]

    def test_read_trace_tolerates_garbage_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            'not json at all\n'
            '{"ev":"B","span":1,"name":"mine","ts":0.0}\n'
            '[1, 2, 3]\n'
            '"just a string"\n'
        )
        with pytest.warns(UserWarning, match="skipped 3 undecodable"):
            events = read_trace(path)
        assert len(events) == 1
        assert events[0]["name"] == "mine"

    def test_read_trace_clean_file_emits_no_warning(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ev":"B","span":1,"name":"mine","ts":0.0}\n')
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_trace(path)) == 1

    def test_interleaved_shard_reemission_round_trips(self, tmp_path):
        # The engine re-emits worker spans as shard<i>:<id> after its
        # own spans, so a sharded trace interleaves int and string span
        # ids; the writer/reader must preserve ids, parents, and order.
        path = tmp_path / "trace.jsonl"
        shard_events = [
            {"ev": "B", "span": "shard1:1", "parent": 2,
             "name": "search", "ts": 0.0},
            {"ev": "B", "span": "shard0:1", "parent": 2,
             "name": "search", "ts": 0.1},
            {"ev": "E", "span": "shard1:1", "name": "search",
             "ts": 0.4, "dur": 0.4},
            {"ev": "E", "span": "shard0:1", "name": "search",
             "ts": 0.9, "dur": 0.8},
        ]
        with JsonlTraceWriter.open(path) as writer:
            writer.emit(
                {"ev": "B", "span": 2, "parent": None,
                 "name": "shards", "ts": 0.0}
            )
            for event in shard_events:
                writer.emit(event)
            writer.emit(
                {"ev": "E", "span": 2, "name": "shards",
                 "ts": 1.0, "dur": 1.0}
            )
        events = read_trace(path)
        assert [e["span"] for e in events] == [
            2, "shard1:1", "shard0:1", "shard1:1", "shard0:1", 2,
        ]
        assert all(
            e["parent"] == 2 for e in events if e.get("ev") == "B"
            and isinstance(e["span"], str)
        )


class TestInstallation:
    def test_use_tracer_restores_previous(self):
        first, second = TraceCollector(), TraceCollector()
        with use_tracer(first):
            with use_tracer(second):
                assert active_tracer() is second
            assert active_tracer() is first
        assert active_tracer() is None


class TestCurrentSpanId:
    def test_none_at_trace_root(self):
        from repro.obs.trace import current_span_id

        assert current_span_id() is None

    def test_inner_span_id_matches_emitted_event(self):
        from repro.obs.trace import current_span_id, span

        collector = TraceCollector()
        with use_tracer(collector):
            with span("outer"):
                inside = current_span_id()
            after = current_span_id()
        begin = collector.events[0]
        assert begin["span"] == inside
        assert after is None
