"""Tests for once-per-file warning dedup (`repro.obs.warnonce`).

Regression for the joined-sources case: `ptpminer report` (and any
other tool) may read the same garbage-bearing file through several
reader calls; the corruption warning must fire once per *file*, not
once per call.
"""

from __future__ import annotations

import warnings

import pytest

from repro.obs import warnonce
from repro.obs.ledger import RunLedger, build_entry
from repro.obs.live import read_live_log
from repro.obs.trace import read_trace


@pytest.fixture(autouse=True)
def _fresh_seen():
    warnonce.reset()
    yield
    warnonce.reset()


def caught(fn, *args):
    with warnings.catch_warnings(record=True) as seen:
        warnings.simplefilter("always")
        fn(*args)
    return seen


class TestWarnOnce:
    def test_second_call_is_suppressed(self):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            assert warnonce.warn_once("/tmp/x", "boom") is True
            assert warnonce.warn_once("/tmp/x", "boom") is False
        assert len(seen) == 1

    def test_distinct_paths_and_categories_warn_independently(self):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            warnonce.warn_once("/tmp/a", "boom")
            warnonce.warn_once("/tmp/b", "boom")
            warnonce.warn_once("/tmp/a", "boom", RuntimeWarning)
        assert len(seen) == 3

    def test_symlink_aliases_collapse_to_one_warning(self, tmp_path):
        real = tmp_path / "real.jsonl"
        real.write_text("x\n", encoding="utf-8")
        alias = tmp_path / "alias.jsonl"
        alias.symlink_to(real)
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            warnonce.warn_once(str(real), "boom")
            warnonce.warn_once(str(alias), "boom")
        assert len(seen) == 1

    def test_reset_rearms(self):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            warnonce.warn_once("/tmp/x", "boom")
            warnonce.reset()
            warnonce.warn_once("/tmp/x", "boom")
        assert len(seen) == 2


class TestReadersWarnOncePerFile:
    def test_trace_reader(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        assert len(caught(read_trace, path)) == 1
        assert len(caught(read_trace, path)) == 0

    def test_live_log_reader(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        path.write_text("{}\ngarbage\n", encoding="utf-8")
        assert len(caught(read_live_log, path)) == 1
        assert len(caught(read_live_log, path)) == 0

    def test_ledger_entries(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(
            build_entry(
                dataset_digest="d", miner="ptpminer", min_sup=0.3,
                mode="tp", wall_s=0.1, patterns=1, counters={},
            )
        )
        with open(ledger.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema": 999}\n')
        assert len(caught(ledger.entries)) == 1
        # A second read — e.g. `history` after `plan` consulted the
        # same ledger — stays silent.
        assert len(caught(ledger.entries)) == 0

    def test_joined_report_sources_do_not_repeat(self, tmp_path):
        # The original bug: runreport reads the live log, then the
        # trace fallback path (or a second report invocation in the
        # same process) reads it again.
        log = tmp_path / "frames.jsonl"
        log.write_text('{"kind": "frame"}\nnot json\n', encoding="utf-8")
        from repro.obs.runreport import build_run_report

        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            build_run_report(live_log_path=str(log))
            build_run_report(live_log_path=str(log))
        assert len(seen) == 1
