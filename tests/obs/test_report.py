"""Tests for snapshot report rendering (``repro.obs.report``)."""

import json

from repro.obs.report import main, render_report


def sample_snapshot() -> dict:
    return {
        "counters": {
            "phase_seconds[phase=encode]": 0.2,
            "phase_seconds[phase=search]": 1.8,
            "search.states_by_depth[depth=1]": 30,
            "search.states_by_depth[depth=2]": 12,
            "search.patterns_by_length[tokens=2]": 5,
            "search.candidates[ext=I]": 3,
            "search.candidates[ext=S]": 9,
            "search.pruned_pair": 44,
        },
        "gauges": {"run.patterns": 5},
        "histograms": {
            "search.candidates_per_node": {
                "buckets": {"le_1": 2, "inf": 1},
                "count": 3,
                "sum": 7.0,
                "mean": 7.0 / 3,
            }
        },
    }


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(sample_snapshot())
        assert "Phase breakdown" in text
        assert "Projection states per DFS depth" in text
        assert "Patterns emitted per length" in text
        assert "Frequent candidates per extension kind" in text
        assert "Totals" in text
        assert "Histogram search.candidates_per_node" in text

    def test_phase_breakdown_sorted_by_time_with_share(self):
        text = render_report(sample_snapshot())
        phase_section = text.split("\n\n")[0]
        assert phase_section.index("search") < phase_section.index("encode")
        assert "90.0%" in phase_section
        assert "10.0%" in phase_section

    def test_depth_rows_sorted_numerically(self):
        snapshot = {
            "counters": {
                "search.states_by_depth[depth=10]": 1,
                "search.states_by_depth[depth=2]": 2,
            }
        }
        text = render_report(snapshot)
        assert text.index(" 2 ") < text.index("10 ")

    def test_totals_include_plain_counters_and_gauges(self):
        text = render_report(sample_snapshot())
        assert "search.pruned_pair" in text
        assert "run.patterns" in text

    def test_empty_snapshot(self):
        assert "empty" in render_report({})
        assert "empty" in render_report(
            {"counters": {}, "gauges": {}, "histograms": {}}
        )

    def test_null_sections_never_raise(self):
        # A partial run may serialise explicit nulls; skip, don't crash.
        assert "empty" in render_report(
            {"counters": None, "gauges": None, "histograms": None}
        )

    def test_degenerate_histogram_never_raises(self):
        snapshot = {
            "histograms": {
                "h_empty": {},
                "h_null_sum": {"buckets": {"inf": 1}, "count": 1,
                               "sum": None},
                "h_null": None,
            }
        }
        text = render_report(snapshot)
        assert "Histogram h_empty" in text
        assert "Histogram h_null_sum" in text
        assert "Histogram h_null" in text

    def test_counters_only_partial_run(self):
        # Only a couple of counters landed before the run died.
        text = render_report(
            {"counters": {"search.nodes_expanded": 3}}
        )
        assert "Totals" in text
        assert "search.nodes_expanded" in text


class TestMain:
    def test_renders_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(sample_snapshot()))
        assert main([str(path)]) == 0
        assert "Phase breakdown" in capsys.readouterr().out

    def test_usage_errors(self, capsys):
        assert main([]) == 2
        assert main(["--help"]) == 2
        assert main(["a", "b"]) == 2
        assert "usage:" in capsys.readouterr().err
