"""Tests for progress heartbeats (``repro.obs.progress``)."""

import io

import pytest

from repro.obs.clock import ManualClock, clock_scope
from repro.obs.progress import (
    ProgressEvent,
    ProgressReporter,
    active_reporter,
    format_event,
    use_reporter,
)


def tick_n(reporter: ProgressReporter, n: int) -> None:
    for _ in range(n):
        reporter.tick(depth=2, patterns=1, candidates=10, pruned=4)


class TestThrottling:
    def test_emits_every_n_nodes(self):
        events = []
        reporter = ProgressReporter(
            events.append, every_nodes=100, min_interval_s=1e9
        )
        with clock_scope(ManualClock()):
            tick_n(reporter, 250)
        assert [e.nodes for e in events] == [100, 200]

    def test_emits_on_time_even_with_few_nodes(self):
        events = []
        clock = ManualClock()
        reporter = ProgressReporter(
            events.append, every_nodes=10**9, min_interval_s=1.0
        )
        with clock_scope(clock):
            tick_n(reporter, 5)
            clock.advance(1.5)
            tick_n(reporter, 1)
        assert len(events) == 1
        assert events[0].nodes == 6

    def test_finish_always_emits_after_any_tick(self):
        events = []
        reporter = ProgressReporter(
            events.append, every_nodes=10**9, min_interval_s=1e9
        )
        with clock_scope(ManualClock()):
            tick_n(reporter, 3)
            reporter.finish(depth=0, patterns=2, candidates=10, pruned=4)
        assert len(events) == 1
        assert events[0].final is True
        assert reporter.events_emitted == 1

    def test_finish_without_ticks_is_silent(self):
        events = []
        reporter = ProgressReporter(events.append)
        reporter.finish(depth=0, patterns=0, candidates=0, pruned=0)
        assert events == []

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            ProgressReporter(every_nodes=0)
        with pytest.raises(ValueError):
            ProgressReporter(min_interval_s=-1.0)


class TestEvents:
    def test_rate_statistics(self):
        events = []
        clock = ManualClock()
        reporter = ProgressReporter(
            events.append, every_nodes=10, min_interval_s=1e9
        )
        with clock_scope(clock):
            for _ in range(10):
                clock.advance(0.1)
                reporter.tick(depth=3, patterns=7, candidates=50, pruned=25)
        (event,) = events
        assert event.elapsed_s == pytest.approx(0.9)
        assert event.nodes_per_s == pytest.approx(10 / 0.9)
        assert event.prune_rate == pytest.approx(0.5)

    def test_prune_rate_zero_candidates(self):
        event = ProgressEvent(1, 0.0, 0.0, 0, 0, candidates=0, pruned=0)
        assert event.prune_rate == 0.0

    def test_format_event_lines(self):
        event = ProgressEvent(
            nodes=12000, elapsed_s=2.0, nodes_per_s=6000.0, depth=5,
            patterns=140, candidates=27910, pruned=12030,
        )
        line = format_event(event)
        assert line.startswith("[progress] nodes=12000 (6,000/s)")
        assert "depth=5" in line and "patterns=140" in line
        assert "43.1% of 27910" in line
        done = format_event(
            ProgressEvent(1, 0.0, 0.0, 0, 0, 0, 0, final=True)
        )
        assert done.startswith("[done]")


class TestDefaultCallback:
    def test_prints_to_stream(self):
        stream = io.StringIO()
        reporter = ProgressReporter(
            every_nodes=2, min_interval_s=1e9, stream=stream
        )
        with clock_scope(ManualClock()):
            tick_n(reporter, 4)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("[progress]") for line in lines)


class TestInstallation:
    def test_off_by_default_and_scoped(self):
        assert active_reporter() is None
        reporter = ProgressReporter(lambda event: None)
        with use_reporter(reporter):
            assert active_reporter() is reporter
        assert active_reporter() is None
