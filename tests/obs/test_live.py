"""Tests for the live shard telemetry bus (``repro.obs.live``)."""

import io
import json
import warnings

import pytest

from repro.obs.clock import ManualClock, clock_scope
from repro.obs.live import (
    LiveAggregator,
    LiveCollector,
    LiveConfig,
    LiveFrame,
    LiveSink,
    ShardLane,
    active_live,
    read_live_log,
    set_live,
    use_live,
)


def frame(shard, ts, done, total=10, patterns=0, **kwargs):
    return LiveFrame(
        shard=shard,
        ts=ts,
        roots_done=done,
        roots_total=total,
        patterns=patterns,
        **kwargs,
    )


class TestLiveFrame:
    def test_round_trips_through_dict(self):
        original = LiveFrame(
            shard=2,
            ts=1.25,
            roots_done=3,
            roots_total=9,
            patterns=7,
            counters={"nodes_expanded": 41.0},
            rss_mb=12.5,
            final=True,
        )
        rebuilt = LiveFrame.from_dict(original.as_dict())
        assert rebuilt == original
        # The wire form must be JSON-serialisable as-is.
        json.dumps(original.as_dict())

    def test_from_dict_defaults_optional_fields(self):
        rebuilt = LiveFrame.from_dict(
            {"shard": 0, "ts": 0.0, "roots_done": 1,
             "roots_total": 2, "patterns": 0}
        )
        assert rebuilt.counters == {}
        assert rebuilt.rss_mb is None
        assert rebuilt.final is False


class TestLiveConfig:
    def test_validates_interval_and_factor(self):
        with pytest.raises(ValueError):
            LiveConfig(interval_s=-1.0)
        with pytest.raises(ValueError):
            LiveConfig(straggler_factor=0.0)


class TestLiveSink:
    def test_throttles_through_injectable_clock(self):
        clock = ManualClock()
        published = []
        with clock_scope(clock):
            sink = LiveSink(0, 10, published.append, min_interval_s=1.0)
            sink.on_root(1, 10, 0, {})     # first emit: always
            sink.on_root(2, 10, 0, {})     # same instant: throttled
            clock.advance(0.5)
            sink.on_root(3, 10, 1, {})     # 0.5s < 1.0s: throttled
            clock.advance(0.6)
            sink.on_root(4, 10, 2, {})     # 1.1s since emit: emits
        assert [p["roots_done"] for p in published] == [1, 4]
        assert sink.frames_published == 2

    def test_finish_always_emits_final_frame(self):
        clock = ManualClock()
        published = []
        with clock_scope(clock):
            sink = LiveSink(3, 5, published.append, min_interval_s=60.0)
            sink.on_root(1, 5, 0, {})
            sink.finish(9, {"nodes_expanded": 4.0})
        assert len(published) == 2
        final = published[-1]
        assert final["final"] is True
        assert final["shard"] == 3
        assert final["roots_done"] == 5
        assert final["patterns"] == 9
        assert final["counters"] == {"nodes_expanded": 4.0}

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            LiveSink(0, -1, lambda payload: None)
        with pytest.raises(ValueError):
            LiveSink(0, 1, lambda payload: None, min_interval_s=-0.1)


class TestShardLane:
    def test_rate_needs_progress_and_elapsed(self):
        lane = ShardLane(shard=0)
        assert lane.rate_roots_per_s is None
        lane.first_ts, lane.last_ts = 1.0, 1.0
        lane.roots_done = 3
        assert lane.rate_roots_per_s is None  # no elapsed time yet
        lane.last_ts = 4.0
        assert lane.rate_roots_per_s == pytest.approx(1.0)


class TestLiveAggregator:
    def test_monotonic_merge_ignores_stale_frames(self):
        agg = LiveAggregator(LiveConfig(render=False))
        agg.ingest(frame(0, ts=2.0, done=5, patterns=3))
        agg.ingest(frame(0, ts=1.0, done=2, patterns=1))  # late/stale
        lane = agg.lanes[0]
        assert lane.roots_done == 5
        assert lane.patterns == 3
        assert lane.first_ts == 1.0
        assert lane.last_ts == 2.0
        assert agg.roots_done == 5

    def test_accepts_dict_payloads(self):
        agg = LiveAggregator(LiveConfig(render=False))
        agg.ingest(frame(1, ts=0.5, done=2).as_dict())
        assert agg.lanes[1].roots_done == 2

    def test_plan_time_totals_pre_create_lanes(self):
        agg = LiveAggregator(
            LiveConfig(render=False), shard_totals={0: 4, 1: 6}
        )
        assert sorted(agg.lanes) == [0, 1]
        assert agg.roots_total == 10
        assert agg.roots_done == 0

    def test_eta_from_summed_lane_rates(self):
        agg = LiveAggregator(
            LiveConfig(render=False), shard_totals={0: 10, 1: 10}
        )
        # Shard 0: 4 roots in 2s -> 2 roots/s; shard 1: 2 in 2s -> 1/s.
        agg.ingest(frame(0, ts=0.0, done=0))
        agg.ingest(frame(0, ts=2.0, done=4))
        agg.ingest(frame(1, ts=0.0, done=0))
        agg.ingest(frame(1, ts=2.0, done=2))
        # 14 remaining / 3 roots/s.
        assert agg.eta_s() == pytest.approx(14 / 3)

    def test_eta_none_without_rates_and_zero_when_done(self):
        agg = LiveAggregator(
            LiveConfig(render=False), shard_totals={0: 2}
        )
        assert agg.eta_s() is None
        agg.ingest(frame(0, ts=0.0, done=0, total=2))
        agg.ingest(frame(0, ts=1.0, done=2, total=2, final=True))
        assert agg.eta_s() == 0.0

    def test_final_lanes_stop_contributing_rate(self):
        agg = LiveAggregator(
            LiveConfig(render=False), shard_totals={0: 4, 1: 10}
        )
        agg.ingest(frame(0, ts=0.0, done=0, total=4))
        agg.ingest(frame(0, ts=1.0, done=4, total=4, final=True))
        agg.ingest(frame(1, ts=0.0, done=0))
        agg.ingest(frame(1, ts=2.0, done=2))
        # Only shard 1's 1 root/s counts: 8 remaining / 1.
        assert agg.eta_s() == pytest.approx(8.0)

    def test_straggler_below_factor_times_median(self):
        config = LiveConfig(render=False, straggler_factor=0.5)
        agg = LiveAggregator(config, shard_totals={0: 30, 1: 30, 2: 30})
        agg.ingest(frame(0, ts=0.0, done=0, total=30))
        agg.ingest(frame(0, ts=10.0, done=20, total=30))  # 2.0/s
        agg.ingest(frame(1, ts=0.0, done=0, total=30))
        agg.ingest(frame(1, ts=10.0, done=22, total=30))  # 2.2/s
        agg.ingest(frame(2, ts=0.0, done=0, total=30))
        agg.ingest(frame(2, ts=10.0, done=3, total=30))   # 0.3/s < 1.1
        assert agg.stragglers() == [2]

    def test_straggler_needs_two_measurable_lanes(self):
        agg = LiveAggregator(LiveConfig(render=False))
        agg.ingest(frame(0, ts=0.0, done=0))
        agg.ingest(frame(0, ts=10.0, done=1))
        assert agg.stragglers() == []

    def test_summary_shape_and_imbalance(self):
        agg = LiveAggregator(
            LiveConfig(render=False), shard_totals={0: 5, 1: 5}
        )
        agg.ingest(frame(0, ts=0.0, done=0, total=5))
        agg.ingest(frame(0, ts=3.0, done=5, total=5,
                         patterns=4, final=True))
        agg.ingest(frame(1, ts=0.0, done=0, total=5))
        agg.ingest(frame(1, ts=1.0, done=5, total=5,
                         patterns=2, final=True))
        summary = agg.summary()
        assert summary["roots_done"] == 10
        assert summary["roots_total"] == 10
        assert summary["patterns"] == 6
        assert summary["frames"] == 4
        # busy 3s and 1s -> max/mean = 3/2.
        assert summary["shard_imbalance"] == pytest.approx(1.5)
        assert set(summary["shards"]) == {"0", "1"}
        assert summary["shards"]["0"]["final"] is True
        assert "straggler" in summary["shards"]["0"]

    def test_render_line_marks_stragglers_and_finished(self):
        config = LiveConfig(render=False, straggler_factor=0.5)
        agg = LiveAggregator(config, shard_totals={0: 20, 1: 20})
        agg.ingest(frame(0, ts=0.0, done=0, total=20))
        agg.ingest(frame(0, ts=1.0, done=20, total=20, final=True))
        agg.ingest(frame(1, ts=0.0, done=0, total=20))
        agg.ingest(frame(1, ts=10.0, done=2, total=20))
        line = agg.render_line()
        assert line.startswith("[live] roots 22/40")
        assert "s0 20/20+" in line
        assert "s1 2/20*" in line

    def test_maybe_render_throttles_and_calls_out_once(self):
        stream = io.StringIO()
        clock = ManualClock()
        config = LiveConfig(
            interval_s=1.0, straggler_factor=0.5, stream=stream
        )
        with clock_scope(clock):
            agg = LiveAggregator(config, shard_totals={0: 20, 1: 20})
            agg.ingest(frame(0, ts=0.0, done=0, total=20))
            agg.ingest(frame(0, ts=1.0, done=20, total=20))
            agg.ingest(frame(1, ts=0.0, done=0, total=20))
            agg.ingest(frame(1, ts=10.0, done=2, total=20))
            agg.maybe_render()            # renders + straggler callout
            agg.maybe_render()            # throttled
            clock.advance(2.0)
            agg.maybe_render()            # renders again, no new callout
        lines = stream.getvalue().splitlines()
        assert len([li for li in lines if li.startswith("[live] roots")]) == 2
        callouts = [li for li in lines if "straggler:" in li]
        assert len(callouts) == 1
        assert "shard 1" in callouts[0]

    def test_render_false_never_writes(self):
        stream = io.StringIO()
        agg = LiveAggregator(LiveConfig(render=False, stream=stream))
        agg.ingest(frame(0, ts=0.0, done=1))
        agg.maybe_render(force=True)
        assert stream.getvalue() == ""


class TestFrameLog:
    def test_log_round_trips_through_read_live_log(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        config = LiveConfig(render=False, log_path=str(path))
        agg = LiveAggregator(config)
        agg.open_log()
        agg.ingest(frame(0, ts=0.5, done=1, patterns=2))
        agg.ingest(frame(1, ts=0.7, done=3, final=True))
        agg.close_log()
        frames = read_live_log(path)
        assert [(f.shard, f.roots_done) for f in frames] == [(0, 1), (1, 3)]
        assert frames[1].final is True

    def test_read_live_log_tolerates_garbage(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        good = frame(0, ts=0.5, done=1).as_dict()
        path.write_text(
            json.dumps(good) + "\n"
            + "garbage\n"
            + '{"shard": 1}\n'          # missing required keys
            + json.dumps(good)[:-4] + "\n"  # truncated tail
        )
        with pytest.warns(UserWarning, match="skipped 3 undecodable"):
            frames = read_live_log(path)
        assert len(frames) == 1

    def test_read_live_log_clean_file_no_warning(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        path.write_text(json.dumps(frame(0, ts=0.1, done=1).as_dict()) + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert len(read_live_log(path)) == 1


class TestInstallation:
    def test_disabled_by_default(self):
        assert active_live() is None

    def test_use_live_installs_and_restores(self):
        with use_live() as collector:
            assert active_live() is collector
        assert active_live() is None

    def test_use_live_accepts_config_and_collector(self):
        config = LiveConfig(render=False, straggler_factor=0.25)
        with use_live(config) as collector:
            assert collector.config is config
        ready = LiveCollector(config=config)
        with use_live(ready) as collector:
            assert collector is ready

    def test_use_live_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_live():
                raise RuntimeError("boom")
        assert active_live() is None

    def test_set_live_none_disables(self):
        collector = LiveCollector()
        set_live(collector)
        try:
            assert active_live() is collector
        finally:
            set_live(None)
        assert active_live() is None


class TestIngestOrderDeterminism:
    """Regression: aggregate floats must not depend on frame arrival order.

    Lane insertion order follows frame arrival order, which varies run
    to run under the process executor. ETA and imbalance accumulate
    floats across lanes, and float addition is not associative (0.1 +
    0.2 + 0.3 != 0.3 + 0.2 + 0.1), so the aggregator iterates lanes in
    shard order (caught by repro-lint R013).
    """

    @staticmethod
    def _aggregate(shard_order):
        agg = LiveAggregator(LiveConfig(render=False))
        # Lane i: one root done over i/10 seconds of busy time, so the
        # per-lane rates and busy times are 0.1/0.2/0.3-style floats
        # whose sums differ bit-for-bit across orderings.
        for shard in shard_order:
            agg.ingest(frame(shard, ts=0.0, done=0, total=50))
            agg.ingest(
                frame(shard, ts=(shard + 1) / 10.0, done=1, total=50)
            )
        return agg

    def test_eta_identical_for_any_arrival_order(self):
        forward = self._aggregate([0, 1, 2])
        reversed_ = self._aggregate([2, 1, 0])
        assert forward.eta_s() == reversed_.eta_s()

    def test_summary_identical_for_any_arrival_order(self):
        forward = self._aggregate([0, 1, 2])
        reversed_ = self._aggregate([2, 1, 0])
        assert forward.summary() == reversed_.summary()
        assert json.dumps(forward.summary(), sort_keys=False) == json.dumps(
            reversed_.summary(), sort_keys=False
        )
