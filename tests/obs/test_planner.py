"""Tests for predictive shard planning (`repro.obs.planner`).

The load-bearing properties: the profiler's canonical root order
reproduces the engine's round-robin deal exactly, LPT never predicts
worse balance than round-robin on the same forecasts, the predictor
switches from static scores to ledger history (and documents it), and
the calibration record is exact on a perfect forecast.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import MinerConfig
from repro.datagen.synthetic import SyntheticConfig, SyntheticGenerator
from repro.engine import plan_shards, _candidate_name
from repro.obs import planner
from repro.obs.ledger import RunLedger, build_entry, dataset_digest


def skewed_db(seed=7, *, num_sequences=30, num_labels=6):
    return SyntheticGenerator(
        SyntheticConfig(
            num_sequences=num_sequences,
            num_labels=num_labels,
            seed=seed,
            label_skew=2.0,
        )
    ).generate()


CONFIG = MinerConfig(min_sup=0.3)


def cost_snapshot_from(plan, *, exact=True):
    """A realized cost profile; ``exact`` reproduces the forecast."""
    roots = {}
    for index, (name, entry) in enumerate(sorted(plan["roots"].items())):
        wall = (
            entry["predicted_cost"] if exact else float(index + 1)
        )
        roots[name] = {"wall_s": wall, "states_created": index + 1}
    return {"schema": 1, "kind": "repro-cost", "roots": roots,
            "levels": {}}


class TestProfiler:
    def test_profile_shape_and_static_score(self):
        db = skewed_db()
        profile = planner.profile_workload(db, CONFIG)
        assert profile["kind"] == "repro-plan-profile"
        assert profile["schema"] == planner.PLAN_SCHEMA_VERSION
        assert profile["roots"]
        for entry in profile["roots"].values():
            assert entry["static_score"] == pytest.approx(
                entry["projected_tokens"] * (1 + entry["pair_degree"])
            )
            assert entry["supporters"] >= 1
            assert entry["support"] > 0
        dataset = profile["dataset"]
        assert dataset["sequences"] == len(db)
        assert dataset["seq_tokens"]["min"] <= dataset["seq_tokens"]["max"]
        assert 0 <= dataset["pair_density"]["s_density"] <= 1

    def test_orders_are_contiguous_and_unique(self):
        profile = planner.profile_workload(skewed_db(), CONFIG)
        orders = sorted(
            entry["order"] for entry in profile["roots"].values()
        )
        assert orders == list(range(len(profile["roots"])))

    def test_profile_matches_engine_candidate_names(self):
        # The names the profiler forecasts against are exactly the
        # names the engine resolves when consuming the plan.
        from repro.core.ptpminer import PTPMiner

        db = skewed_db()
        miner = PTPMiner.from_config(CONFIG)
        threshold = db.absolute_support(CONFIG.min_sup)
        mining_db, _counters, root = miner.plan_root(
            db, [1.0] * len(db), threshold
        )
        labels = tuple(sorted(mining_db.alphabet))
        engine_names = {
            _candidate_name(cand, labels) for cand in root
        }
        profile = planner.profile_workload(db, CONFIG)
        assert set(profile["roots"]) == engine_names


class TestPredictor:
    def test_static_fallback_without_history(self):
        profile = planner.profile_workload(skewed_db(), CONFIG)
        costs, predictor = planner.predict_costs(profile)
        assert predictor == {
            "source": "static", "history_runs": 0, "scale": None,
        }
        for name, entry in profile["roots"].items():
            assert costs[name] == pytest.approx(entry["static_score"])

    def test_history_means_and_scaled_fallback(self):
        profile = {
            "roots": {
                "A+": {"static_score": 100.0},
                "B+": {"static_score": 50.0},
                "C+": {"static_score": 10.0},
            }
        }
        history = [{"A+": 2.0, "B+": 1.0}, {"A+": 4.0, "B+": 1.0}]
        costs, predictor = planner.predict_costs(profile, history)
        assert predictor["source"] == "ledger"
        assert predictor["history_runs"] == 2
        assert costs["A+"] == pytest.approx(3.0)
        assert costs["B+"] == pytest.approx(1.0)
        # C+ was never observed: static score rescaled onto the
        # history's cost scale (hist mass 4 / static mass 150).
        scale = predictor["scale"]
        assert scale == pytest.approx(4.0 / 150.0)
        assert costs["C+"] == pytest.approx(10.0 * scale)

    def test_history_root_costs_filters_by_config(self, tmp_path):
        db = skewed_db()
        digest = dataset_digest(db)
        ledger = RunLedger(tmp_path)
        snapshot = {
            "schema": 1, "kind": "repro-cost",
            "roots": {"A+": {"wall_s": 1.5}}, "levels": {},
        }

        def entry(**overrides):
            params = dict(
                dataset_digest=digest, miner="ptpminer",
                min_sup=0.3, mode="tp", wall_s=1.0, patterns=3,
                counters={}, cost_snapshot=snapshot,
            )
            params.update(overrides)
            return build_entry(**params)

        ledger.append(entry())
        ledger.append(entry(min_sup=0.5))          # other threshold
        ledger.append(entry(dataset_digest="xx"))  # other dataset
        ledger.append(entry(cost_snapshot=None))   # no cost map
        matched = planner.history_root_costs(
            str(tmp_path), dataset_digest=digest, miner="ptpminer",
            min_sup=0.3, mode="tp",
        )
        assert matched == [{"A+": 1.5}]

    def test_build_plan_switches_to_ledger_source(self, tmp_path):
        db = skewed_db()
        static_plan = planner.build_plan(db, CONFIG, workers=3)
        assert static_plan["predictor"]["source"] == "static"
        snapshot = cost_snapshot_from(static_plan, exact=False)
        RunLedger(tmp_path).append(
            build_entry(
                dataset_digest=dataset_digest(db), miner="ptpminer",
                min_sup=CONFIG.min_sup, mode=CONFIG.mode, wall_s=1.0,
                patterns=3, counters={}, cost_snapshot=snapshot,
            )
        )
        calibrated = planner.build_plan(
            db, CONFIG, workers=3, ledger_dir=str(tmp_path)
        )
        assert calibrated["predictor"]["source"] == "ledger"
        assert calibrated["predictor"]["history_runs"] == 1


class TestAssignment:
    def test_lpt_beats_roundrobin_on_skew(self):
        costs = {"a": 100.0, "b": 10.0, "c": 9.0, "d": 8.0, "e": 7.0,
                 "f": 6.0}
        lpt = planner.lpt_assign(costs, 3)
        rr = planner.roundrobin_assign(sorted(costs), 3)
        load = lambda shards: [  # noqa: E731
            sum(costs[n] for n in shard) for shard in shards
        ]
        assert planner.imbalance(load(lpt)) < planner.imbalance(load(rr))
        # Every root assigned exactly once, no empty shard.
        assert sorted(n for s in lpt for n in s) == sorted(costs)
        assert all(lpt)

    def test_lpt_is_deterministic_and_caps_shards(self):
        costs = {"a": 1.0, "b": 1.0}
        assert planner.lpt_assign(costs, 5) == planner.lpt_assign(
            costs, 5
        )
        assert len(planner.lpt_assign(costs, 5)) == 2
        assert planner.lpt_assign({}, 3) == []
        with pytest.raises(ValueError):
            planner.lpt_assign(costs, 0)

    def test_roundrobin_matches_engine_deal(self):
        # The planner's predicted round-robin deal is the engine's
        # actual deal, shard for shard.
        from repro.core.ptpminer import PTPMiner

        db = skewed_db()
        workers = 3
        plan = planner.build_plan(db, CONFIG, workers=workers)
        miner = PTPMiner.from_config(CONFIG)
        threshold = db.absolute_support(CONFIG.min_sup)
        mining_db, _counters, root = miner.plan_root(
            db, [1.0] * len(db), threshold
        )
        labels = tuple(sorted(mining_db.alphabet))
        tasks = plan_shards(root, CONFIG, threshold, workers)
        engine_deal = [
            [_candidate_name(cand, labels) for cand, _ in task.candidates]
            for task in tasks
        ]
        assert plan["assignments"]["roundrobin"]["shards"] == engine_deal

    def test_imbalance_semantics(self):
        assert planner.imbalance([]) is None
        assert planner.imbalance([5.0]) is None
        assert planner.imbalance([5.0, 0.0]) is None
        assert planner.imbalance([3.0, 1.0]) == pytest.approx(1.5)


class TestPlanReport:
    def test_plan_shape_and_markdown(self):
        plan = planner.build_plan(skewed_db(), CONFIG, workers=3)
        assert plan["kind"] == "repro-plan"
        assert plan["schema"] == planner.PLAN_SCHEMA_VERSION
        assert set(plan["assignments"]) == {"roundrobin", "predicted"}
        for entry in plan["assignments"].values():
            assert len(entry["shards"]) == len(entry["predicted_loads"])
        text = planner.render_plan_markdown(plan)
        assert "# Shard plan" in text
        assert "## Predicted heaviest roots" in text
        assert "## Assignments" in text
        assert "Recommendation:" in text

    def test_plan_summary_is_compact(self):
        plan = planner.build_plan(skewed_db(), CONFIG, workers=2)
        summary = planner.plan_summary(plan)
        assert summary["workers"] == 2
        assert set(summary["predicted_imbalance"]) == {
            "roundrobin", "predicted",
        }
        assert "roots" not in summary

    def test_load_plan_roundtrip_and_rejects_garbage(self, tmp_path):
        plan = planner.build_plan(skewed_db(), CONFIG, workers=2)
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan), encoding="utf-8")
        assert planner.load_plan(str(path)) == plan
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a shard plan"):
            planner.load_plan(str(bad))

    def test_build_plan_rejects_bad_workers(self):
        with pytest.raises(ValueError, match="workers"):
            planner.build_plan(skewed_db(), CONFIG, workers=0)


class TestCalibration:
    def test_perfect_forecast_scores_zero_mape(self):
        plan = planner.build_plan(skewed_db(), CONFIG, workers=2)
        record = planner.calibration_record(
            plan, cost_snapshot_from(plan, exact=True),
            strategy="predicted",
        )
        assert record["kind"] == "repro-calibration"
        assert record["strategy"] == "predicted"
        assert record["actual_metric"] == "wall_s"
        assert record["mape"] == pytest.approx(0.0)
        assert record["rank_corr"] == pytest.approx(1.0)
        assert record["roots_matched"] == len(plan["roots"])

    def test_frozen_clock_falls_back_to_states(self):
        plan = planner.build_plan(skewed_db(), CONFIG, workers=2)
        snapshot = cost_snapshot_from(plan, exact=True)
        for entry in snapshot["roots"].values():
            entry["wall_s"] = 0.0
        record = planner.calibration_record(plan, snapshot)
        assert record["actual_metric"] == "states_created"
        assert record["strategy"] is None
        assert record["worst_miss"]["root"] in plan["roots"]

    def test_no_matching_roots_yields_null_metrics(self):
        plan = {"roots": {"A+": {"predicted_cost": 1.0}},
                "predictor": {"source": "static"}}
        record = planner.calibration_record(
            plan, {"roots": {"Z+": {"wall_s": 1.0}}}
        )
        assert record["roots_matched"] == 0
        assert record["mape"] is None
        assert record["worst_miss"] is None

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="strategy"):
            planner.calibration_record(
                {"roots": {}}, {"roots": {}}, strategy="zigzag"
            )
