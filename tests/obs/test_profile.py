"""Tests for the per-phase profiling hooks (``repro.obs.profile``)."""

import json

import pytest

from repro.core.ptpminer import PTPMiner
from repro.obs import trace as obs_trace
from repro.obs.profile import (
    PhaseProfiler,
    hottest_function,
    main,
    profile_scope,
    render_profile,
    write_profile,
)

from tests.conftest import make_random_db


@pytest.fixture(scope="module")
def mined_profiler():
    """One profiled mining run shared by the read-only assertions."""
    db = make_random_db(1, num_sequences=30)
    with profile_scope(memory=True) as profiler:
        PTPMiner(0.2).mine(db)
    return profiler


class TestPhaseProfiler:
    def test_phases_attributed(self, mined_profiler):
        report = mined_profiler.report()
        names = {phase.name for phase in report.phases}
        assert {"prune", "encode", "pair_tables", "search"} <= names
        assert all(phase.runs == 1 for phase in report.phases)
        # Phases are ordered by descending cost and carry durations.
        seconds = [phase.seconds for phase in report.phases]
        assert seconds == sorted(seconds, reverse=True)

    def test_function_rows_name_the_hot_path(self, mined_profiler):
        report = mined_profiler.report().as_dict()
        search = next(
            phase for phase in report["phases"] if phase["name"] == "search"
        )
        funcs = " ".join(row["func"] for row in search["functions"])
        assert "project" in funcs or "gather_candidates" in funcs

    def test_memory_attribution(self, mined_profiler):
        report = mined_profiler.report()
        sites = [
            site
            for phase in report.phases
            for site in phase.memory_top
        ]
        assert sites, "memory=True must attribute allocation sites"
        assert all(site["size_kib"] >= 0 for site in sites)
        assert all(":" in site["site"] for site in sites)

    def test_folded_lines_shape_and_hot_frames(self, mined_profiler):
        lines = mined_profiler.folded_lines()
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert stack.split(";")[0] in (
                "prune", "encode", "pair_tables", "search"
            )
        hot = [
            line for line in lines
            if "project" in line or "counting" in line
        ]
        assert hot, "folded export must include the projection/counting path"

    def test_forwards_events_downstream(self):
        collector = obs_trace.TraceCollector()
        db = make_random_db(2, num_sequences=10)
        with obs_trace.use_tracer(collector):
            with profile_scope() as profiler:
                PTPMiner(0.4).mine(db)
        # Composes with the outer tracer: spans still reach it.
        names = {event.get("name") for event in collector.events}
        assert "search" in names and "mine" in names
        assert profiler.report().phases

    def test_nested_same_name_span_ignored(self):
        profiler = PhaseProfiler(phases=("search",))
        profiler.emit({"ev": "B", "span": 1, "name": "search", "ts": 0.0})
        # A same-named nested span must not restart the active profile.
        profiler.emit({"ev": "B", "span": 2, "name": "search", "ts": 0.1})
        profiler.emit(
            {"ev": "E", "span": 2, "name": "search", "ts": 0.2, "dur": 0.1}
        )
        profiler.emit(
            {"ev": "E", "span": 1, "name": "search", "ts": 0.5, "dur": 0.5}
        )
        report = profiler.report()
        assert [(p.name, p.runs) for p in report.phases] == [("search", 1)]
        assert report.phases[0].seconds == pytest.approx(0.5)

    def test_abort_clears_open_phase(self):
        profiler = PhaseProfiler(phases=("search",))
        profiler.emit({"ev": "B", "span": 1, "name": "search", "ts": 0.0})
        profiler.abort()
        # The unterminated phase is dropped, not double-counted.
        assert profiler.report().phases == []
        # And a fresh profile can start afterwards.
        profiler.emit({"ev": "B", "span": 3, "name": "search", "ts": 1.0})
        profiler.emit(
            {"ev": "E", "span": 3, "name": "search", "ts": 1.2, "dur": 0.2}
        )
        assert [p.runs for p in profiler.report().phases] == [1]

    def test_scope_uninstalls_tracer(self):
        with profile_scope():
            assert obs_trace.active_tracer() is not None
        assert obs_trace.active_tracer() is None


class TestRendering:
    def test_render_and_hottest(self, mined_profiler):
        report = mined_profiler.report().as_dict()
        text = render_profile(report)
        assert "Per-phase breakdown" in text
        assert "Top functions — search" in text
        assert "Top allocation sites" in text
        top = hottest_function(report)
        assert top is not None and "(" in top

    def test_empty_report(self):
        assert render_profile({}) == "(empty profile)"
        assert render_profile({"phases": []}) == "(empty profile)"
        assert hottest_function({}) is None

    def test_degenerate_phases_never_raise(self):
        # A partial run: missing keys, zero seconds, empty functions.
        report = {
            "phases": [
                {"name": "search"},
                {"runs": 2, "seconds": 0.0, "functions": []},
                {
                    "name": "encode",
                    "seconds": 0.1,
                    "functions": [{"func": "f", "calls": 1}],
                    "memory_top": [{"site": "x.py:1"}],
                },
            ]
        }
        text = render_profile(report)
        assert "Per-phase breakdown" in text
        assert "search" in text
        assert hottest_function(report) == "f"

    def test_zero_total_share_placeholder(self):
        text = render_profile(
            {"phases": [{"name": "p", "runs": 1, "seconds": 0.0}]}
        )
        assert "—" in text


class TestMain:
    def test_renders_file(self, tmp_path, capsys, mined_profiler):
        path = tmp_path / "profile.json"
        write_profile(mined_profiler.report(), path)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "Per-phase breakdown" in out
        # Round-trips through JSON: schema markers survive.
        data = json.loads(path.read_text())
        assert (data["schema"], data["kind"]) == (1, "repro-profile")

    def test_top_flag(self, tmp_path, capsys, mined_profiler):
        path = tmp_path / "profile.json"
        write_profile(mined_profiler.report(), path)
        assert main(["--top", "1", str(path)]) == 0
        assert "Per-phase breakdown" in capsys.readouterr().out

    def test_usage_errors(self, capsys):
        assert main([]) == 2
        assert main(["--help"]) == 2
        assert main(["a", "b"]) == 2
        assert main(["--top", "x"]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_degenerate_file_renders(self, tmp_path, capsys):
        path = tmp_path / "partial.json"
        path.write_text(json.dumps({"phases": [{"name": "search"}]}))
        assert main([str(path)]) == 0
        assert "search" in capsys.readouterr().out
