"""Tests for the injectable observability clock (``repro.obs.clock``)."""

import time

import pytest

from repro.obs.clock import (
    ManualClock,
    clock_scope,
    get_clock,
    now,
    set_clock,
)


class TestDefaultClock:
    def test_default_is_perf_counter(self):
        assert get_clock() is time.perf_counter

    def test_now_is_monotonic(self):
        assert now() <= now()


class TestManualClock:
    def test_starts_at_zero_and_advances(self):
        clock = ManualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5

    def test_custom_start(self):
        assert ManualClock(start=10.0)() == 10.0

    def test_rejects_backward_motion(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


class TestInstallation:
    def test_clock_scope_installs_and_restores(self):
        previous = get_clock()
        clock = ManualClock(start=5.0)
        with clock_scope(clock):
            assert now() == 5.0
            assert get_clock() is clock
        assert get_clock() is previous

    def test_clock_scope_restores_on_exception(self):
        previous = get_clock()
        with pytest.raises(RuntimeError):
            with clock_scope(ManualClock()):
                raise RuntimeError("boom")
        assert get_clock() is previous

    def test_set_clock_none_restores_default(self):
        set_clock(ManualClock())
        try:
            assert get_clock() is not time.perf_counter
        finally:
            set_clock(None)
        assert get_clock() is time.perf_counter
