"""Tests for pattern provenance / prune audit (`repro.obs.provenance`).

The load-bearing properties: absorb() is arrival-order independent
(bit-for-bit), every recorded support set checks out against the
brute-force containment oracle (size, membership, *and* witness
embeddings), and explain / why-not attribute results to the decisions
the search actually made.
"""

import itertools
import json

import pytest

from repro.core.config import MinerConfig
from repro.core.ptpminer import PTPMiner
from repro.datagen import standard_dataset
from repro.model.pattern import TemporalPattern
from repro.model.sequence import ESequence
from repro.obs import provenance


def canonical(snapshot):
    return json.dumps(snapshot, sort_keys=True)


def make_snapshot(pattern="(A+) (A-)", *, support=3.0, sids=(0, 1, 2)):
    collector = provenance.ProvenanceCollector()
    collector.record_emitted(
        pattern,
        support,
        sids,
        {sid: [("A", 1)] for sid in sids},
        root="A+",
        level=2,
    )
    return collector.snapshot()


class TestCollector:
    def test_snapshot_shape(self):
        snap = make_snapshot()
        assert snap["schema"] == provenance.PROVENANCE_SCHEMA_VERSION
        assert snap["kind"] == "repro-provenance"
        entry = snap["patterns"]["(A+) (A-)"]
        assert entry["support"] == 3.0
        assert entry["sids"] == [0, 1, 2]
        assert entry["witnesses"]["0"] == [["A", 1]]
        assert entry["root"] == "A+" and entry["level"] == 2

    def test_emitted_sids_and_witness_bindings_are_sorted(self):
        collector = provenance.ProvenanceCollector()
        collector.record_emitted(
            "(A+) (A-)",
            2.0,
            [5, 1],
            {5: [("B", 2), ("A", 1)], 1: [("A", 1)]},
            root="A+",
            level=2,
        )
        entry = collector.snapshot()["patterns"]["(A+) (A-)"]
        assert entry["sids"] == [1, 5]
        assert entry["witnesses"]["5"] == [["A", 1], ["B", 2]]

    def test_record_pruned_rejects_unknown_site(self):
        collector = provenance.ProvenanceCollector()
        with pytest.raises(ValueError, match="unknown prune site"):
            collector.record_pruned(
                "(A+)", site="gremlins", level=1, root="A+"
            )

    def test_record_pruned_label_keys_by_flavour(self):
        collector = provenance.ProvenanceCollector()
        collector.record_pruned_label("A", "interval", 1.0, 2.5)
        collector.record_pruned_label("A", "point", 0.0, 2.5)
        labels = collector.snapshot()["labels"]
        assert set(labels) == {"A/interval", "A/point"}
        assert labels["A/interval"] == {"df": 1.0, "threshold": 2.5}

    def test_snapshot_is_json_round_trippable(self):
        snap = make_snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_absorb_rejects_unknown_schema(self):
        collector = provenance.ProvenanceCollector()
        with pytest.raises(ValueError):
            collector.absorb({"schema": 99, "patterns": {}})

    def test_absorb_is_arrival_order_independent(self):
        shards = [
            make_snapshot("(A+) (A-)", support=3.0),
            make_snapshot("(B+) (B-)", support=2.0, sids=(1, 4)),
            make_snapshot("(C+) (C-)", support=1.0, sids=(2,)),
        ]
        merged = []
        for order in itertools.permutations(shards):
            collector = provenance.ProvenanceCollector()
            for snap in order:
                collector.absorb(snap)
            merged.append(canonical(collector.snapshot()))
        assert len(set(merged)) == 1

    def test_absorb_matches_direct_recording(self):
        direct = provenance.ProvenanceCollector()
        direct.record_emitted(
            "(A+) (A-)", 2.0, [0, 3], {0: [("A", 1)], 3: [("A", 2)]},
            root="A+", level=2,
        )
        direct.record_pruned(
            "(B+)", site="support", level=1, root="B+",
            support=1.0, threshold=2.0,
        )
        direct.record_pruned_label("C", "interval", 0.0, 2.0)
        shipped = provenance.ProvenanceCollector()
        shipped.absorb(direct.snapshot())
        assert canonical(shipped.snapshot()) == canonical(direct.snapshot())


class TestPatternsDigest:
    def test_order_independent_and_content_sensitive(self):
        a = provenance.patterns_digest([("(A+) (A-)", 3.0), ("(B.)", 2.0)])
        b = provenance.patterns_digest([("(B.)", 2.0), ("(A+) (A-)", 3.0)])
        assert a == b
        assert a != provenance.patterns_digest(
            [("(A+) (A-)", 4.0), ("(B.)", 2.0)]
        )
        assert a != provenance.patterns_digest([("(A+) (A-)", 3.0)])

    def test_accepts_mined_pattern_items(self):
        db = standard_dataset("tiny")
        result = PTPMiner.from_config(MinerConfig(min_sup=0.3)).mine(db)
        from_items = provenance.patterns_digest(result.patterns)
        from_pairs = provenance.patterns_digest(
            [(str(item.pattern), item.support) for item in result.patterns]
        )
        assert from_items == from_pairs


class TestGenerationPrefixes:
    def test_prefixes_walk_back_to_the_root_token(self):
        pattern = TemporalPattern.parse("(A+ B+) (A- B-)")
        prefixes = provenance.generation_prefixes(pattern)
        assert prefixes[0] == str(pattern.canonical())
        assert prefixes[-1] == "(A+)"
        # One prefix per flattened endpoint token.
        assert len(prefixes) == 4

    def test_single_token_pattern_is_its_own_root(self):
        pattern = TemporalPattern.parse("(A.)")
        assert provenance.generation_prefixes(pattern) == ["(A.)"]


def query_snapshot():
    """A hand-built snapshot exercising every why-not status."""
    collector = provenance.ProvenanceCollector()
    collector.record_emitted(
        "(A+) (A-)", 3.0, [0, 1, 2], {0: [("A", 1)]}, root="A+", level=2
    )
    collector.record_pruned(
        "(A+) (A-) (B+)", site="support", level=3, root="A+",
        support=1.0, threshold=2.0,
    )
    collector.record_pruned(
        "(B+)", site="pair", level=1, root="B+", threshold=2.0
    )
    collector.record_pruned_label("Z", "interval", 1.0, 2.0)
    return collector.snapshot()


class TestExplain:
    def test_found_report_carries_evidence_and_siblings(self):
        snap = query_snapshot()
        report = provenance.explain(snap, "(A+) (A-)")
        assert report["found"] is True
        assert report["support"] == 3.0
        assert report["sids"] == [0, 1, 2]
        assert report["witnesses"]["0"] == [["A", 1]]
        assert report["root"] == "A+" and report["level"] == 2
        # (B+) shares the empty parent prefix with nothing — the only
        # same-parent pruned sibling of a level-2 pattern is one whose
        # parent is "(A+)"; none here, so the list is empty.
        assert report["pruned_siblings"] == []

    def test_sibling_attribution_joins_on_parent_prefix(self):
        collector = provenance.ProvenanceCollector()
        collector.record_emitted(
            "(A+) (A- B+) (B-)", 3.0, [0], {0: [("A", 1), ("B", 1)]},
            root="A+", level=4,
        )
        collector.record_pruned(
            "(A+) (A- B.)", site="support", level=3, root="A+",
            support=1.0, threshold=2.0,
        )
        report = provenance.explain(
            collector.snapshot(), "(A+) (A- B+)"
        )
        # The queried pattern is absent but parseable: found=False.
        assert report["found"] is False
        report = provenance.explain(
            collector.snapshot(), "(A+) (A- B+) (B-)"
        )
        assert report["found"]

    def test_malformed_pattern_raises_value_error(self):
        with pytest.raises(ValueError):
            provenance.explain(query_snapshot(), "A+ B")


class TestWhyNot:
    def test_emitted(self):
        report = provenance.why_not(query_snapshot(), "(A+) (A-)")
        assert report["status"] == "emitted"
        assert report["support"] == 3.0

    def test_pruned_directly(self):
        report = provenance.why_not(query_snapshot(), "(A+) (A-) (B+)")
        assert report["status"] == "pruned"
        assert report["decision"]["site"] == "support"
        assert report["decision"]["support"] == 1.0

    def test_prefix_pruned(self):
        report = provenance.why_not(
            query_snapshot(), "(A+) (A-) (B+) (B-)"
        )
        assert report["status"] == "prefix_pruned"
        assert report["prefix"] == "(A+) (A-) (B+)"
        assert report["decision"]["site"] == "support"

    def test_label_pruned_checks_needed_flavours(self):
        report = provenance.why_not(query_snapshot(), "(Z+) (Z-)")
        assert report["status"] == "label_pruned"
        assert report["labels"][0]["label"] == "Z"
        assert report["labels"][0]["flavour"] == "interval"
        # The *point* flavour of Z was not pruned, so a point query
        # falls through to the generation-path walk instead.
        assert provenance.why_not(query_snapshot(), "(Z.)")[
            "status"
        ] == "never_generated"

    def test_never_generated(self):
        report = provenance.why_not(query_snapshot(), "(Q+) (Q-)")
        assert report["status"] == "never_generated"

    def test_malformed_pattern_raises_value_error(self):
        with pytest.raises(ValueError):
            provenance.why_not(query_snapshot(), "(not a token)")


class TestDiffPatterns:
    def test_attributes_additions_and_removals(self):
        a = query_snapshot()
        collector = provenance.ProvenanceCollector()
        collector.record_emitted(
            "(A+) (A-)", 2.0, [0, 1], {0: [("A", 1)]}, root="A+", level=2
        )
        collector.record_emitted(
            "(A+) (A-) (B+)", 2.0, [0, 1], {0: [("A", 1), ("B", 1)]},
            root="A+", level=3,
        )
        b = collector.snapshot()
        diff = provenance.diff_patterns(a, b)
        assert diff["counts"] == {"a": 1, "b": 2}
        (added,) = diff["added"]
        assert added["pattern"] == "(A+) (A-) (B+)"
        assert added["was"]["status"] == "pruned"
        assert diff["removed"] == []
        (changed,) = diff["changed_support"]
        assert changed["pattern"] == "(A+) (A-)"
        assert (changed["support_a"], changed["support_b"]) == (3.0, 2.0)

    def test_identical_snapshots_diff_empty(self):
        a = query_snapshot()
        diff = provenance.diff_patterns(a, a)
        assert diff["added"] == []
        assert diff["removed"] == []
        assert diff["changed_support"] == []


class TestMarkdownRenderers:
    def test_explain_markdown(self):
        text = provenance.render_explain_markdown(
            provenance.explain(query_snapshot(), "(A+) (A-)")
        )
        assert "# explain `(A+) (A-)`" in text
        assert "support: **3.0**" in text
        assert "| 0 | A#1 |" in text

    def test_explain_markdown_not_found(self):
        text = provenance.render_explain_markdown(
            provenance.explain(query_snapshot(), "(Q+) (Q-)")
        )
        assert "Not in this run's result set" in text

    def test_why_not_markdown_renders_each_status(self):
        snap = query_snapshot()
        assert "It **is** in the result set" in (
            provenance.render_why_not_markdown(
                provenance.why_not(snap, "(A+) (A-)")
            )
        )
        assert "site `support`" in provenance.render_why_not_markdown(
            provenance.why_not(snap, "(A+) (A-) (B+)")
        )
        assert "died first" in provenance.render_why_not_markdown(
            provenance.why_not(snap, "(A+) (A-) (B+) (B-)")
        )
        assert "point-pruned" in provenance.render_why_not_markdown(
            provenance.why_not(snap, "(Z+) (Z-)")
        )
        assert "Never generated" in provenance.render_why_not_markdown(
            provenance.why_not(snap, "(Q+) (Q-)")
        )

    def test_diff_markdown(self):
        diff = provenance.diff_patterns(query_snapshot(), query_snapshot())
        text = provenance.render_patterns_diff_markdown(diff)
        assert "Result sets are identical" in text


class TestSeam:
    def test_disabled_by_default(self):
        assert provenance.active_collector() is None

    def test_use_collector_installs_and_restores(self):
        outer = provenance.ProvenanceCollector()
        with provenance.use_collector(outer) as got:
            assert got is outer
            assert provenance.active_collector() is outer
            with provenance.use_collector() as inner:
                assert inner is not outer
                assert provenance.active_collector() is inner
            assert provenance.active_collector() is outer
        assert provenance.active_collector() is None

    def test_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with provenance.use_collector():
                raise RuntimeError("boom")
        assert provenance.active_collector() is None


class TestMiningOracle:
    """Brute-force cross-checks of recorded evidence on tiny DBs.

    Every claim a snapshot makes is re-derivable from the raw data:
    support sets against the containment oracle, witnesses as concrete
    embeddings, and the emitted key set against the mining result.
    """

    @pytest.fixture(scope="class", params=["tiny", "hybrid"])
    def mined(self, request):
        db = standard_dataset(request.param, num_sequences=25)
        mode = "htp" if request.param == "hybrid" else "tp"
        config = MinerConfig(min_sup=0.3, mode=mode)
        with provenance.use_collector() as collector:
            result = PTPMiner.from_config(config).mine(db)
        return db, result, collector.snapshot()

    def test_emitted_keys_equal_the_result_set(self, mined):
        _db, result, snap = mined
        assert set(snap["patterns"]) == {
            str(item.pattern) for item in result.patterns
        }
        for item in result.patterns:
            assert snap["patterns"][str(item.pattern)]["support"] == (
                item.support
            )

    def test_support_sets_match_the_containment_oracle(self, mined):
        db, _result, snap = mined
        for key, entry in snap["patterns"].items():
            pattern = TemporalPattern.parse(key)
            oracle_sids = [
                seq.sid for seq in db if pattern.contained_in(seq)
            ]
            assert entry["sids"] == oracle_sids
            # Unweighted DB: support equals the support-set size.
            assert entry["support"] == len(entry["sids"])

    def test_witnesses_are_real_embeddings(self, mined):
        # Witness occurrence indices refer to the *mined* database —
        # after point pruning — which the snapshot's own `labels` map
        # lets us reconstruct from the raw data.
        db, _result, snap = mined
        dropped = set(snap["labels"])
        for key, entry in snap["patterns"].items():
            pattern = TemporalPattern.parse(key)
            for sid_text, binding in entry["witnesses"].items():
                seq = db[int(sid_text)]
                mined_seq = ESequence(
                    event
                    for event in seq
                    if (
                        f"{event.label}/"
                        f"{'point' if event.is_point else 'interval'}"
                    )
                    not in dropped
                )
                by_occ = {
                    (event.label, occ): event
                    for event, occ in mined_seq.occurrence_indexed()
                }
                events = [
                    by_occ[(label, occ)] for label, occ in binding
                ]
                # One event per pattern occurrence, and the restricted
                # sequence realizes the full arrangement.
                assert len(events) == pattern.size
                assert pattern.contained_in(ESequence(events))

    def test_pruned_candidates_are_absent_from_the_result(self, mined):
        _db, result, snap = mined
        emitted = {str(item.pattern) for item in result.patterns}
        assert not (set(snap["pruned"]) & emitted)

    def test_support_site_kills_agree_with_the_oracle(self, mined):
        db, result, snap = mined
        threshold = result.threshold
        for key, decision in snap["pruned"].items():
            if decision["site"] != "support":
                continue
            assert decision["support"] < decision["threshold"]
            pattern = TemporalPattern.parse(key)
            try:
                pattern.to_esequence()
            except ValueError:
                # Incomplete candidate (open intervals): its projected
                # support is prefix-constrained, and the free
                # containment oracle legitimately counts more matches.
                continue
            assert pattern.support_in(db) < threshold

    def test_why_not_round_trips_on_pruned_candidates(self, mined):
        _db, _result, snap = mined
        pruned = snap["pruned"]
        if not pruned:
            pytest.skip("no pruned candidates recorded at this min_sup")
        key = sorted(pruned)[0]
        report = provenance.why_not(snap, key)
        assert report["status"] == "pruned"
        assert report["decision"] == pruned[key]
