"""Tests for counters/gauges/histograms (``repro.obs.metrics``)."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge()
        gauge.set(4.0)
        gauge.set(-2.0)
        assert gauge.value == -2.0


class TestHistogram:
    def test_bucket_edges_use_le_convention(self):
        hist = Histogram(buckets=(1.0, 5.0))
        hist.observe(1.0)  # exactly on a bound -> that bucket
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(5.0001)  # past the last bound -> overflow
        data = hist.as_dict()
        assert data["buckets"] == {"le_1": 2, "le_5": 1, "inf": 1}
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(11.5001)
        assert data["mean"] == pytest.approx(11.5001 / 4)

    def test_empty_histogram_has_none_mean(self):
        data = Histogram(buckets=(1.0,)).as_dict()
        assert data["count"] == 0
        assert data["mean"] is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a", x=1) is registry.counter("a", x=1)
        assert registry.counter("a") is not registry.counter("a", x=1)
        assert len(registry) == 2

    def test_same_name_different_kinds_do_not_collide(self):
        registry = MetricsRegistry()
        registry.counter("m").inc()
        registry.gauge("m").set(7)
        snap = registry.snapshot()
        assert snap["counters"]["m"] == 1
        assert snap["gauges"]["m"] == 7

    def test_snapshot_keys_sort_labels(self):
        registry = MetricsRegistry()
        registry.counter("c", b=2, a=1).inc()
        assert list(registry.snapshot()["counters"]) == ["c[a=1,b=2]"]

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.1)
        text = json.dumps(registry.snapshot())
        assert set(json.loads(text)) == {"counters", "gauges", "histograms"}

    def test_snapshot_renders_integral_floats_as_int(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3.0)
        registry.counter("t").inc(0.25)
        snap = registry.snapshot()["counters"]
        assert snap["n"] == 3 and isinstance(snap["n"], int)
        assert snap["t"] == 0.25

    def test_absorb_prefixes_totals(self):
        registry = MetricsRegistry()
        registry.absorb({"x": 2, "y": 0}, prefix="search.")
        snap = registry.snapshot()["counters"]
        assert snap == {"search.x": 2, "search.y": 0}


class TestInstallation:
    def test_off_by_default(self):
        assert active_registry() is None

    def test_use_registry_scopes_a_fresh_registry(self):
        with use_registry() as registry:
            assert active_registry() is registry
        assert active_registry() is None

    def test_use_registry_accepts_existing_and_restores_previous(self):
        outer = MetricsRegistry()
        set_registry(outer)
        try:
            with use_registry(MetricsRegistry()) as inner:
                assert active_registry() is inner
            assert active_registry() is outer
        finally:
            set_registry(None)

    def test_use_registry_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("boom")
        assert active_registry() is None


class TestAbsorbSnapshot:
    def test_counters_add_under_prefix(self):
        worker = MetricsRegistry()
        worker.counter("nodes").inc(5)
        parent = MetricsRegistry()
        parent.counter("shard.nodes").inc(1)
        parent.absorb_snapshot(worker.snapshot(), prefix="shard.")
        assert parent.snapshot()["counters"]["shard.nodes"] == 6

    def test_counters_add_across_shards(self):
        parent = MetricsRegistry()
        for value in (3, 4):
            worker = MetricsRegistry()
            worker.counter("nodes").inc(value)
            parent.absorb_snapshot(worker.snapshot(), prefix="shard.")
        assert parent.snapshot()["counters"]["shard.nodes"] == 7

    def test_gauges_keep_max_of_absorbed_values(self):
        parent = MetricsRegistry()
        parent.gauge("depth").set(2)
        worker = MetricsRegistry()
        worker.gauge("depth").set(9)
        parent.absorb_snapshot(worker.snapshot())
        assert parent.snapshot()["gauges"]["depth"] == 9
        # A smaller later value must not regress the merged gauge.
        low = MetricsRegistry()
        low.gauge("depth").set(1)
        parent.absorb_snapshot(low.snapshot())
        assert parent.snapshot()["gauges"]["depth"] == 9

    def test_gauge_merge_is_order_independent(self):
        # Regression: colliding shard gauges used to be last-write-wins
        # in arrival order, so process-executor completion order leaked
        # into snapshots. The max-merge must land on the same value for
        # every permutation.
        values = (4.0, 11.0, 7.0)
        snapshots = []
        for value in values:
            worker = MetricsRegistry()
            worker.gauge("search.max_depth").set(value)
            snapshots.append(worker.snapshot())
        merged = []
        for ordering in (snapshots, snapshots[::-1]):
            parent = MetricsRegistry()
            for snapshot in ordering:
                parent.absorb_snapshot(snapshot, prefix="shard.")
            merged.append(
                parent.snapshot()["gauges"]["shard.search.max_depth"]
            )
        assert merged == [11, 11]

    def test_histograms_merge_bound_for_bound(self):
        parent = MetricsRegistry()
        for observations in ((0.5, 1.5), (0.7, 99.0)):
            worker = MetricsRegistry()
            hist = worker.histogram("lat", buckets=[1.0, 2.0])
            for value in observations:
                hist.observe(value)
            parent.absorb_snapshot(worker.snapshot(), prefix="shard.")
        merged = parent.snapshot()["histograms"]["shard.lat"]
        assert merged["count"] == 4
        assert merged["buckets"]["le_1"] == 2
        assert merged["buckets"]["inf"] == 1
        assert merged["sum"] == pytest.approx(0.5 + 1.5 + 0.7 + 99.0)

    def test_histogram_bucketwise_add_into_existing_histogram(self):
        # Absorbing into a registry that already owns a same-bound
        # histogram must add counts per bucket, never reset or re-bin.
        parent = MetricsRegistry()
        own = parent.histogram("lat", buckets=[1.0, 2.0])
        own.observe(0.5)
        own.observe(1.5)
        worker = MetricsRegistry()
        hist = worker.histogram("lat", buckets=[1.0, 2.0])
        hist.observe(0.25)
        hist.observe(5.0)
        parent.absorb_snapshot(worker.snapshot())
        merged = parent.snapshot()["histograms"]["lat"]
        assert merged["buckets"] == {"le_1": 2, "le_2": 1, "inf": 1}
        assert merged["count"] == 4
        assert merged["sum"] == pytest.approx(0.5 + 1.5 + 0.25 + 5.0)

    def test_histogram_mismatched_bounds_fall_into_overflow(self):
        # A shard whose histogram bounds drifted from the parent's must
        # not silently re-bin: unknown bounds land in overflow so the
        # total observation count is never lost.
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=[1.0, 2.0]).observe(0.5)
        worker = MetricsRegistry()
        drifted = worker.histogram("lat", buckets=[3.0]).observe(0.5)
        assert drifted is None  # observe returns nothing; sanity only
        parent.absorb_snapshot(worker.snapshot())
        merged = parent.snapshot()["histograms"]["lat"]
        assert merged["buckets"]["le_1"] == 1  # parent's own observation
        assert merged["buckets"]["inf"] == 1  # drifted le_3 count
        assert merged["count"] == 2

    def test_rendered_label_keys_survive_verbatim(self):
        worker = MetricsRegistry()
        worker.counter("phase_seconds", phase="search").inc(2)
        parent = MetricsRegistry()
        parent.absorb_snapshot(worker.snapshot(), prefix="shard.")
        counters = parent.snapshot()["counters"]
        assert counters == {"shard.phase_seconds[phase=search]": 2}

    def test_empty_snapshot_is_a_no_op(self):
        parent = MetricsRegistry()
        parent.absorb_snapshot({})
        assert parent.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }


class TestAbsorbOrderDeterminism:
    """Regression: absorption must not depend on producer dict order.

    Snapshot dicts arrive from workers; their insertion order reflects
    each worker's execution history. The parent iterates them sorted so
    the merge is insensitive to that order (repro-lint R013 fences the
    float accumulations in ``absorb_snapshot``).
    """

    @staticmethod
    def _scrambled(snapshot):
        return {
            section: dict(reversed(list(mapping.items())))
            for section, mapping in snapshot.items()
        }

    def test_scrambled_snapshot_absorbs_identically(self):
        worker = MetricsRegistry()
        worker.counter("a").inc(0.1)
        worker.counter("b").inc(0.2)
        worker.counter("c").inc(0.3)
        worker.gauge("peak").set(1.5)
        worker.histogram("lat", buckets=[1.0]).observe(0.4)
        snap = worker.snapshot()

        parent_sorted = MetricsRegistry()
        parent_sorted.absorb_snapshot(snap, prefix="shard.")
        parent_scrambled = MetricsRegistry()
        parent_scrambled.absorb_snapshot(
            self._scrambled(snap), prefix="shard."
        )
        assert parent_sorted.snapshot() == parent_scrambled.snapshot()

    def test_absorption_commutes_across_shards(self):
        shard_a = MetricsRegistry()
        shard_a.counter("nodes").inc(0.1)
        shard_a.gauge("peak").set(2.0)
        shard_b = MetricsRegistry()
        shard_b.counter("nodes").inc(0.2)
        shard_b.gauge("peak").set(3.0)

        ab = MetricsRegistry()
        ab.absorb_snapshot(shard_a.snapshot(), prefix="shard.")
        ab.absorb_snapshot(shard_b.snapshot(), prefix="shard.")
        ba = MetricsRegistry()
        ba.absorb_snapshot(shard_b.snapshot(), prefix="shard.")
        ba.absorb_snapshot(shard_a.snapshot(), prefix="shard.")
        assert ab.snapshot() == ba.snapshot()
