"""Tests for per-root / per-level cost attribution (`repro.obs.costmodel`).

The load-bearing properties: absorb() is arrival-order independent
(bit-for-bit), the digest ignores wall time and nothing else, and a
serial mining run's profile is internally consistent with the run's
own PruneCounters.
"""

import itertools
import json

import pytest

from repro.core.config import MinerConfig
from repro.core.ptpminer import PTPMiner
from repro.datagen import standard_dataset
from repro.obs import costmodel


def canonical(snapshot):
    return json.dumps(snapshot, sort_keys=True)


def make_snapshot(root, *, wall_s=0.5, states=3, patterns=1, level=1):
    collector = costmodel.CostCollector()
    collector.record_node(level, 4)
    collector.record_frequent(level)
    collector.record_pattern(level)
    before = {"states_created": 0, "patterns_emitted": 0}
    after = {"states_created": states, "patterns_emitted": patterns}
    collector.record_root(root, wall_s, before, after)
    return collector.snapshot()


class TestCostCollector:
    def test_snapshot_shape(self):
        snap = make_snapshot("e0+")
        assert snap["schema"] == costmodel.COST_SCHEMA_VERSION
        assert snap["kind"] == "repro-cost"
        assert snap["roots"]["e0+"]["states_created"] == 3
        assert snap["roots"]["e0+"]["wall_s"] == pytest.approx(0.5)
        assert snap["levels"]["1"] == {
            "nodes": 1,
            "candidates": 4,
            "frequent": 1,
            "patterns": 1,
        }

    def test_record_root_uses_counter_deltas(self):
        collector = costmodel.CostCollector()
        collector.record_root(
            "a+",
            0.0,
            {"nodes_expanded": 10, "states_created": 7},
            {"nodes_expanded": 14, "states_created": 9},
        )
        entry = collector.snapshot()["roots"]["a+"]
        assert entry["nodes_expanded"] == 4
        assert entry["states_created"] == 2
        # Fields absent from both snapshots stay zero.
        assert entry["patterns_emitted"] == 0

    def test_snapshot_is_json_round_trippable(self):
        snap = make_snapshot("e1-")
        assert json.loads(json.dumps(snap)) == snap

    def test_absorb_rejects_unknown_schema(self):
        collector = costmodel.CostCollector()
        with pytest.raises(ValueError):
            collector.absorb({"schema": 99, "roots": {}, "levels": {}})

    def test_absorb_is_arrival_order_independent(self):
        shards = [
            make_snapshot("a+", wall_s=0.25, states=5, level=1),
            make_snapshot("b+", wall_s=1.5, states=2, level=2),
            make_snapshot("c-", wall_s=0.75, states=9, level=1),
        ]
        merged = []
        for order in itertools.permutations(shards):
            collector = costmodel.CostCollector()
            for snap in order:
                collector.absorb(snap)
            merged.append(canonical(collector.snapshot()))
        assert len(set(merged)) == 1

    def test_absorb_accumulates_shared_keys_fieldwise(self):
        collector = costmodel.CostCollector()
        collector.absorb(make_snapshot("a+", wall_s=0.5, states=3))
        collector.absorb(make_snapshot("a+", wall_s=0.25, states=4))
        snap = collector.snapshot()
        assert snap["roots"]["a+"]["wall_s"] == pytest.approx(0.75)
        assert snap["roots"]["a+"]["states_created"] == 7
        assert snap["levels"]["1"]["nodes"] == 2

    def test_absorb_matches_direct_recording(self):
        direct = costmodel.CostCollector()
        direct.record_node(1, 3)
        direct.record_frequent(1)
        direct.record_root("x+", 0.5, {}, {"states_created": 2})

        shipped = costmodel.CostCollector()
        shipped.absorb(direct.snapshot())
        assert canonical(shipped.snapshot()) == canonical(direct.snapshot())


class TestDigestAndRanking:
    def test_digest_ignores_wall_time_only(self):
        fast = make_snapshot("e0+", wall_s=0.001)
        slow = make_snapshot("e0+", wall_s=9.0)
        assert costmodel.profile_digest(fast) == costmodel.profile_digest(
            slow
        )
        drifted = make_snapshot("e0+", wall_s=0.001, states=4)
        assert costmodel.profile_digest(fast) != costmodel.profile_digest(
            drifted
        )

    def test_top_roots_ranks_by_wall_then_states_then_name(self):
        collector = costmodel.CostCollector()
        collector.record_root("slow+", 2.0, {}, {"states_created": 1})
        collector.record_root("big+", 1.0, {}, {"states_created": 50})
        collector.record_root("small+", 1.0, {}, {"states_created": 5})
        collector.record_root("a+", 1.0, {}, {"states_created": 5})
        snap = collector.snapshot()
        names = [row["root"] for row in costmodel.top_roots(snap, n=3)]
        assert names == ["slow+", "big+", "a+"]
        assert len(costmodel.top_roots(snap, n=99)) == 4
        assert costmodel.top_roots(snap, n=0) == []

    def test_top_roots_rows_carry_all_fields(self):
        snap = make_snapshot("e0+")
        (row,) = costmodel.top_roots(snap, n=1)
        assert row["root"] == "e0+"
        assert "wall_s" in row and "states_created" in row


class TestSeam:
    def test_disabled_by_default(self):
        assert costmodel.active_collector() is None

    def test_use_collector_installs_and_restores(self):
        outer = costmodel.CostCollector()
        with costmodel.use_collector(outer) as got:
            assert got is outer
            assert costmodel.active_collector() is outer
            with costmodel.use_collector() as inner:
                assert inner is not outer
                assert costmodel.active_collector() is inner
            assert costmodel.active_collector() is outer
        assert costmodel.active_collector() is None

    def test_restores_even_on_error(self):
        with pytest.raises(RuntimeError):
            with costmodel.use_collector():
                raise RuntimeError("boom")
        assert costmodel.active_collector() is None


class TestMiningIntegration:
    @pytest.fixture(scope="class")
    def mined(self):
        db = standard_dataset("tiny")
        miner = PTPMiner.from_config(MinerConfig(min_sup=0.3))
        with costmodel.use_collector() as collector:
            result = miner.mine(db)
        return result, collector.snapshot()

    def test_funnel_sums_match_counters(self, mined):
        result, snap = mined
        counters = result.counters.as_dict()
        levels = snap["levels"].values()
        assert sum(r["frequent"] for r in levels) == (
            counters["candidates_frequent"]
        )
        assert sum(r["patterns"] for r in levels) == (
            counters["patterns_emitted"]
        )
        assert sum(r["patterns"] for r in levels) == len(result.patterns)

    def test_root_attribution_covers_whole_search(self, mined):
        result, snap = mined
        counters = result.counters.as_dict()
        roots = snap["roots"].values()
        assert sum(r["patterns_emitted"] for r in roots) == (
            counters["patterns_emitted"]
        )
        assert sum(r["candidates_frequent"] for r in roots) == (
            counters["candidates_frequent"]
        )
        # Number of roots equals the level-1 frequent count.
        assert len(snap["roots"]) == snap["levels"]["1"]["frequent"]

    def test_no_collection_without_installed_collector(self):
        db = standard_dataset("tiny")
        miner = PTPMiner.from_config(MinerConfig(min_sup=0.3))
        baseline = miner.mine(db)
        with costmodel.use_collector() as collector:
            pass  # installed around nothing: mine ran outside the scope
        assert collector.snapshot()["roots"] == {}
        assert baseline.patterns  # sanity: the dataset does mine
