"""Tests for the Chrome trace-event exporter (``repro.obs.chrometrace``)."""

import json

import pytest

from repro.obs.chrometrace import main, to_chrome_trace, write_chrome_trace


def span_pair(span_id, name, ts, dur, *, parent=None, **attrs):
    begin = {"ev": "B", "span": span_id, "parent": parent,
             "name": name, "ts": ts, **attrs}
    end = {"ev": "E", "span": span_id, "name": name,
           "ts": ts + dur, "dur": dur}
    return [begin, end]


def complete_events(document):
    return [ev for ev in document["traceEvents"] if ev["ph"] == "X"]


class TestConversion:
    def test_pairs_become_complete_events_in_microseconds(self):
        events = span_pair(1, "mine", 10.0, 2.5, sequences=4)
        document = to_chrome_trace(events)
        (ev,) = complete_events(document)
        assert ev["name"] == "mine"
        assert ev["ph"] == "X"
        assert ev["ts"] == pytest.approx(0.0)       # rebased to origin
        assert ev["dur"] == pytest.approx(2.5e6)
        assert ev["pid"] == 0
        assert ev["tid"] == 0
        assert ev["args"]["sequences"] == 4
        assert ev["args"]["span"] == 1

    def test_one_track_per_shard_with_thread_names(self):
        events = span_pair(1, "mine", 0.0, 3.0)
        events += span_pair(2, "shards", 0.5, 2.0, parent=1)
        events += span_pair("shard0:1", "search", 100.0, 1.0, parent=2)
        events += span_pair("shard1:1", "search", 200.0, 1.5, parent=2)
        document = to_chrome_trace(events)
        by_tid = {}
        for ev in complete_events(document):
            by_tid.setdefault(ev["tid"], []).append(ev["name"])
        assert by_tid == {0: ["mine", "shards"], 1: ["search"],
                          2: ["search"]}
        names = {
            ev["tid"]: ev["args"]["name"]
            for ev in document["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert names == {0: "main", 1: "shard 0", 2: "shard 1"}

    def test_shard_tracks_rebased_to_dispatch_span(self):
        # Worker clocks have their own origins (100.0 / 200.0 here);
        # each shard track must be shifted to start where the parent's
        # "shards" dispatch span starts.
        events = span_pair(1, "mine", 0.0, 3.0)
        events += span_pair(2, "shards", 0.5, 2.0, parent=1)
        events += span_pair("shard0:1", "search", 100.0, 1.0, parent=2)
        events += span_pair("shard1:1", "search", 200.0, 1.5, parent=2)
        document = to_chrome_trace(events)
        dispatch = next(
            ev for ev in complete_events(document) if ev["name"] == "shards"
        )
        shard_starts = [
            ev["ts"] for ev in complete_events(document) if ev["tid"] != 0
        ]
        assert shard_starts == [pytest.approx(dispatch["ts"])] * 2

    def test_unpaired_begin_becomes_zero_duration_unfinished(self):
        events = [
            {"ev": "B", "span": 1, "parent": None, "name": "mine",
             "ts": 0.0}
        ]
        document = to_chrome_trace(events)
        (ev,) = complete_events(document)
        assert ev["dur"] == 0.0
        assert ev["args"]["unfinished"] is True

    def test_error_spans_carry_err_arg(self):
        events = span_pair(1, "mine", 0.0, 1.0)
        events[1]["err"] = "ValueError"
        document = to_chrome_trace(events)
        (ev,) = complete_events(document)
        assert ev["args"]["err"] == "ValueError"

    def test_malformed_events_are_skipped(self):
        events = [
            {"ev": "B"},                       # no span id
            {"span": 9, "name": "x"},          # no ev kind
            *span_pair(1, "ok", 0.0, 1.0),
        ]
        document = to_chrome_trace(events)
        assert [ev["name"] for ev in complete_events(document)] == ["ok"]

    def test_empty_trace_produces_empty_document(self):
        document = to_chrome_trace([])
        assert complete_events(document) == []
        json.dumps(document)


class TestCli:
    def test_write_and_module_cli(self, tmp_path, capsys):
        source = tmp_path / "trace.jsonl"
        events = span_pair(1, "mine", 0.0, 1.0)
        source.write_text(
            "".join(json.dumps(ev) + "\n" for ev in events)
        )
        out = tmp_path / "trace.chrome.json"
        assert main([str(source), str(out)]) == 0
        printed = capsys.readouterr().out
        assert "1 spans" in printed
        document = json.loads(out.read_text())
        assert len(complete_events(document)) == 1

    def test_write_chrome_trace_returns_document(self, tmp_path):
        out = tmp_path / "out.json"
        document = write_chrome_trace(span_pair(1, "mine", 0.0, 1.0), out)
        assert json.loads(out.read_text()) == document
