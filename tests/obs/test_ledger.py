"""Tests for the persistent run ledger (`repro.obs.ledger`).

Covers the acceptance criteria directly: `diff_entries` flags an
injected counter regression exactly and a timing regression
noise-awarely; `history_report` feeds `history --check` only the latest
pair's hard regressions.
"""

import json
import warnings

import pytest

from repro.datagen import standard_dataset
from repro.obs import costmodel
from repro.obs.ledger import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    build_entry,
    config_fingerprint,
    dataset_digest,
    diff_entries,
    history_report,
    phase_seconds,
    render_diff_markdown,
    render_history_markdown,
)
from repro.perf.compare import Tolerance

ENV = {"python": "3.x", "machine": "test"}
OTHER_ENV = {"python": "3.y", "machine": "other"}


def entry(
    *,
    run_id,
    wall_s=1.0,
    patterns=10,
    counters=None,
    environment=ENV,
    min_sup=0.3,
    cost_snapshot=None,
    phases=None,
    **kwargs,
):
    return build_entry(
        dataset_digest="d" * 12,
        miner="ptpminer",
        min_sup=min_sup,
        mode="tp",
        workers=1,
        environment=environment,
        wall_s=wall_s,
        patterns=patterns,
        counters=counters or {"nodes_expanded": 41, "states_created": 7},
        phases=phases,
        cost_snapshot=cost_snapshot,
        run_id=run_id,
        timestamp="2026-08-08T00:00:00+00:00",
        **kwargs,
    )


def cost_snapshot(states=3):
    collector = costmodel.CostCollector()
    collector.record_node(1, 2)
    collector.record_frequent(1)
    collector.record_root("e0+", 0.1, {}, {"states_created": states})
    return collector.snapshot()


class TestFingerprints:
    def test_dataset_digest_is_content_based(self):
        db = standard_dataset("tiny")
        again = standard_dataset("tiny")
        other = standard_dataset("tiny", num_sequences=5)
        assert dataset_digest(db) == dataset_digest(again)
        assert dataset_digest(db) != dataset_digest(other)
        assert len(dataset_digest(db)) == 12

    def test_config_fingerprint_key_order_is_irrelevant(self):
        base = dict(
            dataset_digest="abc", miner="ptpminer", min_sup=0.3, mode="tp"
        )
        a = config_fingerprint(**base, extra={"x": 1, "y": 2})
        b = config_fingerprint(**base, extra={"y": 2, "x": 1})
        assert a == b

    def test_config_fingerprint_sensitive_to_each_axis(self):
        base = dict(
            dataset_digest="abc", miner="ptpminer", min_sup=0.3, mode="tp"
        )
        root = config_fingerprint(**base)
        assert config_fingerprint(**{**base, "min_sup": 0.2}) != root
        assert config_fingerprint(**{**base, "mode": "htp"}) != root
        assert config_fingerprint(**base, workers=2) != root

    def test_phase_seconds_parses_counter_keys(self):
        snapshot = {
            "counters": {
                "phase_seconds[phase=mine]": 1.5,
                "phase_seconds[phase=load]": 0.25,
                "search.nodes_expanded": 12,
            }
        }
        assert phase_seconds(snapshot) == {"mine": 1.5, "load": 0.25}


class TestBuildEntry:
    def test_shape_and_defaults(self):
        made = entry(run_id="r1", phases={"mine": 1.0})
        assert made["schema"] == LEDGER_SCHEMA_VERSION
        assert made["kind"] == "repro-run"
        assert made["fingerprint"] == config_fingerprint(
            dataset_digest="d" * 12,
            miner="ptpminer",
            min_sup=0.3,
            mode="tp",
            workers=1,
        )
        assert made["counters"] == {"nodes_expanded": 41, "states_created": 7}
        assert made["phases"] == {"mine": 1.0}
        assert "cost" not in made

    def test_cost_snapshot_stored_as_digest_plus_top_roots(self):
        made = entry(run_id="r1", cost_snapshot=cost_snapshot())
        assert made["cost"]["digest"] == costmodel.profile_digest(
            cost_snapshot()
        )
        assert made["cost"]["top_roots"][0]["root"] == "e0+"

    def test_generated_run_ids_are_distinct_per_content(self):
        a = build_entry(
            dataset_digest="a" * 12,
            miner="ptpminer",
            min_sup=0.3,
            mode="tp",
            environment=ENV,
            wall_s=1.0,
            patterns=1,
            counters={},
            timestamp="2026-08-08T00:00:00+00:00",
        )
        b = build_entry(
            dataset_digest="b" * 12,
            miner="ptpminer",
            min_sup=0.3,
            mode="tp",
            environment=ENV,
            wall_s=1.0,
            patterns=1,
            counters={},
            timestamp="2026-08-08T00:00:00+00:00",
        )
        assert a["run_id"] != b["run_id"]
        assert ":" not in a["run_id"]


class TestRunLedger:
    def test_append_then_read_round_trips(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger")
        stored = ledger.append(entry(run_id="r1"))
        ledger.append(entry(run_id="r2"))
        assert ledger.path.name == LEDGER_FILENAME
        got = ledger.entries()
        assert [e["run_id"] for e in got] == ["r1", "r2"]
        assert got[0] == stored

    def test_append_validates_entries(self, tmp_path):
        ledger = RunLedger(tmp_path)
        bad = entry(run_id="r1")
        bad["schema"] = 99
        with pytest.raises(ValueError):
            ledger.append(bad)
        with pytest.raises(ValueError):
            ledger.append({**entry(run_id="r1"), "kind": "other"})
        with pytest.raises(ValueError):
            ledger.append({**entry(run_id="r1"), "run_id": ""})

    def test_entries_tolerates_garbage_lines(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(entry(run_id="r1"))
        with_garbage = ledger.path.read_text() + "{not json\n" + (
            json.dumps({"schema": 99, "kind": "repro-run"}) + "\n"
        )
        ledger.path.write_text(with_garbage)
        with pytest.warns(RuntimeWarning, match="skipped 2"):
            got = ledger.entries()
        assert [e["run_id"] for e in got] == ["r1"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunLedger(tmp_path / "nowhere").entries() == []

    def test_find_by_exact_id_prefix_and_errors(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(entry(run_id="20260808-aaaa"))
        ledger.append(entry(run_id="20260808-bbbb"))
        assert ledger.find("20260808-aaaa")["run_id"] == "20260808-aaaa"
        assert ledger.find("20260808-b")["run_id"] == "20260808-bbbb"
        with pytest.raises(ValueError, match="ambiguous"):
            ledger.find("20260808")
        with pytest.raises(ValueError, match="no run matching"):
            ledger.find("zzz")


class TestHistoryReport:
    def test_groups_by_fingerprint_in_append_order(self):
        entries = [
            entry(run_id="a1"),
            entry(run_id="b1", min_sup=0.2),
            entry(run_id="a2"),
        ]
        report = history_report(entries)
        by_fp = {
            g["fingerprint"]: [r["run_id"] for r in g["runs"]]
            for g in report["groups"]
        }
        assert sorted(by_fp.values()) == [["a1", "a2"], ["b1"]]
        assert report["regressions"] == []

    def test_counter_drift_is_flagged_exactly(self):
        entries = [
            entry(run_id="r1"),
            entry(
                run_id="r2",
                counters={"nodes_expanded": 48, "states_created": 7},
            ),
        ]
        report = history_report(entries)
        (finding,) = report["regressions"]
        assert finding["metric"] == "counters.nodes_expanded"
        assert (finding["base"], finding["fresh"]) == (41, 48)

    def test_wall_jitter_within_tolerance_is_quiet(self):
        entries = [
            entry(run_id="r1", wall_s=1.0),
            entry(run_id="r2", wall_s=1.2),
        ]
        report = history_report(entries)
        assert report["regressions"] == []
        assert report["warnings"] == []

    def test_wall_regression_is_noise_aware(self):
        entries = [
            entry(run_id="r1", wall_s=1.0),
            entry(run_id="r2", wall_s=11.0),
        ]
        (finding,) = history_report(entries)["regressions"]
        assert finding["metric"] == "wall_s"

    def test_env_mismatch_downgrades_timing_to_warning(self):
        entries = [
            entry(run_id="r1", wall_s=1.0),
            entry(run_id="r2", wall_s=11.0, environment=OTHER_ENV),
        ]
        report = history_report(entries)
        assert report["regressions"] == []
        (warning,) = report["warnings"]
        assert warning["metric"] == "wall_s"
        assert warning["severity"] == "warning"

    def test_cost_digest_shift_is_flagged(self):
        entries = [
            entry(run_id="r1", cost_snapshot=cost_snapshot(states=3)),
            entry(run_id="r2", cost_snapshot=cost_snapshot(states=9)),
        ]
        metrics = {
            f["metric"] for f in history_report(entries)["regressions"]
        }
        assert "cost.digest" in metrics

    def test_check_gates_on_latest_pair_only(self):
        # r2 regressed but r3 recovered: the latest pair is clean, so the
        # old regression is demoted to a warning and --check would pass.
        entries = [
            entry(run_id="r1", patterns=10),
            entry(run_id="r2", patterns=8),
            entry(run_id="r3", patterns=10),
        ]
        report = history_report(entries)
        reg_runs = {f["run_id"] for f in report["regressions"]}
        warn_runs = {f["run_id"] for f in report["warnings"]}
        assert "r2" not in reg_runs
        assert "r2" in warn_runs
        # r3 flips patterns back; that *is* the latest pair.
        assert reg_runs == {"r3"}

    def test_custom_tolerance_is_respected(self):
        entries = [
            entry(run_id="r1", wall_s=1.0),
            entry(run_id="r2", wall_s=1.4),
        ]
        loose = history_report(entries)
        strict = history_report(
            entries, tolerance=Tolerance(time_rtol=0.1, time_abs_s=0.05)
        )
        assert loose["regressions"] == []
        assert any(
            f["metric"] == "wall_s" for f in strict["regressions"]
        )

    def test_markdown_renders_groups_and_summary(self):
        entries = [entry(run_id="r1"), entry(run_id="r2", patterns=9)]
        report = history_report(entries)
        text = render_history_markdown(report)
        assert "# Run history" in text
        assert "`r1`" in text and "`r2`" in text
        assert "1 regression(s)" in text

    def test_markdown_empty_ledger(self):
        text = render_history_markdown(history_report([]))
        assert "_Ledger is empty._" in text


class TestDiffEntries:
    def test_injected_counter_regression_is_exact(self):
        a = entry(run_id="a")
        b = entry(
            run_id="b", counters={"nodes_expanded": 48, "states_created": 7}
        )
        diff = diff_entries(a, b)
        (row,) = diff["counters"]
        assert row == {
            "counter": "nodes_expanded",
            "a": 41,
            "b": 48,
            "delta": 7,
        }
        assert diff["has_regressions"] is True

    def test_timing_regression_is_noise_aware(self):
        a = entry(run_id="a", wall_s=1.0)
        ok = diff_entries(a, entry(run_id="b", wall_s=1.2))
        bad = diff_entries(a, entry(run_id="c", wall_s=11.0))
        assert ok["wall_s"]["verdict"] == "ok"
        assert ok["has_regressions"] is False
        assert bad["wall_s"]["verdict"] == "regression"
        assert bad["has_regressions"] is True

    def test_env_mismatch_downgrades_wall_verdict(self):
        a = entry(run_id="a", wall_s=1.0)
        b = entry(run_id="b", wall_s=11.0, environment=OTHER_ENV)
        diff = diff_entries(a, b)
        assert diff["env_match"] is False
        assert diff["wall_s"]["verdict"] == "warning"
        assert diff["has_regressions"] is False

    def test_phase_rows_get_verdicts(self):
        a = entry(run_id="a", phases={"mine": 1.0, "load": 0.1})
        b = entry(run_id="b", phases={"mine": 11.0, "load": 0.1})
        diff = diff_entries(a, b)
        verdicts = {row["phase"]: row["verdict"] for row in diff["phases"]}
        assert verdicts == {"mine": "regression", "load": "ok"}

    def test_top_roots_joined_by_name(self):
        a = entry(run_id="a", cost_snapshot=cost_snapshot(states=3))
        b = entry(run_id="b", cost_snapshot=cost_snapshot(states=9))
        diff = diff_entries(a, b)
        assert diff["cost"]["changed"] is True
        (row,) = diff["cost"]["top_roots"]
        assert row["root"] == "e0+"
        assert (row["states_a"], row["states_b"]) == (3, 9)

    def test_markdown_mentions_verdict_and_caveats(self):
        a = entry(run_id="a", cost_snapshot=cost_snapshot(states=3))
        b = entry(
            run_id="b",
            min_sup=0.2,
            environment=OTHER_ENV,
            cost_snapshot=cost_snapshot(states=9),
        )
        text = render_diff_markdown(diff_entries(a, b))
        assert "Config fingerprints differ" in text
        assert "Environment fingerprints differ" in text
        assert "Heaviest-root shifts" in text

    def test_markdown_clean_diff_says_no_regressions(self):
        a = entry(run_id="a")
        b = entry(run_id="b")
        text = render_diff_markdown(diff_entries(a, b))
        assert "Counters identical." in text
        assert "**No regressions.**" in text


class TestPatternsDigestField:
    def test_build_entry_stores_digest_and_provenance_path(self):
        made = entry(
            run_id="r1",
            patterns_digest="ab" * 8,
            provenance_path="/tmp/prov.json",
        )
        assert made["patterns_digest"] == "ab" * 8
        assert made["provenance_path"] == "/tmp/prov.json"

    def test_digest_participates_in_derived_run_ids(self):
        base = dict(
            dataset_digest="a" * 12,
            miner="ptpminer",
            min_sup=0.3,
            mode="tp",
            environment=ENV,
            wall_s=1.0,
            patterns=1,
            counters={},
            timestamp="2026-08-08T00:00:00+00:00",
        )
        a = build_entry(**base, patterns_digest="1" * 16)
        b = build_entry(**base, patterns_digest="2" * 16)
        assert a["run_id"] != b["run_id"]

    def test_digest_drift_is_a_hard_regression(self):
        entries = [
            entry(run_id="r1", patterns_digest="1" * 16),
            entry(run_id="r2", patterns_digest="2" * 16),
        ]
        (finding,) = history_report(entries)["regressions"]
        assert finding["metric"] == "patterns_digest"
        assert "result set drifted" in finding["detail"]

    def test_matching_or_absent_digests_stay_quiet(self):
        same = [
            entry(run_id="r1", patterns_digest="1" * 16),
            entry(run_id="r2", patterns_digest="1" * 16),
        ]
        assert history_report(same)["regressions"] == []
        # Entries predating the field never flag against new ones.
        mixed = [
            entry(run_id="r1"),
            entry(run_id="r2", patterns_digest="1" * 16),
        ]
        assert history_report(mixed)["regressions"] == []


class TestHistoryLimit:
    def test_limit_truncates_each_group_after_flagging(self):
        entries = [
            entry(run_id="r1"),
            entry(
                run_id="r2",
                counters={"nodes_expanded": 48, "states_created": 7},
            ),
            entry(
                run_id="r3",
                counters={"nodes_expanded": 48, "states_created": 7},
            ),
        ]
        report = history_report(entries, limit=1)
        (group,) = report["groups"]
        assert [r["run_id"] for r in group["runs"]] == ["r3"]
        # The r1->r2 drift predates the displayed window but --check
        # semantics see every pair: r2->r3 is clean, so no regression,
        # yet the older flag survives as a warning.
        assert report["regressions"] == []
        assert report["warnings"]

    def test_limit_zero_and_none(self):
        entries = [entry(run_id="r1"), entry(run_id="r2")]
        assert history_report(entries, limit=0)["groups"][0]["runs"] == []
        assert len(
            history_report(entries, limit=None)["groups"][0]["runs"]
        ) == 2


class TestSchemaV2:
    """The v1 -> v2 migration: tolerant back-read, new optional fields."""

    PLAN = {
        "workers": 2,
        "predictor": {"source": "static", "history_runs": 0,
                      "scale": None},
        "predicted_imbalance": {"predicted": 1.1, "roundrobin": 1.9},
    }
    CALIBRATION = {
        "schema": 1, "kind": "repro-calibration",
        "strategy": "predicted", "predictor": "static",
        "actual_metric": "wall_s", "roots_matched": 3,
        "mape": 0.25, "rank_corr": 1.0,
        "worst_miss": {"root": "e0+", "predicted_share": 0.5,
                       "actual_share": 0.4},
    }

    def v1_line(self, run_id):
        made = entry(run_id=run_id, cost_snapshot=cost_snapshot())
        made["schema"] = 1
        # Pre-bump entries stored only digest + top_roots.
        del made["cost"]["roots"]
        return json.dumps(made, sort_keys=True, separators=(",", ":"))

    def test_cost_block_carries_full_per_root_walls(self):
        made = entry(run_id="r1", cost_snapshot=cost_snapshot())
        assert made["cost"]["roots"] == {"e0+": pytest.approx(0.1)}

    def test_plan_and_calibration_fields_round_trip(self, tmp_path):
        made = entry(
            run_id="r1", plan=self.PLAN, calibration=self.CALIBRATION
        )
        ledger = RunLedger(tmp_path)
        ledger.append(made)
        (got,) = ledger.entries()
        assert got["plan"] == self.PLAN
        assert got["calibration"]["mape"] == 0.25
        plain = entry(run_id="r2")
        assert "plan" not in plain and "calibration" not in plain

    def test_v1_lines_read_back_without_warnings(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(entry(run_id="r2", cost_snapshot=cost_snapshot()))
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write(self.v1_line("r1-old") + "\n")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            got = ledger.entries()
        assert [e["run_id"] for e in got] == ["r2", "r1-old"]
        assert [e["schema"] for e in got] == [LEDGER_SCHEMA_VERSION, 1]

    def test_history_trends_calibration_mape(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(
            entry(run_id="r1", calibration=self.CALIBRATION)
        )
        with ledger.path.open("a", encoding="utf-8") as handle:
            handle.write(self.v1_line("r0-old") + "\n")
        report = history_report(ledger.entries())
        rows = {
            row["run_id"]: row
            for group in report["groups"]
            for row in group["runs"]
        }
        assert rows["r1"]["cal_mape"] == 0.25
        assert rows["r1"]["shard_strategy"] == "predicted"
        assert rows["r0-old"]["cal_mape"] is None
        text = render_history_markdown(report)
        assert "plan MAPE" in text
        assert "0.250" in text
