"""Tests for the performance-baseline subsystem (``repro.perf``)."""

import copy
import json
from pathlib import Path

import pytest

from repro.perf.baseline import (
    BASELINE_FILENAME,
    SCHEMA_VERSION,
    environment_fingerprint,
    load_report,
    run_matrix,
    write_report,
)
from repro.perf.cli import main
from repro.perf.compare import (
    Tolerance,
    compare_reports,
    render_markdown,
)
from repro.perf.workloads import MATRICES, WorkloadCell, matrix_cells

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def tiny_report():
    """One measured tiny-matrix run shared by the read-only assertions."""
    return run_matrix("tiny")


class TestWorkloads:
    def test_matrices_are_well_formed(self):
        for name, cells in MATRICES.items():
            ids = [cell.cell_id for cell in cells]
            assert len(ids) == len(set(ids)), f"duplicate cell in {name!r}"
            assert cells, f"matrix {name!r} is empty"

    def test_quick_matrix_covers_paper_axes(self):
        cells = matrix_cells("quick")
        miners = {cell.miner for cell in cells}
        datasets = {cell.dataset for cell in cells}
        # P-TPMiner plus all four baselines, sparse and dense workloads.
        assert miners == {
            "ptpminer", "tprefixspan", "hdfs", "ieminer", "bruteforce"
        }
        assert {"sparse", "dense"} <= datasets
        sparse_sups = {
            cell.min_sup for cell in cells if cell.dataset == "sparse"
        }
        assert len(sparse_sups) >= 2

    def test_quick_matrix_reuses_ci_snapshot_workload(self):
        # The CI metrics-snapshot job mines sparse@120 at min_sup 0.10;
        # the baseline matrix keeps one cell per miner on that workload
        # so the two CI artifacts describe the same run shape.
        cells = matrix_cells("quick")
        assert any(
            (cell.dataset, cell.num_sequences, cell.min_sup)
            == ("sparse", 120, 0.1)
            for cell in cells
        )

    def test_unknown_matrix_and_miner_rejected(self):
        with pytest.raises(ValueError, match="unknown workload matrix"):
            matrix_cells("nope")
        with pytest.raises(ValueError, match="unknown miner"):
            WorkloadCell("tiny", 10, 0.5, "nope")

    def test_cell_id_stable(self):
        cell = WorkloadCell("sparse", 120, 0.1, "ptpminer")
        assert cell.cell_id == "sparse120/sup0.1/ptpminer"


class TestBaselineRunner:
    def test_report_shape(self, tiny_report):
        assert tiny_report["schema"] == SCHEMA_VERSION
        assert tiny_report["kind"] == "repro-bench"
        assert tiny_report["matrix"] == "tiny"
        assert tiny_report["environment"] == environment_fingerprint()
        cells = tiny_report["cells"]
        assert [row["cell"] for row in cells] == [
            cell.cell_id for cell in matrix_cells("tiny")
        ]
        for row in cells:
            assert row["wall_s"] >= 0
            assert row["peak_mib"] is not None and row["peak_mib"] > 0
            assert row["patterns"] > 0
            assert row["counters"]

    def test_counters_deterministic_across_runs(self, tiny_report):
        again = run_matrix("tiny")
        for first, second in zip(tiny_report["cells"], again["cells"]):
            assert first["counters"] == second["counters"]
            assert first["patterns"] == second["patterns"]

    def test_report_round_trip(self, tiny_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(tiny_report, path)
        assert load_report(path) == tiny_report

    def test_load_rejects_bad_files(self, tmp_path):
        with pytest.raises(ValueError, match="no benchmark report"):
            load_report(tmp_path / "missing.json")
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{nope")
        with pytest.raises(ValueError, match="unparseable"):
            load_report(garbled)
        wrong_kind = tmp_path / "kind.json"
        wrong_kind.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a repro-bench"):
            load_report(wrong_kind)
        wrong_schema = tmp_path / "schema.json"
        wrong_schema.write_text(
            json.dumps({"kind": "repro-bench", "schema": 999})
        )
        with pytest.raises(ValueError, match="schema"):
            load_report(wrong_schema)


class TestCompare:
    def test_identical_reports_ok(self, tiny_report):
        result = compare_reports(tiny_report, tiny_report)
        assert result.ok
        assert result.cells_compared == len(tiny_report["cells"])
        assert not result.warnings and not result.improvements

    def test_counter_drift_is_regression(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        name = sorted(fresh["cells"][0]["counters"])[0]
        fresh["cells"][0]["counters"][name] += 1
        result = compare_reports(tiny_report, fresh)
        assert not result.ok
        assert any(
            f.metric == f"counters.{name}" for f in result.regressions
        )

    def test_pattern_drift_is_regression(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        fresh["cells"][0]["patterns"] += 1
        assert not compare_reports(tiny_report, fresh).ok

    def test_time_within_tolerance_ok(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        # Noise-sized wiggle: below the absolute floor, never a finding.
        fresh["cells"][0]["wall_s"] = tiny_report["cells"][0]["wall_s"] + 0.01
        assert compare_reports(tiny_report, fresh).ok

    def test_large_slowdown_is_regression(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        fresh["cells"][0]["wall_s"] = (
            tiny_report["cells"][0]["wall_s"] * 10 + 1.0
        )
        result = compare_reports(tiny_report, fresh)
        assert not result.ok
        assert result.regressions[0].metric == "wall_s"

    def test_large_speedup_is_improvement(self, tiny_report):
        base = copy.deepcopy(tiny_report)
        base["cells"][0]["wall_s"] = 10.0
        fresh = copy.deepcopy(tiny_report)
        fresh["cells"][0]["wall_s"] = 0.1
        result = compare_reports(base, fresh)
        assert result.ok
        assert [f.metric for f in result.improvements] == ["wall_s"]

    def test_env_mismatch_downgrades_timing_to_warning(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        fresh["environment"] = {**fresh["environment"], "machine": "other"}
        fresh["cells"][0]["wall_s"] = (
            tiny_report["cells"][0]["wall_s"] * 10 + 1.0
        )
        result = compare_reports(tiny_report, fresh)
        assert result.ok and not result.env_match
        assert [f.metric for f in result.warnings] == ["wall_s"]
        # strict_env restores the hard failure.
        strict = compare_reports(tiny_report, fresh, strict_env=True)
        assert not strict.ok

    def test_env_mismatch_keeps_counters_fatal(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        fresh["environment"] = {**fresh["environment"], "machine": "other"}
        name = sorted(fresh["cells"][0]["counters"])[0]
        fresh["cells"][0]["counters"][name] += 1
        assert not compare_reports(tiny_report, fresh).ok

    def test_missing_and_extra_cells_fail(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        dropped = fresh["cells"].pop()
        result = compare_reports(tiny_report, fresh)
        assert not result.ok
        assert any(
            f.cell == dropped["cell"] and f.metric == "presence"
            for f in result.regressions
        )
        assert not compare_reports(fresh, tiny_report).ok

    def test_custom_tolerance(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        fresh["cells"][0]["wall_s"] = tiny_report["cells"][0]["wall_s"] + 0.02
        tight = Tolerance(time_rtol=0.0, time_abs_s=0.001)
        assert not compare_reports(
            tiny_report, fresh, tolerance=tight
        ).ok

    def test_markdown_report(self, tiny_report):
        fresh = copy.deepcopy(tiny_report)
        fresh["cells"][0]["wall_s"] = 99.0
        result = compare_reports(tiny_report, fresh)
        text = render_markdown(result)
        assert "REGRESSION" in text
        assert "wall_s" in text
        assert "| cell | metric |" in text
        clean = render_markdown(compare_reports(tiny_report, tiny_report))
        assert "**OK**" in clean


class TestCli:
    def test_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main(
            ["run", "--matrix", "tiny", "--quiet", "--out", str(out)]
        ) == 0
        report = load_report(out)
        assert report["matrix"] == "tiny"
        capsys.readouterr()

    def test_compare_clean_exits_zero(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        assert main(
            ["run", "--matrix", "tiny", "--quiet", "--out", str(base)]
        ) == 0
        assert main(
            ["compare", "--matrix", "tiny", "--quiet",
             "--baseline", str(base)]
        ) == 0
        assert "**OK**" in capsys.readouterr().out

    def test_compare_injected_regression_exits_nonzero(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        assert main(
            ["run", "--matrix", "tiny", "--quiet", "--out", str(base)]
        ) == 0
        bad = json.loads(base.read_text())
        name = sorted(bad["cells"][0]["counters"])[0]
        bad["cells"][0]["counters"][name] += 1
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(bad))
        report_out = tmp_path / "report.md"
        assert main(
            ["compare", "--baseline", str(base), "--fresh", str(fresh),
             "--report-out", str(report_out)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert "REGRESSION" in report_out.read_text()

    def test_compare_missing_baseline_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        fresh = tmp_path / "fresh.json"
        fresh.write_text(
            json.dumps({"kind": "repro-bench", "schema": 1, "cells": []})
        )
        assert main(
            ["compare", "--baseline", str(missing), "--fresh", str(fresh)]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_update_baseline_creates_then_diffs(self, tmp_path, capsys):
        baseline = tmp_path / "bench.json"
        assert main(
            ["update-baseline", "--matrix", "tiny", "--quiet",
             "--baseline", str(baseline)]
        ) == 0
        first = capsys.readouterr()
        assert baseline.exists()
        assert "Perf comparison" not in first.out  # no old baseline yet
        assert main(
            ["update-baseline", "--matrix", "tiny", "--quiet",
             "--baseline", str(baseline)]
        ) == 0
        assert "Perf comparison" in capsys.readouterr().out

    def test_usage_error_exits_two(self, capsys):
        assert main([]) == 2
        assert main(["frobnicate"]) == 2
        capsys.readouterr()


class TestCommittedBaseline:
    """The repository-root ``BENCH_PTPMINER.json`` stays loadable and
    structurally in sync with the quick matrix it claims to describe."""

    def test_committed_baseline_matches_quick_matrix(self):
        baseline = load_report(REPO_ROOT / BASELINE_FILENAME)
        assert baseline["matrix"] == "quick"
        committed = [row["cell"] for row in baseline["cells"]]
        assert committed == [
            cell.cell_id for cell in matrix_cells("quick")
        ]
        for row in baseline["cells"]:
            assert row["counters"], row["cell"]
            assert row["patterns"] >= 0


class TestParallelCells:
    def test_workers_cell_id_gets_suffix_only_when_parallel(self):
        serial = WorkloadCell("sparse", 120, 0.2, "ptpminer")
        parallel = WorkloadCell("sparse", 120, 0.2, "ptpminer", workers=2)
        assert serial.cell_id == "sparse120/sup0.2/ptpminer"
        assert parallel.cell_id == "sparse120/sup0.2/ptpminer/w2"

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            WorkloadCell("sparse", 120, 0.2, "ptpminer", workers=0)

    def test_quick_matrix_has_a_sharded_cell(self):
        ids = [cell.cell_id for cell in matrix_cells("quick")]
        assert "sparse120/sup0.2/ptpminer/w2" in ids

    def test_sharded_cell_counters_equal_serial_cell(self):
        """The exact counter-agreement gate the w2 cell exists for."""
        from repro.perf.baseline import run_cell
        from repro.perf.workloads import build_database

        serial = WorkloadCell("tiny", 60, 0.4, "ptpminer")
        parallel = WorkloadCell("tiny", 60, 0.4, "ptpminer", workers=2)
        db = build_database(serial)
        serial_row = run_cell(serial, db)
        parallel_row = run_cell(parallel, db)
        assert parallel_row["counters"] == serial_row["counters"]
        assert parallel_row["patterns"] == serial_row["patterns"]
        assert parallel_row["workers"] == 2
        assert parallel_row["cell"].endswith("/w2")


class TestDeprecatedFactories:
    def test_lookup_warns_but_still_builds(self):
        from repro.perf.workloads import MINER_FACTORIES

        with pytest.warns(DeprecationWarning, match="MINER_FACTORIES"):
            factory = MINER_FACTORIES["ptpminer"]
        miner = factory(0.4)
        assert miner.config.min_sup == 0.4

    def test_mapping_surface_matches_registry(self):
        from repro import miners
        from repro.perf.workloads import MINER_FACTORIES

        assert set(MINER_FACTORIES) == set(miners.available())
        assert len(MINER_FACTORIES) == len(miners.available())

    def test_unknown_name_raises_canonical_error(self):
        from repro.perf.workloads import MINER_FACTORIES

        with pytest.raises(ValueError, match="unknown miner"):
            MINER_FACTORIES["nope"]


class TestLedgerGlue:
    def test_append_report_to_ledger_one_entry_per_cell(
        self, tiny_report, tmp_path
    ):
        from repro.obs.ledger import RunLedger
        from repro.perf.baseline import append_report_to_ledger

        entries = append_report_to_ledger(tiny_report, tmp_path)
        assert len(entries) == len(tiny_report["cells"])
        stored = RunLedger(tmp_path).entries()
        assert [e["run_id"] for e in stored] == [
            e["run_id"] for e in entries
        ]
        for row, entry in zip(tiny_report["cells"], stored):
            assert entry["config"]["cell"] == row["cell"]
            assert entry["config"]["matrix"] == tiny_report["matrix"]
            assert entry["counters"] == row["counters"]
            assert entry["patterns"] == row["patterns"]
            assert entry["environment"] == tiny_report["environment"]
            # Dataset digests come from regenerated cell databases, not
            # a placeholder.
            assert not entry["config"]["dataset_digest"].startswith("cell:")

    def test_cell_ids_fold_into_distinct_fingerprints(
        self, tiny_report, tmp_path
    ):
        from repro.perf.baseline import append_report_to_ledger

        entries = append_report_to_ledger(tiny_report, tmp_path)
        fingerprints = [e["fingerprint"] for e in entries]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_repeated_appends_trend_under_one_fingerprint(
        self, tiny_report, tmp_path
    ):
        from repro.obs.ledger import RunLedger, history_report
        from repro.perf.baseline import append_report_to_ledger

        append_report_to_ledger(tiny_report, tmp_path)
        append_report_to_ledger(tiny_report, tmp_path)
        report = history_report(RunLedger(tmp_path).entries())
        assert all(
            len(group["runs"]) == 2 for group in report["groups"]
        )
        # Identical runs: exact comparisons are all clean.
        assert report["regressions"] == []

    def test_unknown_cell_gets_placeholder_digest(
        self, tiny_report, tmp_path
    ):
        import copy as _copy

        from repro.perf.baseline import append_report_to_ledger

        report = _copy.deepcopy(tiny_report)
        report["cells"][0]["cell"] = "retired/cell"
        entries = append_report_to_ledger(report, tmp_path)
        assert entries[0]["config"]["dataset_digest"] == "cell:retired/cell"

    def test_cli_run_appends_to_ledger(self, tmp_path, capsys):
        from repro.obs.ledger import RunLedger

        ledger_dir = tmp_path / "ledger"
        assert main(
            ["run", "--matrix", "tiny", "--quiet",
             "--out", str(tmp_path / "bench.json"),
             "--ledger-dir", str(ledger_dir)]
        ) == 0
        err = capsys.readouterr().err
        assert "ledger: appended" in err
        stored = RunLedger(ledger_dir).entries()
        assert len(stored) == len(matrix_cells("tiny"))

    def test_cli_compare_appends_fresh_run_to_ledger(
        self, tmp_path, capsys
    ):
        from repro.obs.ledger import RunLedger

        base = tmp_path / "base.json"
        ledger_dir = tmp_path / "ledger"
        assert main(
            ["run", "--matrix", "tiny", "--quiet", "--out", str(base)]
        ) == 0
        assert main(
            ["compare", "--matrix", "tiny", "--quiet",
             "--baseline", str(base), "--ledger-dir", str(ledger_dir)]
        ) == 0
        capsys.readouterr()
        assert RunLedger(ledger_dir).entries()
