"""Cross-cutting property-based tests (hypothesis).

These tie the whole stack together: databases are generated from raw
hypothesis strategies (not the library's own generators), and the
invariants span representation, mining, and interpretation layers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.tprefixspan import TPrefixSpanMiner
from repro.core.ptpminer import PTPMiner
from repro.core.rules import generate_rules
from repro.model.database import ESequenceDatabase
from repro.model.event import IntervalEvent
from repro.model.pattern import TemporalPattern
from repro.model.sequence import ESequence

event_st = st.builds(
    lambda s, d, label: IntervalEvent(s, s + d, label),
    st.integers(0, 8),
    st.integers(0, 4),
    st.sampled_from("AB"),
)
sequence_st = st.lists(event_st, min_size=1, max_size=4).map(ESequence)
db_st = st.lists(sequence_st, min_size=2, max_size=8).map(
    ESequenceDatabase
)
interval_db_st = st.lists(
    st.lists(
        st.builds(
            lambda s, d, label: IntervalEvent(s, s + d, label),
            st.integers(0, 8),
            st.integers(1, 4),
            st.sampled_from("AB"),
        ),
        min_size=1,
        max_size=4,
    ).map(ESequence),
    min_size=2,
    max_size=8,
).map(ESequenceDatabase)


@settings(max_examples=30, deadline=None)
@given(db=interval_db_st, min_sup=st.sampled_from([0.25, 0.5]))
def test_miner_agreement_on_raw_databases(db, min_sup):
    """P-TPMiner equals the validation baseline on arbitrary input."""
    reference = PTPMiner(min_sup).mine(db).as_dict()
    assert TPrefixSpanMiner(min_sup).mine(db).as_dict() == reference


@settings(max_examples=30, deadline=None)
@given(db=db_st)
def test_support_is_anti_monotone_over_containment(db):
    """If P is contained in Q then sup(P) >= sup(Q), across the whole
    mined set."""
    result = PTPMiner(min_sup=0.25, mode="htp").mine(db)
    items = result.patterns
    for i, small in enumerate(items):
        for big in items[i:]:
            if small.pattern.num_tokens >= big.pattern.num_tokens:
                continue
            if small.pattern.contained_in(big.pattern):
                assert small.support >= big.support


@settings(max_examples=30, deadline=None)
@given(db=db_st)
def test_mined_patterns_round_trip_through_text(db):
    result = PTPMiner(min_sup=0.25, mode="htp").mine(db)
    for item in result.patterns:
        assert TemporalPattern.parse(str(item.pattern)) == item.pattern


@settings(max_examples=30, deadline=None)
@given(db=interval_db_st)
def test_mined_supports_match_oracle_counts(db):
    result = PTPMiner(min_sup=0.25).mine(db)
    for item in result.patterns:
        assert item.support == item.pattern.support_in(db)


@settings(max_examples=25, deadline=None)
@given(db=interval_db_st)
def test_allen_description_is_complete(db):
    """Every mined pattern describes all C(size, 2) event pairs."""
    result = PTPMiner(min_sup=0.25).mine(db)
    for item in result.patterns:
        size = item.pattern.size
        assert len(item.pattern.allen_description()) == (
            size * (size - 1) // 2
        )


@settings(max_examples=25, deadline=None)
@given(db=interval_db_st)
def test_rules_confidence_bounds(db):
    result = PTPMiner(min_sup=0.25).mine(db)
    for rule in generate_rules(result, min_confidence=0.01):
        assert 0 < rule.confidence <= 1.0


@settings(max_examples=25, deadline=None)
@given(db=interval_db_st, delta=st.integers(1, 50))
def test_mining_invariant_under_time_shift(db, delta):
    """Patterns are arrangements: shifting all sequences in time changes
    nothing."""
    shifted = ESequenceDatabase([seq.shifted(delta) for seq in db])
    assert PTPMiner(0.25).mine(db).as_dict() == PTPMiner(0.25).mine(
        shifted
    ).as_dict()


@settings(max_examples=20, deadline=None)
@given(db=interval_db_st, factor=st.integers(2, 5))
def test_mining_invariant_under_time_scaling(db, factor):
    scaled = ESequenceDatabase([seq.scaled(factor) for seq in db])
    assert PTPMiner(0.25).mine(db).as_dict() == PTPMiner(0.25).mine(
        scaled
    ).as_dict()


@settings(max_examples=20, deadline=None)
@given(db=interval_db_st)
def test_sequence_order_does_not_matter(db):
    """Mining is a function of the multiset of sequences."""
    reversed_db = ESequenceDatabase(list(reversed(db.sequences)))
    assert PTPMiner(0.25).mine(db).as_dict() == PTPMiner(0.25).mine(
        reversed_db
    ).as_dict()


@settings(max_examples=20, deadline=None)
@given(
    db=interval_db_st,
    workers=st.sampled_from([2, 3, 4]),
    max_span=st.sampled_from([None, 6.0]),
)
def test_sharded_engine_equals_serial_tp(db, workers, max_span):
    """The engine's determinism guarantee, on arbitrary interval input:
    sorted patterns, supports, and counters all match the sequential
    miner for any worker count, with and without a span constraint."""
    from repro.core.config import MinerConfig
    from repro.engine import mine_sharded

    config = MinerConfig(min_sup=0.25, max_span=max_span)
    serial = PTPMiner.from_config(config).mine(db)
    sharded = mine_sharded(db, config, workers=workers, executor="serial")
    assert sharded.patterns == serial.patterns
    assert sharded.counters == serial.counters


@settings(max_examples=20, deadline=None)
@given(db=db_st, workers=st.sampled_from([2, 4]))
def test_sharded_engine_equals_serial_htp(db, workers):
    """Same guarantee in hybrid mode, where point events survive into
    the endpoint encoding."""
    from repro.core.config import MinerConfig
    from repro.engine import mine_sharded

    config = MinerConfig(min_sup=0.25, mode="htp")
    serial = PTPMiner.from_config(config).mine(db)
    sharded = mine_sharded(db, config, workers=workers, executor="serial")
    assert sharded.patterns == serial.patterns
    assert sharded.counters == serial.counters


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), workers=st.sampled_from([2, 3]))
def test_sharded_engine_on_randomized_synthetic_dbs(seed, workers):
    """Serial/sharded agreement on the library's own generator output
    (hybrid databases with point events, mined in htp mode)."""
    from repro.core.config import MinerConfig
    from repro.datagen.synthetic import SyntheticConfig, SyntheticGenerator
    from repro.engine import mine_sharded

    db = SyntheticGenerator(
        SyntheticConfig(
            num_sequences=12,
            avg_events=5,
            num_labels=4,
            point_fraction=0.3,
            seed=seed,
            name=f"prop-{seed}",
        )
    ).generate()
    config = MinerConfig(min_sup=0.25, mode="htp")
    serial = PTPMiner.from_config(config).mine(db)
    sharded = mine_sharded(db, config, workers=workers, executor="serial")
    assert sharded.patterns == serial.patterns
    assert sharded.counters == serial.counters


@settings(max_examples=15, deadline=None)
@given(
    db=interval_db_st,
    workers=st.sampled_from([1, 2, 3, 4]),
    min_sup=st.sampled_from([0.25, 0.5]),
)
def test_sharded_provenance_equals_serial(db, workers, min_sup):
    """Provenance snapshots are bit-for-bit serial == sharded on
    arbitrary databases: every pattern's support set / witnesses and
    every prune decision land identically for any worker count."""
    import json

    from repro.core.config import MinerConfig
    from repro.engine import mine_sharded
    from repro.obs import provenance as obs_provenance

    config = MinerConfig(min_sup=min_sup)
    with obs_provenance.use_collector() as serial_collector:
        PTPMiner.from_config(config).mine(db)
    with obs_provenance.use_collector() as sharded_collector:
        mine_sharded(db, config, workers=workers, executor="serial")
    assert json.dumps(
        sharded_collector.snapshot(), sort_keys=True
    ) == json.dumps(serial_collector.snapshot(), sort_keys=True)


@settings(max_examples=3, deadline=None)
@given(db=interval_db_st, workers=st.sampled_from([2, 3]))
def test_sharded_provenance_equals_serial_process_executor(db, workers):
    """Same guarantee across real process boundaries (snapshots are
    pickled home inside ShardResult and absorbed by the parent)."""
    import json

    from repro.core.config import MinerConfig
    from repro.engine import mine_sharded
    from repro.obs import provenance as obs_provenance

    config = MinerConfig(min_sup=0.25)
    with obs_provenance.use_collector() as serial_collector:
        PTPMiner.from_config(config).mine(db)
    with obs_provenance.use_collector() as sharded_collector:
        mine_sharded(db, config, workers=workers, executor="process")
    assert json.dumps(
        sharded_collector.snapshot(), sort_keys=True
    ) == json.dumps(serial_collector.snapshot(), sort_keys=True)
