"""Unit and property tests for the Allen interval algebra."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.event import IntervalEvent
from repro.temporal.allen import (
    ALL_RELATIONS,
    BASE_RELATIONS,
    AllenRelation,
    compose,
    relate,
    relate_general,
)


def iv(s, f):
    return IntervalEvent(s, f, "x")


CLASSIFICATION_CASES = [
    ((0, 2), (4, 6), AllenRelation.BEFORE),
    ((4, 6), (0, 2), AllenRelation.AFTER),
    ((0, 3), (3, 6), AllenRelation.MEETS),
    ((3, 6), (0, 3), AllenRelation.MET_BY),
    ((0, 4), (2, 6), AllenRelation.OVERLAPS),
    ((2, 6), (0, 4), AllenRelation.OVERLAPPED_BY),
    ((0, 3), (0, 6), AllenRelation.STARTS),
    ((0, 6), (0, 3), AllenRelation.STARTED_BY),
    ((2, 4), (0, 6), AllenRelation.DURING),
    ((0, 6), (2, 4), AllenRelation.CONTAINS),
    ((3, 6), (0, 6), AllenRelation.FINISHES),
    ((0, 6), (3, 6), AllenRelation.FINISHED_BY),
    ((1, 5), (1, 5), AllenRelation.EQUAL),
]


class TestClassification:
    @pytest.mark.parametrize("a,b,expected", CLASSIFICATION_CASES)
    def test_all_thirteen_relations(self, a, b, expected):
        assert relate(iv(*a), iv(*b)) is expected

    def test_point_events_rejected(self):
        with pytest.raises(ValueError, match="proper intervals"):
            relate(iv(1, 1), iv(0, 4))
        with pytest.raises(ValueError, match="proper intervals"):
            relate(iv(0, 4), iv(2, 2))

    def test_exactly_one_relation_holds(self):
        """Every proper-interval pair classifies to exactly one relation
        (exhaustive over a small grid)."""
        intervals = [
            (s, f) for s in range(5) for f in range(5) if s < f
        ]
        for a, b in itertools.product(intervals, repeat=2):
            rel = relate(iv(*a), iv(*b))
            assert rel in ALL_RELATIONS

    def test_thirteen_distinct_relations_reachable(self):
        intervals = [
            (s, f) for s in range(6) for f in range(6) if s < f
        ]
        seen = {
            relate(iv(*a), iv(*b))
            for a, b in itertools.product(intervals, repeat=2)
        }
        assert seen == set(ALL_RELATIONS)


class TestGeneralClassification:
    def test_point_inside_interval_is_during(self):
        assert relate_general(iv(2, 2), iv(0, 5)) is AllenRelation.DURING

    def test_point_at_start_is_starts(self):
        assert relate_general(iv(0, 0), iv(0, 5)) is AllenRelation.STARTS

    def test_point_at_finish_is_finishes(self):
        assert relate_general(iv(5, 5), iv(0, 5)) is AllenRelation.FINISHES

    def test_coincident_points_equal(self):
        assert relate_general(iv(3, 3), iv(3, 3)) is AllenRelation.EQUAL

    def test_point_before_interval(self):
        assert relate_general(iv(0, 0), iv(2, 5)) is AllenRelation.BEFORE

    def test_point_at_own_finish_is_finished_by(self):
        # A proper interval whose finish coincides with a point: the point
        # FINISHES the interval, so the interval is FINISHED_BY it.
        assert relate_general(iv(0, 2), iv(2, 2)) is AllenRelation.FINISHED_BY

    def test_points_order_as_before_after(self):
        assert relate_general(iv(1, 1), iv(4, 4)) is AllenRelation.BEFORE
        assert relate_general(iv(4, 4), iv(1, 1)) is AllenRelation.AFTER

    def test_matches_relate_on_proper_intervals(self):
        for a, b, expected in CLASSIFICATION_CASES:
            assert relate_general(iv(*a), iv(*b)) is expected


class TestInverses:
    @pytest.mark.parametrize("rel", ALL_RELATIONS)
    def test_inverse_is_involution(self, rel):
        assert rel.inverse.inverse is rel

    def test_equal_is_self_inverse(self):
        assert AllenRelation.EQUAL.inverse is AllenRelation.EQUAL

    def test_base_relations_have_non_base_inverses(self):
        for rel in BASE_RELATIONS:
            assert rel.inverse not in BASE_RELATIONS

    @given(
        a=st.tuples(st.integers(0, 20), st.integers(1, 10)),
        b=st.tuples(st.integers(0, 20), st.integers(1, 10)),
    )
    def test_relate_antisymmetry(self, a, b):
        ia, ib = iv(a[0], a[0] + a[1]), iv(b[0], b[0] + b[1])
        assert relate(ia, ib).inverse is relate(ib, ia)

    def test_describe(self):
        assert AllenRelation.OVERLAPPED_BY.describe() == "overlapped-by"


class TestComposition:
    def test_equal_is_identity(self):
        for rel in ALL_RELATIONS:
            assert compose(AllenRelation.EQUAL, rel) == {rel}
            assert compose(rel, AllenRelation.EQUAL) == {rel}

    def test_before_before_is_before(self):
        assert compose(AllenRelation.BEFORE, AllenRelation.BEFORE) == {
            AllenRelation.BEFORE
        }

    def test_before_after_is_everything(self):
        # Classic: no constraint survives b ; bi.
        assert compose(AllenRelation.BEFORE, AllenRelation.AFTER) == set(
            ALL_RELATIONS
        )

    def test_meets_meets_is_before(self):
        assert compose(AllenRelation.MEETS, AllenRelation.MEETS) == {
            AllenRelation.BEFORE
        }

    def test_during_during_is_during(self):
        assert compose(AllenRelation.DURING, AllenRelation.DURING) == {
            AllenRelation.DURING
        }

    def test_overlaps_overlaps(self):
        assert compose(AllenRelation.OVERLAPS, AllenRelation.OVERLAPS) == {
            AllenRelation.BEFORE,
            AllenRelation.MEETS,
            AllenRelation.OVERLAPS,
        }

    def test_inverse_composition_theorem(self):
        """(R1 ; R2)^-1 == R2^-1 ; R1^-1 for the whole table."""
        for r1, r2 in itertools.product(ALL_RELATIONS, repeat=2):
            lhs = {rel.inverse for rel in compose(r1, r2)}
            rhs = compose(r2.inverse, r1.inverse)
            assert lhs == rhs, (r1, r2)

    @settings(max_examples=200, deadline=None)
    @given(
        a=st.tuples(st.integers(0, 12), st.integers(1, 6)),
        b=st.tuples(st.integers(0, 12), st.integers(1, 6)),
        c=st.tuples(st.integers(0, 12), st.integers(1, 6)),
    )
    def test_composition_soundness(self, a, b, c):
        """For concrete intervals, rel(A,C) is in compose(rel(A,B), rel(B,C))."""
        ia, ib, ic = (
            iv(a[0], a[0] + a[1]),
            iv(b[0], b[0] + b[1]),
            iv(c[0], c[0] + c[1]),
        )
        assert relate(ia, ic) in compose(relate(ia, ib), relate(ib, ic))

    def test_table_is_total(self):
        for r1, r2 in itertools.product(ALL_RELATIONS, repeat=2):
            result = compose(r1, r2)
            assert result
            assert result <= set(ALL_RELATIONS)
