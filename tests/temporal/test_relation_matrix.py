"""Tests for the relation-matrix view and its equivalence to endpoint patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.event import IntervalEvent
from repro.model.pattern import TemporalPattern
from repro.temporal.allen import AllenRelation
from repro.temporal.relation_matrix import (
    ArrangementPattern,
    InconsistentArrangementError,
)

from tests.conftest import make_random_db


def overlap_pattern() -> ArrangementPattern:
    return ArrangementPattern(
        ("A", "B"), ((0, 1, AllenRelation.OVERLAPS),)
    )


class TestConstruction:
    def test_missing_pair_rejected(self):
        with pytest.raises(ValueError, match="every pair"):
            ArrangementPattern(("A", "B", "C"), ((0, 1, AllenRelation.BEFORE),))

    def test_extra_pair_rejected(self):
        with pytest.raises(ValueError, match="every pair"):
            ArrangementPattern(
                ("A",), ((0, 1, AllenRelation.BEFORE),)
            )

    def test_relation_lookup_and_inverse(self):
        p = overlap_pattern()
        assert p.relation(0, 1) is AllenRelation.OVERLAPS
        assert p.relation(1, 0) is AllenRelation.OVERLAPPED_BY
        assert p.relation(0, 0) is AllenRelation.EQUAL

    def test_str(self):
        assert "overlaps" in str(overlap_pattern())

    def test_from_events_rejects_points(self):
        with pytest.raises(ValueError, match="point"):
            ArrangementPattern.from_events(
                [IntervalEvent(0, 0, "A"), IntervalEvent(0, 2, "B")]
            )


class TestConversions:
    def test_overlap_to_temporal(self):
        tp = overlap_pattern().to_temporal_pattern()
        assert str(tp) == "(A+) (B+) (A-) (B-)"

    def test_temporal_to_matrix(self):
        tp = TemporalPattern.parse("(A+) (B+) (A-) (B-)")
        m = ArrangementPattern.from_temporal_pattern(tp)
        assert m.relation(0, 1) is AllenRelation.OVERLAPS

    def test_incomplete_pattern_rejected(self):
        with pytest.raises(ValueError, match="complete"):
            ArrangementPattern.from_temporal_pattern(
                TemporalPattern.parse("(A+)")
            )

    def test_hybrid_pattern_rejected(self):
        with pytest.raises(ValueError, match="point"):
            ArrangementPattern.from_temporal_pattern(
                TemporalPattern.parse("(A.)")
            )

    def test_inconsistent_cycle_detected(self):
        # A before B, B before C, C before A: a cycle.
        bad = ArrangementPattern(
            ("A", "B", "C"),
            (
                (0, 1, AllenRelation.BEFORE),
                (1, 2, AllenRelation.BEFORE),
                (0, 2, AllenRelation.AFTER),
            ),
        )
        assert not bad.is_consistent()
        with pytest.raises(InconsistentArrangementError):
            bad.to_temporal_pattern()

    def test_inconsistent_equality_clash(self):
        # A meets B (fa == sb) but also A overlaps B (sb < fa): clash.
        # Encode via transitivity: A equal B and A before B is impossible
        # pairwise, so use a 3-interval contradiction instead.
        bad = ArrangementPattern(
            ("A", "B", "C"),
            (
                (0, 1, AllenRelation.EQUAL),
                (1, 2, AllenRelation.BEFORE),
                (0, 2, AllenRelation.AFTER),
            ),
        )
        assert not bad.is_consistent()

    def test_consistent_triple(self):
        good = ArrangementPattern(
            ("A", "B", "C"),
            (
                (0, 1, AllenRelation.OVERLAPS),
                (1, 2, AllenRelation.OVERLAPS),
                (0, 2, AllenRelation.BEFORE),
            ),
        )
        tp = good.to_temporal_pattern()
        m = ArrangementPattern.from_temporal_pattern(tp)
        assert m.relation(0, 1) is AllenRelation.OVERLAPS
        assert m.relation(0, 2) is AllenRelation.BEFORE


class TestLosslessnessEquivalence:
    """Matrix -> endpoint -> matrix and endpoint -> matrix -> endpoint are
    identities: the two representations carry the same information."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_round_trip_from_random_arrangements(self, seed):
        db = make_random_db(seed, num_sequences=2, max_events=5)
        for s in db:
            if len(s) == 0:
                continue
            tp = TemporalPattern.from_arrangement(list(s.events))
            matrix = ArrangementPattern.from_temporal_pattern(tp)
            assert matrix.to_temporal_pattern() == tp

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_matrix_survives_endpoint_round_trip(self, seed):
        db = make_random_db(seed, num_sequences=2, max_events=4)
        for s in db:
            if len(s) < 2:
                continue
            matrix = ArrangementPattern.from_events(list(s.events))
            rebuilt = ArrangementPattern.from_temporal_pattern(
                matrix.to_temporal_pattern()
            )
            assert rebuilt.labels == matrix.labels
            for i in range(matrix.size):
                for j in range(i + 1, matrix.size):
                    assert rebuilt.relation(i, j) is matrix.relation(i, j)
