"""Unit and property tests for the endpoint representation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.database import ESequenceDatabase
from repro.temporal.allen import relate_general
from repro.temporal.endpoint import (
    FINISH,
    POINT,
    START,
    EncodedDatabase,
    Endpoint,
    EndpointSequence,
    endpoint_sequence_of,
)

from tests.conftest import make_random_db, seq


class TestEndpointToken:
    def test_kind_order_point_start_finish(self):
        # The canonical intra-pointset ordering the miners rely on.
        assert POINT < START < FINISH

    def test_str_forms(self):
        assert str(Endpoint("A", 1, START)) == "A+"
        assert str(Endpoint("A", 2, FINISH)) == "A#2-"
        assert str(Endpoint("tick", 1, POINT)) == "tick."

    def test_parse_round_trip(self):
        for token in (
            Endpoint("A", 1, START),
            Endpoint("B", 3, FINISH),
            Endpoint("x-y", 2, POINT),
        ):
            assert Endpoint.parse(str(token)) == token

    def test_sort_key_groups_by_label(self):
        tokens = [
            Endpoint("B", 1, START),
            Endpoint("A", 1, FINISH),
            Endpoint("A", 1, START),
            Endpoint("A", 1, POINT),
        ]
        ordered = sorted(tokens, key=lambda e: e.sort_key)
        assert [str(t) for t in ordered] == ["A.", "A+", "A-", "B+"]


class TestTransform:
    def test_single_interval(self):
        eps = endpoint_sequence_of(seq((0, 5, "A")))
        assert str(eps) == "(A+) (A-)"

    def test_meets_shares_pointset(self):
        eps = endpoint_sequence_of(seq((0, 3, "A"), (3, 7, "B")))
        assert str(eps) == "(A+) (A- B+) (B-)"

    def test_point_event_single_token(self):
        eps = endpoint_sequence_of(seq((2, 2, "tick"), (0, 4, "A")))
        assert str(eps) == "(A+) (tick.) (A-)"

    def test_duplicate_occurrence_indexing(self):
        eps = endpoint_sequence_of(seq((0, 2, "A"), (4, 6, "A")))
        assert str(eps) == "(A+) (A-) (A#2+) (A#2-)"

    def test_equal_intervals_share_pointsets(self):
        eps = endpoint_sequence_of(seq((0, 3, "A"), (0, 3, "B")))
        assert str(eps) == "(A+ B+) (A- B-)"

    def test_num_tokens(self):
        eps = endpoint_sequence_of(seq((0, 3, "A"), (1, 1, "t")))
        assert eps.num_tokens == 3
        assert len(eps) == 3  # three distinct instants

    def test_empty_pointset_rejected(self):
        with pytest.raises(ValueError, match="empty pointsets"):
            EndpointSequence([[]])


class TestInverseTransform:
    def test_round_trip_simple(self):
        original = seq((0, 4, "A"), (2, 6, "B"))
        eps = endpoint_sequence_of(original)
        rebuilt = eps.to_esequence()
        assert endpoint_sequence_of(rebuilt) == eps

    def test_rebuilt_times_are_dense(self):
        eps = endpoint_sequence_of(seq((10, 40, "A"), (20, 60, "B")))
        rebuilt = eps.to_esequence()
        assert rebuilt.span == (0, 3)

    def test_orphan_finish_raises(self):
        eps = EndpointSequence([[Endpoint("A", 1, FINISH)]])
        with pytest.raises(ValueError, match="no matching start"):
            eps.to_esequence()

    def test_unfinished_start_raises(self):
        eps = EndpointSequence([[Endpoint("A", 1, START)]])
        with pytest.raises(ValueError, match="unfinished"):
            eps.to_esequence()

    def test_same_pointset_start_finish_raises(self):
        eps = EndpointSequence(
            [[Endpoint("A", 1, START), Endpoint("A", 1, FINISH)]]
        )
        with pytest.raises(ValueError, match="point event"):
            eps.to_esequence()

    def test_double_start_raises(self):
        eps = EndpointSequence(
            [[Endpoint("A", 1, START)], [Endpoint("A", 1, START)],
             [Endpoint("A", 1, FINISH)]]
        )
        with pytest.raises(ValueError, match="twice"):
            eps.to_esequence()


class TestLosslessness:
    """The paper's core claim: the endpoint representation preserves the
    arrangement — every pairwise Allen relation survives the round trip."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_round_trip_preserves_endpoint_sequence(self, seed):
        db = make_random_db(seed, num_sequences=3, max_events=6,
                            point_fraction=0.25)
        for s in db:
            if len(s) == 0:
                continue
            eps = endpoint_sequence_of(s)
            assert endpoint_sequence_of(eps.to_esequence()) == eps

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_round_trip_preserves_allen_relations(self, seed):
        db = make_random_db(seed, num_sequences=2, max_events=5)
        for s in db:
            if len(s) < 2:
                continue
            rebuilt = endpoint_sequence_of(s).to_esequence()
            originals = list(s.occurrence_indexed())
            rebuilts = list(rebuilt.occurrence_indexed())
            # Occurrence indexing orders both event lists compatibly.
            assert [
                (ev.label, occ) for ev, occ in originals
            ] == [(ev.label, occ) for ev, occ in rebuilts]
            for i in range(len(originals)):
                for j in range(i + 1, len(originals)):
                    assert relate_general(
                        originals[i][0], originals[j][0]
                    ) is relate_general(rebuilts[i][0], rebuilts[j][0])


class TestEncodedDatabase:
    def test_labels_sorted(self):
        db = ESequenceDatabase([seq((0, 1, "B")), seq((0, 1, "A"))])
        enc = EncodedDatabase(db)
        assert enc.labels == ("A", "B")

    def test_sym_round_trip(self):
        db = ESequenceDatabase([seq((0, 1, "A"), (2, 2, "B"))])
        enc = EncodedDatabase(db)
        for label in ("A", "B"):
            for kind in (START, FINISH, POINT):
                sym = enc.sym(label, kind)
                assert enc.label_of(sym) == label
                assert EncodedDatabase.kind_of(sym) == kind

    def test_pointsets_mirror_endpoint_sequence(self):
        s = seq((0, 4, "A"), (2, 6, "B"), (2, 2, "C"))
        db = ESequenceDatabase([s])
        enc = EncodedDatabase(db)
        decoded = [
            tuple(str(enc.decode_token(t)) for t in ps)
            for ps in enc.sequences[0].pointsets
        ]
        eps = endpoint_sequence_of(s)
        expected = [
            tuple(str(e) for e in ps) for ps in eps.pointsets
        ]
        assert decoded == expected

    def test_positions_locate_endpoints(self):
        s = seq((0, 4, "A"), (2, 6, "B"))
        enc = EncodedDatabase(ESequenceDatabase([s]))
        encoded = enc.sequences[0]
        a_id = enc.label_ids["A"]
        b_id = enc.label_ids["B"]
        assert encoded.start_pos[(a_id, 1)] == 0
        assert encoded.finish_pos[(a_id, 1)] == 2
        assert encoded.start_pos[(b_id, 1)] == 1
        assert encoded.finish_pos[(b_id, 1)] == 3

    def test_point_positions_coincide(self):
        s = seq((3, 3, "P"))
        enc = EncodedDatabase(ESequenceDatabase([s]))
        encoded = enc.sequences[0]
        p_id = enc.label_ids["P"]
        assert encoded.start_pos[(p_id, 1)] == encoded.finish_pos[(p_id, 1)]

    def test_size(self):
        db = make_random_db(0, num_sequences=5)
        assert EncodedDatabase(db).size == 5


class TestEncodedTimes:
    def test_times_match_pointset_instants(self):
        s = seq((0, 4, "A"), (2, 6, "B"))
        enc = EncodedDatabase(ESequenceDatabase([s]))
        assert enc.sequences[0].times == (0, 2, 4, 6)

    def test_times_align_with_positions(self):
        s = seq((1, 9, "A"), (3, 3, "B"))
        enc = EncodedDatabase(ESequenceDatabase([s]))
        encoded = enc.sequences[0]
        a_id = enc.label_ids["A"]
        assert encoded.times[encoded.start_pos[(a_id, 1)]] == 1
        assert encoded.times[encoded.finish_pos[(a_id, 1)]] == 9
