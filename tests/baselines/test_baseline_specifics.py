"""Baseline-specific behaviours beyond the shared agreement tests."""

import pytest

from repro.baselines import (
    BruteForceMiner,
    HDFSMiner,
    IEMiner,
    TPrefixSpanMiner,
)
from repro.baselines._shared import I_EXT, S_EXT, PatternBuilder
from repro.core.ptpminer import PTPMiner
from repro.model.database import ESequenceDatabase
from repro.temporal.endpoint import FINISH, POINT, START, Endpoint

from tests.conftest import make_random_db


class TestModeValidation:
    @pytest.mark.parametrize(
        "miner_cls", [TPrefixSpanMiner, HDFSMiner, BruteForceMiner]
    )
    def test_tp_mode_rejects_points(self, miner_cls, hybrid_db):
        with pytest.raises(ValueError, match="point events"):
            miner_cls(0.5).mine(hybrid_db)

    def test_ieminer_always_rejects_points(self, hybrid_db):
        with pytest.raises(ValueError, match="point"):
            IEMiner(0.5).mine(hybrid_db)

    @pytest.mark.parametrize(
        "miner_cls", [TPrefixSpanMiner, HDFSMiner, BruteForceMiner]
    )
    def test_invalid_mode_rejected(self, miner_cls):
        with pytest.raises(ValueError, match="mode"):
            miner_cls(0.5, mode="nope")


class TestMinerMetadata:
    def test_miner_names(self, clinical_db):
        assert TPrefixSpanMiner(2).mine(clinical_db).miner == "TPrefixSpan"
        assert HDFSMiner(2).mine(clinical_db).miner == "H-DFS"
        assert IEMiner(2).mine(clinical_db).miner == "IEMiner"
        assert BruteForceMiner(2).mine(clinical_db).miner == "BruteForce"

    def test_empty_database(self):
        db = ESequenceDatabase([])
        for miner in (TPrefixSpanMiner(1), HDFSMiner(1), IEMiner(1),
                      BruteForceMiner(1)):
            assert miner.mine(db).patterns == []


class TestSizeCaps:
    def test_bruteforce_max_size(self):
        db = make_random_db(3, num_sequences=6)
        result = BruteForceMiner(0.3, max_size=2).mine(db)
        assert all(item.pattern.size <= 2 for item in result.patterns)

    def test_ieminer_max_size_matches_ptpminer(self):
        db = make_random_db(4, num_sequences=8)
        capped = IEMiner(0.25, max_size=2).mine(db).as_dict()
        reference = {
            p: s
            for p, s in PTPMiner(0.25).mine(db).as_dict().items()
            if p.size <= 2
        }
        assert capped == reference

    def test_tprefixspan_max_tokens(self):
        db = make_random_db(5, num_sequences=8)
        result = TPrefixSpanMiner(0.25, max_tokens=4).mine(db)
        assert all(item.pattern.num_tokens <= 4 for item in result.patterns)


class TestEffortAccounting:
    def test_verification_miners_consider_more_candidates(self):
        """The structural claim behind the paper's speedups: the
        verification-based baselines touch at least as many candidates as
        P-TPMiner with its prunings on."""
        db = make_random_db(12, num_sequences=20, labels="ABCD",
                            max_events=6)
        ptp = PTPMiner(0.2).mine(db)
        hdfs = HDFSMiner(0.2).mine(db)
        assert (
            hdfs.counters.candidates_considered
            >= ptp.counters.candidates_frequent
        )

    def test_ieminer_reports_apriori_prunes(self):
        db = make_random_db(6, num_sequences=12, labels="ABC")
        result = IEMiner(0.25).mine(db)
        assert "pruned_apriori" in result.counters.as_dict() or (
            result.counters.extras.get("pruned_apriori") is None
        )


class TestPatternBuilder:
    def test_empty_builder(self):
        builder = PatternBuilder()
        assert builder.is_empty
        assert builder.is_complete
        assert builder.last_token is None
        assert builder.feasible_tokens({"A"}, set(), I_EXT) == []

    def test_push_pop_round_trip(self):
        builder = PatternBuilder()
        a_start = Endpoint("A", 1, START)
        a_finish = Endpoint("A", 1, FINISH)
        builder.push(a_start, S_EXT)
        assert not builder.is_complete
        builder.push(a_finish, S_EXT)
        assert builder.is_complete
        assert str(builder.to_pattern()) == "(A+) (A-)"
        builder.pop(a_finish, S_EXT)
        builder.pop(a_start, S_EXT)
        assert builder.is_empty

    def test_feasible_finish_requires_open(self):
        builder = PatternBuilder()
        builder.push(Endpoint("A", 1, START), S_EXT)
        tokens = builder.feasible_tokens(set(), set(), S_EXT)
        assert Endpoint("A", 1, FINISH) in tokens

    def test_iext_respects_canonical_order(self):
        builder = PatternBuilder()
        builder.push(Endpoint("B", 1, START), S_EXT)
        tokens = builder.feasible_tokens({"A", "C"}, set(), I_EXT)
        # A+ sorts before the current last token B+, so only C+ remains
        # (plus no finish of B in the same pointset).
        assert Endpoint("C", 1, START) in tokens
        assert Endpoint("A", 1, START) not in tokens

    def test_duplicate_finish_canonical_rule(self):
        builder = PatternBuilder()
        builder.push(Endpoint("A", 1, START), S_EXT)
        builder.push(Endpoint("A", 2, START), I_EXT)
        # Both opened in the same pointset: only A#1 may finish first.
        assert builder.allowed_finish("A", 1)
        assert not builder.allowed_finish("A", 2)

    def test_point_tokens_feasible_in_htp(self):
        builder = PatternBuilder()
        tokens = builder.feasible_tokens(set(), {"tick"}, S_EXT)
        assert tokens == [Endpoint("tick", 1, POINT)]

    def test_pop_reopens_interval(self):
        builder = PatternBuilder()
        a_start = Endpoint("A", 1, START)
        a_finish = Endpoint("A", 1, FINISH)
        builder.push(a_start, S_EXT)
        builder.push(a_finish, S_EXT)
        builder.pop(a_finish, S_EXT)
        assert not builder.is_complete
        assert builder.allowed_finish("A", 1)
