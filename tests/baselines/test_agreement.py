"""Cross-miner agreement: all five miners compute the same answer.

This is experiment T3's foundation: on any database, P-TPMiner,
TPrefixSpan, H-DFS, IEMiner and the brute-force oracle must return the
identical pattern-to-support mapping.
"""

import pytest

from repro.baselines import (
    BruteForceMiner,
    HDFSMiner,
    IEMiner,
    TPrefixSpanMiner,
)
from repro.core.ptpminer import PTPMiner

from tests.conftest import make_random_db


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("min_sup", [0.2, 0.4])
def test_all_miners_agree_tp(seed, min_sup):
    db = make_random_db(seed, num_sequences=10, labels="ABC", max_events=5)
    reference = PTPMiner(min_sup).mine(db).as_dict()
    for miner in (
        TPrefixSpanMiner(min_sup),
        HDFSMiner(min_sup),
        IEMiner(min_sup),
        BruteForceMiner(min_sup),
    ):
        assert miner.mine(db).as_dict() == reference, type(miner).__name__


@pytest.mark.parametrize("seed", range(6))
def test_htp_capable_miners_agree(seed):
    db = make_random_db(seed, num_sequences=10, labels="AB", max_events=4,
                        point_fraction=0.4)
    reference = PTPMiner(0.3, mode="htp").mine(db).as_dict()
    for miner in (
        TPrefixSpanMiner(0.3, mode="htp"),
        HDFSMiner(0.3, mode="htp"),
        BruteForceMiner(0.3, mode="htp"),
    ):
        assert miner.mine(db).as_dict() == reference, type(miner).__name__


def test_agreement_with_duplicates():
    for seed in range(5):
        db = make_random_db(seed, num_sequences=8, labels="A", max_events=4,
                            time_max=5)
        reference = BruteForceMiner(0.25).mine(db).as_dict()
        for miner in (
            PTPMiner(0.25),
            TPrefixSpanMiner(0.25),
            HDFSMiner(0.25),
            IEMiner(0.25),
        ):
            assert miner.mine(db).as_dict() == reference, (
                type(miner).__name__,
                seed,
            )


def test_agreement_on_clinical(clinical_db):
    reference = PTPMiner(2).mine(clinical_db).as_dict()
    for miner in (
        TPrefixSpanMiner(2),
        HDFSMiner(2),
        IEMiner(2),
        BruteForceMiner(2),
    ):
        assert miner.mine(clinical_db).as_dict() == reference


def test_result_ordering_identical(clinical_db):
    """Not only the sets — the canonical result *lists* must be equal."""
    reference = PTPMiner(2).mine(clinical_db).patterns
    for miner in (TPrefixSpanMiner(2), HDFSMiner(2), IEMiner(2)):
        assert miner.mine(clinical_db).patterns == reference
