"""Tests for the deep analyzer: graph, dataflow, passes, driver.

The per-rule fixtures under ``tests/tools/fixtures/`` carry
``# expect: RXXX`` markers on every line the intended rule must report.
Each fixture is linted under a *synthetic* ``src/repro`` path so the
production pass configuration (merge seeds, cache consumers, engine
module scoping) is exercised directly rather than through test-only
knobs.
"""

from __future__ import annotations

import ast
import re
import textwrap
import time
from pathlib import Path

import pytest

from tools.repro_lint.dataflow import effects_of, unordered_names, unordered_reason
from tools.repro_lint.driver import analyze_contexts, analyze_paths, rule_catalog
from tools.repro_lint.engine import CURRENT_PR, build_context, _parse_suppressions
from tools.repro_lint.graph import build_graph_from_sources
from tools.repro_lint.passes import ALL_PASSES

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"

#: fixture file -> synthetic lint path. Engine/metrics/ptpminer paths
#: make the production seed qualnames line up with fixture definitions.
FIXTURES = {
    "r010.py": "src/repro/engine.py",
    "r011.py": "src/repro/core/demo11.py",
    "r012.py": "src/repro/core/demo12.py",
    "r013.py": "src/repro/obs/metrics.py",
    "r014.py": "src/repro/engine.py",
    "r015.py": "src/repro/core/ptpminer.py",
    "r016.py": "src/repro/core/demo16.py",
    "r017.py": "src/repro/core/demo17.py",
    "r018.py": "src/repro/obs/demo18.py",
    "r019.py": "src/repro/core/demo19.py",
    "r020.py": "src/repro/obs/demo20.py",
}

_EXPECT_RE = re.compile(r"#\s*expect:\s*(R\d{3})")


def expected_markers(source: str) -> set[tuple[int, str]]:
    """(line, code) pairs from ``# expect:`` markers."""
    return {
        (lineno, match.group(1))
        for lineno, line in enumerate(source.splitlines(), start=1)
        if (match := _EXPECT_RE.search(line))
    }


def deep_findings(path: str, source: str) -> list:
    """Run the graph passes over one synthetic module."""
    graph = build_graph_from_sources([(path, source)])
    found = []
    for pass_ in ALL_PASSES:
        found.extend(pass_.run(graph))
    return found


class TestFixtures:
    @pytest.mark.parametrize(
        "fixture", sorted(f for f in FIXTURES if f != "r017.py")
    )
    def test_fixture_violations_match_expect_markers(self, fixture):
        code = f"R{fixture[1:4]}"
        source = (FIXTURE_DIR / fixture).read_text()
        expected = expected_markers(source)
        assert expected, f"fixture {fixture} has no # expect markers"
        found = deep_findings(FIXTURES[fixture], source)
        got = {(v.line, v.code) for v in found if v.code == code}
        assert got == expected
        # Location metadata: every finding names the synthetic file.
        assert {v.path for v in found} <= set(FIXTURES.values())

    def test_r017_fixture_through_full_driver(self):
        # R017 needs the driver: it audits which suppressions *fired*.
        source = (FIXTURE_DIR / "r017.py").read_text()
        ctx = build_context(Path(FIXTURES["r017.py"]), source)
        found = analyze_contexts([ctx], deep=True)
        got = {(v.line, v.code) for v in found if v.code == "R017"}
        assert got == expected_markers(source)

    def test_fixture_files_lint_clean_in_shallow_repo_gate(self):
        # The physical fixture files live under tests/ and are swept by
        # `make repro-lint`; their deliberate violations must be either
        # deep-only or suppressed.
        from tools.repro_lint.engine import lint_paths

        assert lint_paths([FIXTURE_DIR]) == []


class TestSuppressions:
    def parse_one(self, line: str):
        table = _parse_suppressions(line)
        assert len(table) == 1
        return table[0]

    def test_scoped_codes_parse(self):
        supp = self.parse_one("x = 1  # repro-lint: R010, R013")
        assert supp.codes == frozenset({"R010", "R013"})
        assert supp.scoped and supp.active and supp.until is None

    def test_legacy_forms_still_parse(self):
        legacy = self.parse_one("x = 1  # repro-lint: ignore[R001]")
        assert legacy.codes == frozenset({"R001"})
        blanket = self.parse_one("x = 1  # repro-lint: ignore")
        assert blanket.codes is None and not blanket.scoped

    def test_pr_expiry(self):
        live = self.parse_one(
            f"x = 1  # repro-lint: R010 until=PR{CURRENT_PR + 1}"
        )
        assert live.active and not live.expired
        expired = self.parse_one(
            f"x = 1  # repro-lint: R010 until=PR{CURRENT_PR}"
        )
        assert expired.expired and not expired.active

    def test_date_expiry(self):
        live = self.parse_one("x = 1  # repro-lint: R010 until=2999-01-01")
        assert live.active
        expired = self.parse_one(
            "x = 1  # repro-lint: R010 until=2020-01-01"
        )
        assert expired.expired

    def test_relative_pr_and_garbage_are_malformed(self):
        relative = self.parse_one("x = 1  # repro-lint: R010 until=PR+2")
        assert relative.malformed is not None and not relative.active
        garbage = self.parse_one("x = 1  # repro-lint: R010 until=soon")
        assert garbage.malformed is not None

    def test_expired_suppression_stops_suppressing(self):
        source = textwrap.dedent(
            f"""
            def f(x=[]):  # repro-lint: R002 until=PR{CURRENT_PR}
                return x
            """
        )
        ctx = build_context(Path("src/repro/core/demo.py"), source)
        found = analyze_contexts([ctx], deep=True)
        codes = [v.code for v in found]
        assert "R002" in codes  # resurfaced
        assert "R017" in codes  # and audited as expired

    def test_r017_is_not_self_suppressible(self):
        source = "X = 1  # repro-lint: ignore\n__all__ = ['X']\n"
        ctx = build_context(Path("src/repro/core/demo.py"), source)
        found = analyze_contexts([ctx], deep=True)
        assert any(v.code == "R017" for v in found)


class TestGraph:
    def test_strict_resolution_and_scoped_reachability(self):
        graph = build_graph_from_sources(
            [
                (
                    "src/repro/alpha.py",
                    textwrap.dedent(
                        """
                        from repro.beta import helper


                        def entry() -> int:
                            return helper()


                        def unrelated() -> int:
                            return 0
                        """
                    ),
                ),
                (
                    "src/repro/beta.py",
                    textwrap.dedent(
                        """
                        def helper() -> int:
                            return leaf()


                        def leaf() -> int:
                            return 1
                        """
                    ),
                ),
            ]
        )
        reach = graph.reachable(["repro.alpha.entry"])
        assert reach == {
            "repro.alpha.entry",
            "repro.beta.helper",
            "repro.beta.leaf",
        }
        # Module scoping cuts the cross-module edge.
        scoped = graph.reachable(
            ["repro.alpha.entry"], within_modules=("repro.alpha",)
        )
        assert scoped == {"repro.alpha.entry"}

    def test_param_annotation_method_resolution(self):
        graph = build_graph_from_sources(
            [
                (
                    "src/repro/gamma.py",
                    textwrap.dedent(
                        """
                        class Box:
                            def get(self) -> int:
                                return 1


                        def reader(box: Box) -> int:
                            return box.get()
                        """
                    ),
                )
            ]
        )
        assert "repro.gamma.Box.get" in graph.reachable(
            ["repro.gamma.reader"]
        )


class TestDataflow:
    def fn(self, source: str) -> ast.FunctionDef:
        node = ast.parse(textwrap.dedent(source)).body[0]
        assert isinstance(node, ast.FunctionDef)
        return node

    def test_effects_track_aliases_and_methods(self):
        effects = effects_of(
            self.fn(
                """
                def f(items):
                    alias = items
                    alias.append(1)
                    items[0] = 2
                """
            )
        )
        assert set(effects.mutated_params) == {"items"}
        assert len(effects.mutated_params["items"]) == 2

    def test_nested_def_shadowing_is_respected(self):
        effects = effects_of(
            self.fn(
                """
                def f(items):
                    def inner(items):
                        items.append(1)
                    return inner
                """
            )
        )
        assert effects.mutated_params == {}

    def test_unordered_names_taint_and_rebind(self):
        node = self.fn(
            """
            def f(d):
                a = set(d)
                b = [x for x in a]
                a = sorted(a)
                return a, b
            """
        )
        assert unordered_names(node) == {"b"}

    def test_unordered_reason_classifies_views_and_sorted(self):
        expr = ast.parse("d.values()", mode="eval").body
        assert unordered_reason(expr) is not None
        expr = ast.parse("sorted(d.values())", mode="eval").body
        assert unordered_reason(expr) is None


class TestDriverAndBudget:
    def test_catalog_is_contiguous_r001_to_r020(self):
        assert sorted(rule_catalog(deep=True)) == [
            f"R{i:03d}" for i in range(1, 21)
        ]
        assert sorted(rule_catalog(deep=False)) == [
            f"R{i:03d}" for i in range(1, 10)
        ]

    def test_repo_is_deep_lint_clean(self):
        """The CI deep gate: zero findings over the shipped tree."""
        found = analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "tests"],
            deep=True,
        )
        assert found == []

    def test_full_deep_run_fits_runtime_budget(self):
        start = time.perf_counter()
        analyze_paths(
            [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "tests"],
            deep=True,
        )
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0, f"deep lint took {elapsed:.1f}s (budget 30s)"
