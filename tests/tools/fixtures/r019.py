"""R019 fixture: provenance records flow only through the seam.

Linted under the synthetic path ``src/repro/core/demo19.py`` so the
production pass scoping (every non-test repro module except
``repro.obs.provenance`` itself) applies directly.
"""

from repro.obs.provenance import (
    ProvenanceCollector,
    active_collector,
    use_collector,
)


def bad_inline_construction(pattern):
    ProvenanceCollector().record_pruned(  # expect: R019
        pattern, site="support", level=1, root="A+"
    )


def bad_ad_hoc_instance(pattern, sids):
    collector = ProvenanceCollector()
    collector.record_emitted(  # expect: R019
        pattern, 3.0, sids, {}, root="A+", level=2
    )
    return collector.snapshot()


def bad_attribute_receiver(self_like, label):
    self_like.prov.record_pruned_label(  # expect: R019
        label, "interval", 1.0, 2.0
    )


def ok_hoisted_active(pattern):
    prov = active_collector()
    if prov is not None:
        prov.record_pruned(pattern, site="pair", level=2, root="A+")


def ok_scoped_use(pattern, sids):
    with use_collector() as prov:
        prov.record_emitted(pattern, 3.0, sids, {}, root="A+", level=2)
        return prov.snapshot()
