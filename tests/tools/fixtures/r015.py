"""Fixture: R015 — plan-cache consumer purity.

Linted under the synthetic path ``src/repro/core/ptpminer.py`` so the
production cache-consumer seeds (``PTPMiner.plan_root`` /
``PTPMiner.search_shard``) apply. The second finding is reached by
propagation: ``candidates`` flows into ``self._drain`` and is mutated
there.
"""


class PTPMiner:
    """Carrier for the cache-consumer seed methods."""

    def plan_root(self, db: dict, weights: dict, threshold: float) -> dict:
        """Directly mutates a protected parameter."""
        db["cached"] = True  # expect: R015
        return db

    def search_shard(
        self, mining_db: dict, weights: dict, candidates: list
    ) -> list:
        """Pure itself, but leaks ``candidates`` to an impure callee."""
        self._drain(candidates)
        return sorted(weights)

    def _drain(self, items: list) -> None:
        """Mutates what it is given."""
        items.pop()  # expect: R015
