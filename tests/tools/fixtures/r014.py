"""Fixture: R014 — engine-boundary shippability.

Linted under the synthetic path ``src/repro/engine.py`` (the only
module allowed to build process pools). Seeds four distinct failure
modes: an unfrozen task dataclass, a mutable task field, a lambda in
``initargs`` and in ``submit``, and a worker writing module state
outside the ``_WORKER*`` convention.
"""

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

_WORKER_CACHE: dict = {}
_MODULE_STATE: dict = {}


@dataclass
class ShardTask:  # expect: R014
    """Crosses the pool boundary but is not frozen."""

    shard: int
    payload: list  # expect: R014


def _init_worker(db: object) -> None:
    """Sanctioned payload slot vs. unsanctioned module state."""
    _WORKER_CACHE["db"] = db
    _MODULE_STATE["db"] = db  # expect: R014


def _run_shard(task: ShardTask) -> int:
    """Worker entry; its parameter class is audited transitively."""
    return task.shard


def run(tasks: list) -> list:
    """Pool construction and dispatch sites."""
    with ProcessPoolExecutor(
        max_workers=2,
        initializer=_init_worker,
        initargs=(lambda: 1,),  # expect: R014
    ) as pool:
        futures = [pool.submit(_run_shard, task) for task in tasks]
        bad = pool.submit(lambda: 0)  # expect: R014
        return [future.result() for future in futures] + [bad.result()]
