"""Fixture: R012 — id()/hash() in sort keys.

Linted under a synthetic ``src/repro/core/...`` path.
"""


def order(items: list) -> list:
    """Both spellings of the hazard."""
    ranked = sorted(items, key=lambda x: id(x))  # expect: R012
    items.sort(key=lambda x: (hash(x), 0))  # expect: R012
    return ranked


def fine(items: list) -> list:
    """Keying on stable value fields is the fix."""
    return sorted(items, key=lambda x: x.name)
