"""Fixture: R010 — unordered iteration feeding ordered emission.

Linted by the analyzer tests under the synthetic path
``src/repro/engine.py`` so the production merge seeds
(``mine_sharded``, ``_reemit_shard_trace``) apply. Lines carrying an
expect marker must each be reported by exactly this fixture's rule.
"""


def mine_sharded(shard_results: list) -> list:
    """Seed: emits in the iteration order of a set-derived name."""
    seen = set(shard_results)
    out: list = []
    for item in seen:
        out.append(item)  # expect: R010
    ordered: list = []
    for item in sorted(seen):
        ordered.append(item)  # sanitized: sorted() iteration is fine
    return out + ordered


def _reemit_shard_trace(events: dict) -> object:
    """Seed: yields in dict-view order."""
    for payload in events.values():
        yield payload  # expect: R010
