"""Fixture: R017 — suppression hygiene.

Linted under a synthetic ``src/repro/core/...`` path through the full
driver (rules -> passes -> filtering -> audit), since R017 depends on
which suppressions actually fired. Covers all four audit findings:
unused, expired, malformed, and used-but-unscoped.
"""

UNUSED = 1  # repro-lint: R002              # expect: R017
EXPIRED = 2  # repro-lint: R005 until=PR1   # expect: R017
RELATIVE = 3  # repro-lint: R005 until=PR+9  # expect: R017


def blanket(x=[]):  # repro-lint: ignore    # expect: R017
    """Fires R002; the blanket suppression hides it but is unscoped."""
    return x


def scoped(y=[]):  # repro-lint: R002
    """Fires R002; the scoped suppression is used and stays silent."""
    return y
