"""Fixture: R011 — process-global random RNG.

Linted under a synthetic ``src/repro/core/...`` path. The sanctioned
pattern — an explicit ``random.Random(seed)`` instance — must not be
flagged.
"""

import random
from random import shuffle


def jitter() -> float:
    """Global RNG through the module attribute."""
    return random.random()  # expect: R011


def scramble(items: list) -> None:
    """Global RNG through a from-import."""
    shuffle(items)  # expect: R011


def sanctioned(seed: int) -> float:
    """Explicit seeded instance: the approved pattern."""
    rng = random.Random(seed)
    return rng.random()
